//! SoC resource accounting: what a BIST acquisition costs in memory and
//! arithmetic.
//!
//! Paper §1/§4: "in the SoC environment, as plenty of processing and
//! memory resources are available, it is possible to perform test
//! analysis by reusing these resources". This module quantifies the
//! claim — and the 1-bit digitizer's advantage over an ADC-based
//! capture.

use crate::SocError;

/// Estimated cost of one complete Y-factor measurement (two
/// acquisitions plus processing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceUsage {
    /// Bytes to store one acquisition record.
    pub record_bytes: usize,
    /// Peak memory: both records plus one FFT working buffer.
    pub peak_memory_bytes: usize,
    /// Number of FFTs executed (Welch segments across both records).
    pub fft_count: usize,
    /// Estimated floating-point operations for the whole measurement.
    pub estimated_flops: u64,
}

/// Cost model for the proposed 1-bit capture: 1 bit/sample records,
/// Welch with 50 % overlap, `5·N·log₂N` flops per FFT.
pub fn one_bit_usage(samples: usize, nfft: usize) -> ResourceUsage {
    usage(samples, nfft, 1)
}

/// Cost model for an ADC capture at `bits` resolution (samples stored
/// in whole bytes, as a DMA engine would).
pub fn adc_usage(samples: usize, nfft: usize, bits: u32) -> ResourceUsage {
    usage(samples, nfft, (bits as usize).div_ceil(8) * 8)
}

/// Cost model for any acquisition front-end by its stored
/// `bits_per_sample` (see `Digitizer::bits_per_sample` in
/// `nfbist-analog`): 1-bit records pack tightly; multi-bit records are
/// stored in whole bytes, as a DMA engine would.
pub fn digitizer_usage(samples: usize, nfft: usize, bits_per_sample: u32) -> ResourceUsage {
    if bits_per_sample <= 1 {
        one_bit_usage(samples, nfft)
    } else {
        adc_usage(samples, nfft, bits_per_sample)
    }
}

fn usage(samples: usize, nfft: usize, bits_per_sample: usize) -> ResourceUsage {
    let record_bytes = (samples * bits_per_sample).div_ceil(8);
    // FFT working buffer: nfft complex f64 = 16 bytes each.
    let working = nfft * 16;
    let segments_per_record = if samples >= nfft {
        1 + (samples - nfft) / (nfft / 2).max(1)
    } else {
        0
    };
    let fft_count = 2 * segments_per_record;
    let flops_per_fft = (5 * nfft) as u64 * (nfft as f64).log2().ceil() as u64;
    ResourceUsage {
        record_bytes,
        peak_memory_bytes: 2 * record_bytes + working,
        fft_count,
        estimated_flops: fft_count as u64 * flops_per_fft,
    }
}

/// A memory budget the acquisition must fit.
///
/// # Examples
///
/// ```
/// use nfbist_soc::resources::{one_bit_usage, ResourceBudget};
///
/// // 10⁶ 1-bit samples fit easily in 512 kB of SoC SRAM…
/// let budget = ResourceBudget::new(512 * 1024);
/// assert!(budget.check(&one_bit_usage(1_000_000, 10_000)).is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceBudget {
    memory_bytes: usize,
}

impl ResourceBudget {
    /// Creates a budget of `memory_bytes` bytes.
    pub fn new(memory_bytes: usize) -> Self {
        ResourceBudget { memory_bytes }
    }

    /// The budgeted memory.
    pub fn memory_bytes(&self) -> usize {
        self.memory_bytes
    }

    /// Checks a usage estimate against the budget.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::BudgetExceeded`] when the peak memory does
    /// not fit.
    pub fn check(&self, usage: &ResourceUsage) -> Result<(), SocError> {
        if usage.peak_memory_bytes > self.memory_bytes {
            return Err(SocError::BudgetExceeded {
                requested_bytes: usage.peak_memory_bytes,
                budget_bytes: self.memory_bytes,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_acquisition_fits_small_sram() {
        // 10⁶ samples, 10⁴-point FFT: two 1-bit records = 250 kB, plus
        // a 160 kB FFT buffer.
        let u = one_bit_usage(1_000_000, 10_000);
        assert_eq!(u.record_bytes, 125_000);
        assert!(u.peak_memory_bytes < 512 * 1024);
        assert!(ResourceBudget::new(512 * 1024).check(&u).is_ok());
    }

    #[test]
    fn adc_capture_is_an_order_of_magnitude_bigger() {
        let one_bit = one_bit_usage(1_000_000, 10_000);
        let adc12 = adc_usage(1_000_000, 10_000, 12);
        // 12-bit stored as 2 bytes → 16× the record size.
        assert_eq!(adc12.record_bytes, 16 * one_bit.record_bytes);
        assert!(ResourceBudget::new(512 * 1024).check(&adc12).is_err());
    }

    #[test]
    fn segment_counting() {
        let u = one_bit_usage(10_000, 10_000);
        assert_eq!(u.fft_count, 2); // one segment per record
        let u = one_bit_usage(1_000_000, 10_000);
        // 1 + (1e6−1e4)/5e3 = 199 segments per record.
        assert_eq!(u.fft_count, 2 * 199);
        let u = one_bit_usage(100, 1_000);
        assert_eq!(u.fft_count, 0);
    }

    #[test]
    fn flops_scale_with_fft_count() {
        let small = one_bit_usage(100_000, 1_000);
        let large = one_bit_usage(1_000_000, 1_000);
        assert!(large.estimated_flops > 9 * small.estimated_flops);
    }

    #[test]
    fn budget_error_reports_both_numbers() {
        let u = adc_usage(1_000_000, 10_000, 16);
        let err = ResourceBudget::new(1024).check(&u).unwrap_err();
        match err {
            SocError::BudgetExceeded {
                requested_bytes,
                budget_bytes,
            } => {
                assert_eq!(budget_bytes, 1024);
                assert!(requested_bytes > 4_000_000);
            }
            other => panic!("wrong error {other:?}"),
        }
    }
}
