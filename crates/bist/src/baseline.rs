//! The ADC-based Y-factor baseline (paper Fig. 4).
//!
//! Before proposing the 1-bit digitizer, the paper discusses the
//! conventional alternative: route the conditioned analog signal
//! through a multiplexer to the SoC's shared ADC and compute the power
//! ratio from multi-bit samples. This module implements that setup so
//! experiments can compare accuracy, memory cost and observability
//! against the proposed BIST.

use crate::resources::{adc_usage, ResourceUsage};
use crate::setup::BistSetup;
use crate::SocError;
use nfbist_analog::circuits::NonInvertingAmplifier;
use nfbist_analog::component::{AnalogMux, Block};
use nfbist_analog::converter::Adc;
use nfbist_analog::noise::{CalibratedNoiseSource, NoiseSourceState};
use nfbist_analog::units::Kelvin;
use nfbist_core::estimator::NfMeasurement;
use nfbist_core::power_ratio;

/// Result of an ADC-baseline measurement.
#[derive(Debug, Clone)]
pub struct BaselineMeasurement {
    /// The measured noise figure.
    pub nf: NfMeasurement,
    /// Analytic expectation for the DUT.
    pub expected_nf_db: f64,
    /// Resource accounting (note the multi-bit record sizes).
    pub usage: ResourceUsage,
}

/// ADC + analog-mux Y-factor measurement of a single DUT.
///
/// # Examples
///
/// ```no_run
/// use nfbist_analog::circuits::NonInvertingAmplifier;
/// use nfbist_analog::opamp::OpampModel;
/// use nfbist_analog::units::Ohms;
/// use nfbist_soc::baseline::AdcYFactorBaseline;
/// use nfbist_soc::setup::BistSetup;
///
/// # fn main() -> Result<(), nfbist_soc::SocError> {
/// let dut = NonInvertingAmplifier::new(
///     OpampModel::tl081(),
///     Ohms::new(10_000.0),
///     Ohms::new(100.0),
/// )?;
/// let baseline = AdcYFactorBaseline::new(BistSetup::quick(1), dut, 12)?;
/// let m = baseline.measure()?;
/// println!("{}", m.nf);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AdcYFactorBaseline {
    setup: BistSetup,
    dut: NonInvertingAmplifier,
    adc: Adc,
    mux: AnalogMux,
    /// Gain applied ahead of the ADC so the noise uses the converter
    /// range.
    conditioning_gain: f64,
}

impl AdcYFactorBaseline {
    /// Builds the baseline with an ADC of `bits` resolution.
    ///
    /// # Errors
    ///
    /// Propagates setup validation and converter construction errors.
    pub fn new(
        setup: BistSetup,
        dut: NonInvertingAmplifier,
        bits: u32,
    ) -> Result<Self, SocError> {
        setup.validate()?;
        let adc = Adc::new(bits, 1.0)?;
        let mux = AnalogMux::new(2)?;
        // Scale the hot-state RMS to ~1/5 of full scale to keep
        // clipping negligible.
        let nyquist = setup.sample_rate / 2.0;
        let src_density = 4.0
            * nfbist_analog::constants::BOLTZMANN
            * setup.hot_kelvin
            * setup.source_resistance.value();
        let added = dut.mean_added_noise_density_sq(setup.source_resistance, 1.0, nyquist)?;
        let hot_rms = dut.gain() * ((src_density + added) * nyquist).sqrt();
        let conditioning_gain = 0.2 / hot_rms;
        Ok(AdcYFactorBaseline {
            setup,
            dut,
            adc,
            mux,
            conditioning_gain,
        })
    }

    /// The ADC model.
    pub fn adc(&self) -> &Adc {
        &self.adc
    }

    /// Acquires one quantized record for a source state.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn acquire(&self, state: NoiseSourceState) -> Result<Vec<f64>, SocError> {
        let n = self.setup.samples;
        let fs = self.setup.sample_rate;
        let mut src = CalibratedNoiseSource::new(
            Kelvin::new(self.setup.hot_kelvin),
            Kelvin::new(self.setup.cold_kelvin),
            self.setup.source_resistance,
            self.setup.seed ^ 0x0BAD_CAFE,
        )?;
        if state == NoiseSourceState::Cold {
            let _ = src.generate(state, 1, fs)?;
        }
        let source_noise = src.generate(state, n, fs)?;
        let dut_out = self.dut.amplify(
            &source_noise,
            self.setup.source_resistance,
            fs,
            self.setup.seed.wrapping_add(match state {
                NoiseSourceState::Hot => 77,
                NoiseSourceState::Cold => 88,
            }),
        )?;
        let scaled: Vec<f64> = dut_out.iter().map(|v| v * self.conditioning_gain).collect();
        // Through the (imperfect) mux, then the ADC.
        let muxed = self.mux.clone().process(&scaled);
        Ok(self.adc.quantize(&muxed)?)
    }

    /// Runs the measurement: hot/cold acquisitions, PSD band-power
    /// ratio (no reference needed — the ADC preserves absolute scale),
    /// Y-factor equation.
    ///
    /// # Errors
    ///
    /// Propagates acquisition and estimation errors.
    pub fn measure(&self) -> Result<BaselineMeasurement, SocError> {
        let hot = self.acquire(NoiseSourceState::Hot)?;
        let cold = self.acquire(NoiseSourceState::Cold)?;
        let y = power_ratio::psd_ratio(
            &hot,
            &cold,
            self.setup.sample_rate,
            self.setup.nfft,
            self.setup.noise_band,
        )?;
        let nf = NfMeasurement::from_y(y, self.setup.hot_kelvin, self.setup.cold_kelvin)?;
        let expected_nf_db = self.dut.expected_noise_figure_db(
            self.setup.source_resistance,
            self.setup.noise_band.0.max(1.0),
            self.setup.noise_band.1,
        )?;
        Ok(BaselineMeasurement {
            nf,
            expected_nf_db,
            usage: adc_usage(self.setup.samples, self.setup.nfft, self.adc.bits()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfbist_analog::opamp::OpampModel;
    use nfbist_analog::units::Ohms;

    fn dut(opamp: OpampModel) -> NonInvertingAmplifier {
        NonInvertingAmplifier::new(opamp, Ohms::new(10_000.0), Ohms::new(100.0)).unwrap()
    }

    #[test]
    fn validation() {
        let mut bad = BistSetup::quick(0);
        bad.post_gain = 0.0;
        assert!(AdcYFactorBaseline::new(bad, dut(OpampModel::op27()), 12).is_err());
        assert!(
            AdcYFactorBaseline::new(BistSetup::quick(0), dut(OpampModel::op27()), 0).is_err()
        );
    }

    #[test]
    fn baseline_recovers_expected_nf() {
        let baseline =
            AdcYFactorBaseline::new(BistSetup::quick(9), dut(OpampModel::tl081()), 12).unwrap();
        let m = baseline.measure().unwrap();
        assert!(
            (m.nf.figure.db() - m.expected_nf_db).abs() < 1.0,
            "measured {:.2} vs expected {:.2}",
            m.nf.figure.db(),
            m.expected_nf_db
        );
    }

    #[test]
    fn adc_memory_dwarfs_one_bit() {
        let baseline =
            AdcYFactorBaseline::new(BistSetup::quick(9), dut(OpampModel::tl081()), 12).unwrap();
        let m = baseline.measure().unwrap();
        let one_bit = crate::resources::one_bit_usage(
            baseline.setup.samples,
            baseline.setup.nfft,
        );
        assert!(m.usage.record_bytes >= 16 * one_bit.record_bytes);
        assert_eq!(baseline.adc().bits(), 12);
    }

    #[test]
    fn acquisition_stays_within_adc_range() {
        let baseline =
            AdcYFactorBaseline::new(BistSetup::quick(10), dut(OpampModel::ca3140()), 12).unwrap();
        let x = baseline.acquire(NoiseSourceState::Hot).unwrap();
        let peak = nfbist_dsp::stats::peak(&x).unwrap();
        assert!(peak <= 1.0);
        // Clipping should be rare: the RMS sits near 0.2 of full scale.
        let rms = nfbist_dsp::stats::rms(&x).unwrap();
        assert!(rms > 0.1 && rms < 0.35, "rms {rms}");
    }
}
