//! Fleet-scale lot screening: every die of a synthesized wafer
//! population through the full session → screen → retest flow.
//!
//! This is the production-line layer the paper's economics argument
//! (§1) assumes: the BIST cell is replicated on every die, so the
//! interesting object is no longer one measurement but a *lot* —
//! thousands of dies whose process parameters drift and whose defects
//! cluster spatially. The module glues the analog population model
//! ([`nfbist_analog::wafer::Lot`]) to the screening flow
//! ([`crate::screening::ScreeningRecipe`]):
//!
//! 1. [`LotScreen`] instantiates die `i` from the lot — process
//!    variation becomes `ExcessNoise`/`GainDeviation` faults, an
//!    assigned defect becomes a [`crate::coverage::FaultUniverse`]
//!    variant — and screens it with the per-die seed
//!    `derive_seed(lot_seed, i)`. A die outcome is a **pure function
//!    of its index**, so a scheduler can fan dies across any number
//!    of workers and reassemble bit-identical results.
//! 2. [`LotReport`] folds [`DieRecord`]s **in die order** into
//!    rolling yield / escape / retest-rate / test-time statistics (a
//!    dashboard that is meaningful mid-lot, not only at the end) and
//!    renders the classic wafer map (pass / fail / gross / unresolved
//!    / runtime-faulted per site). A record is either a measured
//!    [`DieOutcome`] or a [`DieFault`] — a die the *runtime* lost (a
//!    panicking worker, a blown deadline, an exhausted retry budget)
//!    rather than a die the screen rejected. A report carrying any
//!    fault is **degraded** ([`LotReport::degraded`]): its surviving
//!    dies are still bit-exact and slot-ordered, so partial results
//!    are first-class instead of an aborted lot.
//!
//! The parallel twin with admission control and backpressure is
//! `nfbist_runtime::fleet::FleetPlan::screen_lot`; its report is
//! bit-identical to the sequential [`LotScreen::run`] by
//! construction.

use crate::coverage::{DutBuilder, FaultUniverse};
use crate::screening::{
    CheckpointProbe, RetestPolicy, Screen, ScreeningRecipe, SequentialScreen, Verdict,
};
use crate::setup::BistSetup;
use crate::SocError;
use nfbist_analog::circuits::NonInvertingAmplifier;
use nfbist_analog::fault::AnalogFault;
use nfbist_analog::opamp::OpampModel;
use nfbist_analog::units::Ohms;
use nfbist_analog::wafer::{Lot, WaferMap};

/// The outcome of screening one die, the unit a lot report folds.
///
/// # Examples
///
/// ```
/// use nfbist_soc::fleet::DieOutcome;
/// use nfbist_soc::screening::Verdict;
///
/// let die = DieOutcome {
///     die: 12,
///     defect: None,
///     verdict: Verdict::Fail,
///     retests: 0,
///     nf_db: f64::INFINITY,
///     test_samples: 1 << 15,
/// };
/// assert!(die.is_gross());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DieOutcome {
    /// Die index within the lot.
    pub die: usize,
    /// `Some(variant)` when the die carried a defect: the index of the
    /// fault-universe variant that was injected.
    pub defect: Option<usize>,
    /// Final screening verdict after retest escalation.
    pub verdict: Verdict,
    /// Retests performed (rounds beyond the first).
    pub retests: usize,
    /// NF measured in the final round, in dB (`f64::INFINITY` for an
    /// unmeasurable gross reject).
    pub nf_db: f64,
    /// Total samples acquired across all rounds, hot+cold, all repeats
    /// — the die's test-time cost.
    pub test_samples: u64,
}

impl DieOutcome {
    /// `true` when the die was a gross reject (unmeasurable — the
    /// Y-factor equation degenerated).
    pub fn is_gross(&self) -> bool {
        self.verdict == Verdict::Fail && self.nf_db == f64::INFINITY
    }
}

/// Why the runtime lost a die — a fault of the *screening machinery*,
/// not a verdict about the silicon.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DieFaultKind {
    /// The worker screening the die panicked.
    Panicked {
        /// Rendered panic message.
        message: String,
    },
    /// The die's screening job ran past its deadline and its (late)
    /// result was discarded.
    DeadlineExceeded,
    /// The die's transient buffers could not be allocated.
    AllocationFailed,
    /// The screening flow returned an error (configuration,
    /// estimation, admission, …), rendered into a message.
    Error {
        /// Rendered error message.
        message: String,
    },
}

/// A die the runtime failed to screen: which die, how many attempts
/// were made, and the final fault. Folded into a [`LotReport`] beside
/// measured outcomes, turning a crashed lot into a degraded one.
///
/// # Examples
///
/// ```
/// use nfbist_soc::fleet::{DieFault, DieFaultKind};
///
/// let fault = DieFault {
///     die: 4,
///     attempts: 3,
///     kind: DieFaultKind::DeadlineExceeded,
/// };
/// assert_eq!(fault.die, 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DieFault {
    /// Die index within the lot.
    pub die: usize,
    /// Screening attempts made before the die was given up on.
    pub attempts: usize,
    /// The final attempt's fault.
    pub kind: DieFaultKind,
}

/// One folded entry of a [`LotReport`]: either a measured outcome or
/// a runtime fault.
#[derive(Debug, Clone, PartialEq)]
pub enum DieRecord {
    /// The die was screened and judged.
    Screened(DieOutcome),
    /// The runtime lost the die (panic / deadline / quarantine / …).
    Faulted(DieFault),
}

impl DieRecord {
    /// The die index this record describes.
    pub fn die(&self) -> usize {
        match self {
            DieRecord::Screened(outcome) => outcome.die,
            DieRecord::Faulted(fault) => fault.die,
        }
    }

    /// The measured outcome, when the die was screened.
    pub fn outcome(&self) -> Option<&DieOutcome> {
        match self {
            DieRecord::Screened(outcome) => Some(outcome),
            DieRecord::Faulted(_) => None,
        }
    }

    /// The runtime fault, when the die was lost.
    pub fn fault(&self) -> Option<&DieFault> {
        match self {
            DieRecord::Screened(_) => None,
            DieRecord::Faulted(fault) => Some(fault),
        }
    }
}

/// Whether a lot screen completed cleanly or lost dies to runtime
/// faults (see [`LotReport::status`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LotStatus {
    /// Every die was screened and judged.
    Complete,
    /// At least one die was lost to a runtime fault; the surviving
    /// dies' outcomes are still exact.
    Degraded,
}

/// A wafer-lot screening plan: the lot population, the guard-banded
/// screen, the retest policy, and the defect fault universe.
///
/// # Examples
///
/// ```
/// use nfbist_analog::wafer::{DefectModel, Lot, ProcessVariation, WaferMap};
/// use nfbist_soc::coverage::FaultUniverse;
/// use nfbist_soc::fleet::LotScreen;
/// use nfbist_soc::screening::Screen;
/// use nfbist_soc::setup::BistSetup;
///
/// # fn main() -> Result<(), nfbist_soc::SocError> {
/// let lot = Lot::new(
///     WaferMap::disc(6)?,
///     ProcessVariation::default(),
///     DefectModel::new().background(0.2)?,
///     7,
/// )?;
/// let mut setup = BistSetup::quick(0); // seed is overridden by the lot
/// setup.samples = 1 << 13;
/// setup.nfft = 1_024;
/// let universe = FaultUniverse::new().excess_noise(&[8.0])?;
/// let screening = LotScreen::new(lot, setup, Screen::new(12.0, 3.0)?, universe)?;
/// let report = screening.run()?;
/// assert_eq!(report.dies(), screening.dies());
/// # Ok(())
/// # }
/// ```
pub struct LotScreen {
    lot: Lot,
    setup: BistSetup,
    screen: Screen,
    universe: FaultUniverse,
    retest: RetestPolicy,
    repeats: usize,
    session_budget: Option<usize>,
    streaming_chunk: Option<usize>,
    adaptive: Option<SequentialScreen>,
    build_dut: DutBuilder,
}

impl std::fmt::Debug for LotScreen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LotScreen")
            .field("dies", &self.lot.dies())
            .field("setup", &self.setup)
            .field("screen", &self.screen)
            .field("variants", &self.universe.len())
            .field("retest", &self.retest)
            .field("repeats", &self.repeats)
            .field("session_budget", &self.session_budget)
            .field("streaming_chunk", &self.streaming_chunk)
            .field("adaptive", &self.adaptive)
            .finish()
    }
}

impl LotScreen {
    /// Creates a lot screen. The setup's seed is overridden by the
    /// lot's seed (one seed determines the whole lot, population and
    /// measurements alike), and the lot's defect kinds are bound to
    /// the universe's *faulty* variants (variant 0 is the healthy
    /// design and is never assigned as a defect).
    ///
    /// Defaults: no retest escalation ([`RetestPolicy::single`]),
    /// 1 repeat, unbudgeted sessions, the paper's TL081 non-inverting
    /// prototype as the healthy DUT.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidParameter`] for an invalid setup or
    /// a universe without at least one faulty variant.
    pub fn new(
        lot: Lot,
        mut setup: BistSetup,
        screen: Screen,
        universe: FaultUniverse,
    ) -> Result<Self, SocError> {
        setup.validate()?;
        if universe.len() < 2 {
            return Err(SocError::InvalidParameter {
                name: "universe",
                reason: "a lot screen needs at least one faulty variant to assign to defects",
            });
        }
        setup.seed = lot.seed();
        let lot = lot.defect_kinds(universe.len() - 1);
        Ok(LotScreen {
            lot,
            setup,
            screen,
            universe,
            retest: RetestPolicy::single(),
            repeats: 1,
            session_budget: None,
            streaming_chunk: None,
            adaptive: None,
            build_dut: Box::new(|| {
                Ok(Box::new(NonInvertingAmplifier::new(
                    OpampModel::tl081(),
                    Ohms::new(10_000.0),
                    Ohms::new(100.0),
                )?))
            }),
        })
    }

    /// Enables retest escalation with the given policy.
    pub fn retest(mut self, policy: RetestPolicy) -> Self {
        self.retest = policy;
        self
    }

    /// Sets the hot/cold repeats averaged per measurement (clamped to
    /// ≥ 1).
    pub fn repeats(mut self, n: usize) -> Self {
        self.repeats = n.max(1);
        self
    }

    /// Caps every die session at `bytes` of acquisition memory — the
    /// per-die half of the fleet's bounded-RSS story (sessions above
    /// the cap stream in chunks, bit-identically). The scheduler's
    /// admission gate is the other half.
    pub fn session_budget(mut self, bytes: usize) -> Self {
        self.session_budget = Some(bytes);
        self
    }

    /// Pins every die session's streaming chunk to `samples` (instead
    /// of deriving it from the memory budget). Chunking affects peak
    /// memory and scheduling granularity only — die outcomes are
    /// bit-identical for every chunk size, which the adaptive
    /// determinism suite pins down.
    pub fn streaming_chunk(mut self, samples: usize) -> Self {
        self.streaming_chunk = Some(samples);
        self
    }

    /// Switches every die to *adaptive* (sequential, early-stopping)
    /// acquisition: instead of one fixed-length measurement plus retest
    /// escalation, each die grows its record through the checkpoint
    /// schedule of `seq` and stops the moment the running estimate
    /// clears or fails the limit
    /// ([`crate::screening::screen_sequential`]). The setup's record
    /// length becomes the hard cap, the retest policy plays no role,
    /// and [`DieOutcome::test_samples`] records what each die actually
    /// consumed — compare against
    /// [`LotScreen::fixed_die_samples`] via
    /// [`LotReport::test_time_reduction_vs`] for the lot-level
    /// mean-test-time reduction.
    ///
    /// The stopping decision stays a pure function of
    /// `derive_seed(lot_seed, die)`, so adaptive lot reports remain
    /// bit-identical across workers, budgets and chunk sizes.
    pub fn adaptive(mut self, seq: SequentialScreen) -> Self {
        self.adaptive = Some(seq);
        self
    }

    /// The sequential screen in force, when the lot is adaptive.
    pub fn adaptive_screen(&self) -> Option<&SequentialScreen> {
        self.adaptive.as_ref()
    }

    /// The per-die test-time bill of the *fixed* schedule without
    /// escalation, in samples (hot + cold, all repeats): the baseline
    /// an adaptive lot's [`LotReport::mean_test_samples`] is compared
    /// against.
    pub fn fixed_die_samples(&self) -> u64 {
        self.setup.samples as u64 * 2 * self.repeats as u64
    }

    /// Overrides the healthy-DUT builder (called once per measurement
    /// round).
    pub fn dut_builder<F>(mut self, build: F) -> Self
    where
        F: Fn() -> Result<Box<dyn nfbist_analog::dut::Dut>, SocError> + Send + Sync + 'static,
    {
        self.build_dut = Box::new(build);
        self
    }

    /// The lot under screen.
    pub fn lot(&self) -> &Lot {
        &self.lot
    }

    /// Number of dies in the lot.
    pub fn dies(&self) -> usize {
        self.lot.dies()
    }

    /// The screening limit in force.
    pub fn screen(&self) -> &Screen {
        &self.screen
    }

    /// The base measurement setup (seed = lot seed).
    pub fn setup(&self) -> &BistSetup {
        &self.setup
    }

    /// The defect fault universe.
    pub fn universe(&self) -> &FaultUniverse {
        &self.universe
    }

    /// An upper bound on one die job's transient memory, in bytes —
    /// the admission cost a scheduler's global memory gate charges per
    /// in-flight die.
    ///
    /// With a session budget set this is the budget itself (the
    /// streaming pipeline caps every round's acquisition); otherwise
    /// it is the final escalation round's record at 8 bytes per
    /// sample, times the ~4 record-sized buffers a round holds at its
    /// peak (noise, reference, hot and cold acquisitions).
    pub fn die_cost_bytes(&self) -> usize {
        if let Some(budget) = self.session_budget {
            return budget.max(1);
        }
        // Adaptive acquisition never escalates past the setup's record
        // length: the cap itself is the worst case.
        let worst_samples = if self.adaptive.is_some() {
            self.setup.samples
        } else {
            self.setup.samples.saturating_mul(
                self.retest
                    .growth()
                    .saturating_pow((self.retest.max_rounds() as u32).saturating_sub(1)),
            )
        };
        worst_samples.saturating_mul(8).saturating_mul(4).max(1)
    }

    /// Screens die `i`: instantiates the die's process variation and
    /// defect (if any) as faults on the healthy design, then runs the
    /// guard-banded retest flow seeded by `derive_seed(lot_seed, i)`.
    ///
    /// Pure in `i`: the same index always produces the same outcome,
    /// regardless of call order, thread, or which other dies ran
    /// before — the invariant every parallel schedule relies on.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::Analog`] for an out-of-range die index and
    /// propagates configuration errors (an *unmeasurable* die is a
    /// gross-reject [`Verdict::Fail`], not an error).
    pub fn screen_die(&self, i: usize) -> Result<DieOutcome, SocError> {
        self.screen_die_inner(i, None)
    }

    /// [`LotScreen::screen_die`] with a per-checkpoint
    /// [`CheckpointProbe`], meaningful only for an *adaptive* lot: the
    /// probe fires at every sequential checkpoint, which is where a
    /// fault-injecting runtime kills or stalls a die mid-acquisition
    /// (see [`crate::screening::screen_sequential_probed`]). On a
    /// fixed-schedule lot the probe is ignored.
    ///
    /// # Errors
    ///
    /// As [`LotScreen::screen_die`].
    pub fn screen_die_probed(
        &self,
        i: usize,
        probe: CheckpointProbe<'_>,
    ) -> Result<DieOutcome, SocError> {
        self.screen_die_inner(i, Some(probe))
    }

    fn screen_die_inner(
        &self,
        i: usize,
        probe: Option<CheckpointProbe<'_>>,
    ) -> Result<DieOutcome, SocError> {
        let die = self.lot.die(i)?;

        let mut recipe = ScreeningRecipe::new()
            .dut_builder(&*self.build_dut)
            .repeats(self.repeats);
        // Process variation: the healthy floor is the designed noise
        // (the population model already floors the multiplier at 1).
        if die.noise_scale > 1.0 {
            recipe = recipe.analog_fault(AnalogFault::ExcessNoise {
                factor: die.noise_scale,
            })?;
        }
        if die.gain_scale != 1.0 {
            recipe = recipe.analog_fault(AnalogFault::GainDeviation {
                factor: die.gain_scale,
            })?;
        }
        // A defect kind maps onto the universe's faulty variants
        // (variant 0 is the healthy design, never a defect).
        let defect = die.defect.map(|kind| 1 + kind % (self.universe.len() - 1));
        if let Some(variant_index) = defect {
            let variant = self
                .universe
                .get(variant_index)
                .expect("defect kinds are bound to the universe length");
            recipe = recipe
                .analog_faults(variant.analog_faults().iter().copied())?
                .bit_faults(variant.bit_faults().iter().copied())?;
        }
        if let Some(budget) = self.session_budget {
            recipe = recipe.memory_budget(budget);
        }
        if let Some(chunk) = self.streaming_chunk {
            recipe = recipe.streaming_chunk(chunk);
        }

        if let Some(seq) = &self.adaptive {
            let outcome = match probe {
                Some(probe) => {
                    recipe.screen_sequential_indexed_probed(seq, &self.setup, i as u64, probe)?
                }
                None => recipe.screen_sequential_indexed(seq, &self.setup, i as u64)?,
            };
            return Ok(DieOutcome {
                die: i,
                defect,
                verdict: outcome.verdict,
                // The checkpoint schedule replaces retest escalation.
                retests: 0,
                nf_db: outcome.nf_db,
                // Hot + cold per repeat; only the samples acquired
                // before the stop are billed.
                test_samples: outcome.samples as u64 * 2 * self.repeats as u64,
            });
        }

        let outcome = recipe.screen_indexed(&self.screen, &self.setup, &self.retest, i as u64)?;
        let final_round = outcome
            .rounds
            .last()
            .expect("screen_with_retest always records at least one round");
        Ok(DieOutcome {
            die: i,
            defect,
            verdict: outcome.verdict,
            retests: outcome.retests(),
            nf_db: final_round.nf_db,
            // Hot + cold per repeat, per round.
            test_samples: outcome.total_samples() * 2 * self.repeats as u64,
        })
    }

    /// Folds die outcomes — supplied in **any** order — into the lot
    /// report. Outcomes are re-ordered by die index before folding, so
    /// every schedule (sequential, work-stealing, backpressured)
    /// produces the same report bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidParameter`] when `outcomes` is not
    /// exactly one outcome per die of the lot.
    pub fn assemble(&self, outcomes: Vec<DieOutcome>) -> Result<LotReport, SocError> {
        self.assemble_records(outcomes.into_iter().map(DieRecord::Screened).collect())
    }

    /// Folds die records — measured outcomes and runtime faults alike,
    /// supplied in **any** order — into the lot report. The
    /// fault-tolerant scheduler's entry point: a die the runtime lost
    /// arrives as [`DieRecord::Faulted`] and degrades the report
    /// instead of discarding the lot.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidParameter`] when `records` is not
    /// exactly one record per die of the lot.
    pub fn assemble_records(&self, records: Vec<DieRecord>) -> Result<LotReport, SocError> {
        if records.len() != self.dies() {
            return Err(SocError::InvalidParameter {
                name: "records",
                reason: "record count must equal the lot's die count",
            });
        }
        let mut slots: Vec<Option<DieRecord>> = (0..self.dies()).map(|_| None).collect();
        for record in records {
            let slot = slots
                .get_mut(record.die())
                .ok_or(SocError::InvalidParameter {
                    name: "records",
                    reason: "die index beyond the lot",
                })?;
            if slot.is_some() {
                return Err(SocError::InvalidParameter {
                    name: "records",
                    reason: "duplicate record for one die",
                });
            }
            *slot = Some(record);
        }
        let mut report = LotReport::new();
        for slot in slots {
            report.push_record(slot.expect("counted: every slot filled exactly once"))?;
        }
        Ok(report)
    }

    /// Screens the whole lot sequentially, in die order. The parallel
    /// twin is `nfbist_runtime::fleet::FleetPlan::screen_lot`, whose
    /// report is bit-identical.
    ///
    /// # Errors
    ///
    /// Propagates the first failing die, in die order.
    pub fn run(&self) -> Result<LotReport, SocError> {
        let outcomes = (0..self.dies())
            .map(|i| self.screen_die(i))
            .collect::<Result<Vec<_>, _>>()?;
        self.assemble(outcomes)
    }
}

/// Rolling lot statistics: the yield dashboard a production line
/// watches while the lot is still on the tester.
///
/// Records are folded **in die order** ([`LotReport::push_record`]
/// enforces it), so the floating-point accumulators — and with them
/// every statistic — are bit-identical no matter what schedule
/// produced the records. A die the runtime lost arrives as a
/// [`DieFault`] instead of an outcome: it contributes nothing to the
/// measurement statistics (its NF was never trusted) but still counts
/// against yield, and its presence marks the whole report
/// [`LotStatus::Degraded`].
///
/// # Examples
///
/// ```
/// use nfbist_soc::fleet::{DieOutcome, LotReport};
/// use nfbist_soc::screening::Verdict;
///
/// # fn main() -> Result<(), nfbist_soc::SocError> {
/// let mut report = LotReport::new();
/// report.push(DieOutcome {
///     die: 0,
///     defect: None,
///     verdict: Verdict::Pass,
///     retests: 0,
///     nf_db: 9.1,
///     test_samples: 1 << 14,
/// })?;
/// report.push(DieOutcome {
///     die: 1,
///     defect: Some(3),
///     verdict: Verdict::Fail,
///     retests: 1,
///     nf_db: 17.0,
///     test_samples: 3 << 14,
/// })?;
/// assert_eq!(report.dies(), 2);
/// assert_eq!(report.yield_fraction(), 0.5);
/// assert_eq!(report.detection_rate(), Some(1.0));
/// assert_eq!(report.rolling_yield(), &[1.0, 0.5]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LotReport {
    records: Vec<DieRecord>,
    faulted: usize,
    pass: usize,
    fail: usize,
    unresolved: usize,
    gross: usize,
    defective: usize,
    detected: usize,
    escaped: usize,
    healthy_rejects: usize,
    retested: usize,
    total_retests: usize,
    test_samples: u64,
    nf_sum: f64,
    nf_count: usize,
    rolling_yield: Vec<f64>,
}

impl LotReport {
    /// An empty report; fold records with [`LotReport::push_record`]
    /// (or outcomes with [`LotReport::push`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds the next die outcome into the rolling statistics —
    /// shorthand for [`LotReport::push_record`] with a
    /// [`DieRecord::Screened`].
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidParameter`] when `outcome.die` is
    /// not the next die in sequence — out-of-order folding would make
    /// the floating-point accumulators schedule-dependent, which is
    /// exactly what this type exists to prevent.
    pub fn push(&mut self, outcome: DieOutcome) -> Result<(), SocError> {
        self.push_record(DieRecord::Screened(outcome))
    }

    /// Folds the next die's runtime fault — shorthand for
    /// [`LotReport::push_record`] with a [`DieRecord::Faulted`].
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidParameter`] when `fault.die` is not
    /// the next die in sequence.
    pub fn push_fault(&mut self, fault: DieFault) -> Result<(), SocError> {
        self.push_record(DieRecord::Faulted(fault))
    }

    /// Folds the next die record into the rolling statistics. A
    /// screened die updates the measurement accumulators; a faulted
    /// die only degrades the report — the runtime never trusted its
    /// numbers, so none enter any sum — while still counting against
    /// yield.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidParameter`] when `record.die()` is
    /// not the next die in sequence — out-of-order folding would make
    /// the floating-point accumulators schedule-dependent, which is
    /// exactly what this type exists to prevent.
    pub fn push_record(&mut self, record: DieRecord) -> Result<(), SocError> {
        if record.die() != self.records.len() {
            return Err(SocError::InvalidParameter {
                name: "record",
                reason: "records must be folded in die order (use LotScreen::assemble_records)",
            });
        }
        match &record {
            DieRecord::Faulted(_) => self.faulted += 1,
            DieRecord::Screened(outcome) => {
                match outcome.verdict {
                    Verdict::Pass => self.pass += 1,
                    Verdict::Fail => self.fail += 1,
                    Verdict::Retest => self.unresolved += 1,
                }
                if outcome.is_gross() {
                    self.gross += 1;
                } else if outcome.nf_db.is_finite() {
                    self.nf_sum += outcome.nf_db;
                    self.nf_count += 1;
                }
                if outcome.defect.is_some() {
                    self.defective += 1;
                    match outcome.verdict {
                        Verdict::Fail => self.detected += 1,
                        Verdict::Pass => self.escaped += 1,
                        Verdict::Retest => {}
                    }
                } else if outcome.verdict == Verdict::Fail {
                    self.healthy_rejects += 1;
                }
                if outcome.retests > 0 {
                    self.retested += 1;
                    self.total_retests += outcome.retests;
                }
                self.test_samples += outcome.test_samples;
            }
        }
        self.records.push(record);
        self.rolling_yield
            .push(self.pass as f64 / self.records.len() as f64);
        Ok(())
    }

    /// Dies folded so far (screened and faulted alike).
    pub fn dies(&self) -> usize {
        self.records.len()
    }

    /// Every die record, in die order.
    pub fn records(&self) -> &[DieRecord] {
        &self.records
    }

    /// The measured outcomes, in die order, skipping faulted dies.
    pub fn outcomes(&self) -> impl Iterator<Item = &DieOutcome> {
        self.records.iter().filter_map(DieRecord::outcome)
    }

    /// The runtime faults, in die order.
    pub fn faults(&self) -> impl Iterator<Item = &DieFault> {
        self.records.iter().filter_map(DieRecord::fault)
    }

    /// Dies the runtime lost (panic / deadline / quarantine / …).
    pub fn faulted(&self) -> usize {
        self.faulted
    }

    /// `true` when at least one die was lost to a runtime fault.
    pub fn degraded(&self) -> bool {
        self.faulted > 0
    }

    /// [`LotStatus::Complete`] for a fully screened lot,
    /// [`LotStatus::Degraded`] when any die was lost to the runtime.
    pub fn status(&self) -> LotStatus {
        if self.degraded() {
            LotStatus::Degraded
        } else {
            LotStatus::Complete
        }
    }

    /// Dies judged Pass.
    pub fn passed(&self) -> usize {
        self.pass
    }

    /// Dies judged Fail (gross rejects included).
    pub fn failed(&self) -> usize {
        self.fail
    }

    /// Dies still in the guard band when the retest budget ran out.
    pub fn unresolved(&self) -> usize {
        self.unresolved
    }

    /// Gross rejects (unmeasurable dies), a subset of
    /// [`LotReport::failed`].
    pub fn gross(&self) -> usize {
        self.gross
    }

    /// Dies the population model made defective.
    pub fn defective(&self) -> usize {
        self.defective
    }

    /// Defective dies the screen caught (judged Fail).
    pub fn detected(&self) -> usize {
        self.detected
    }

    /// Defective dies that escaped (judged Pass — shipped defects).
    pub fn escaped(&self) -> usize {
        self.escaped
    }

    /// Healthy dies wrongly rejected (yield loss to the screen
    /// itself).
    pub fn healthy_rejects(&self) -> usize {
        self.healthy_rejects
    }

    /// Dies that needed at least one retest.
    pub fn retested(&self) -> usize {
        self.retested
    }

    /// Total retest rounds across the lot.
    pub fn total_retests(&self) -> usize {
        self.total_retests
    }

    /// Lot yield: fraction of dies judged Pass.
    pub fn yield_fraction(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.pass as f64 / self.records.len() as f64
        }
    }

    /// Yield after each die, in die order — the dashboard curve
    /// (`rolling_yield()[i]` is the yield over dies `0..=i`).
    pub fn rolling_yield(&self) -> &[f64] {
        &self.rolling_yield
    }

    /// Detection rate over defective dies, or `None` for a
    /// defect-free lot.
    pub fn detection_rate(&self) -> Option<f64> {
        (self.defective > 0).then(|| self.detected as f64 / self.defective as f64)
    }

    /// Escape rate over defective dies (shipped defects), or `None`
    /// for a defect-free lot.
    pub fn escape_rate(&self) -> Option<f64> {
        (self.defective > 0).then(|| self.escaped as f64 / self.defective as f64)
    }

    /// Fraction of dies that needed at least one retest.
    pub fn retest_rate(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.retested as f64 / self.records.len() as f64
        }
    }

    /// Total samples acquired by the lot (hot+cold, all repeats and
    /// rounds) — its test-time bill.
    pub fn test_samples(&self) -> u64 {
        self.test_samples
    }

    /// Mean test time per die, in samples.
    pub fn mean_test_samples(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.test_samples as f64 / self.records.len() as f64
        }
    }

    /// Mean-test-time reduction of this lot versus a fixed-schedule
    /// baseline cost per die (`LotScreen::fixed_die_samples` for the
    /// escalation-free fixed schedule): a factor of 2.0 means the lot
    /// spent half the baseline's samples per die. Returns `None` for
    /// an empty report or a non-positive baseline.
    pub fn test_time_reduction_vs(&self, baseline_samples_per_die: f64) -> Option<f64> {
        let mean = self.mean_test_samples();
        (mean > 0.0 && baseline_samples_per_die > 0.0).then(|| baseline_samples_per_die / mean)
    }

    /// Mean measured NF in dB over the lot's measurable dies
    /// (`f64::INFINITY` when no die was measurable).
    pub fn mean_nf_db(&self) -> f64 {
        if self.nf_count == 0 {
            f64::INFINITY
        } else {
            self.nf_sum / self.nf_count as f64
        }
    }

    /// Renders the lot as the classic wafer map on its wafer geometry:
    /// `o` pass, `x` fail, `G` gross reject, `?` unresolved (retest
    /// budget exhausted), `!` runtime-faulted, `·` off-wafer.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidParameter`] when the wafer's die
    /// count does not match the folded records.
    pub fn render_on(&self, wafer: &WaferMap) -> Result<String, SocError> {
        if wafer.dies() != self.records.len() {
            return Err(SocError::InvalidParameter {
                name: "wafer",
                reason: "wafer die count must match the report's records",
            });
        }
        Ok(wafer.render(|site| match &self.records[site.index] {
            DieRecord::Faulted(_) => '!',
            DieRecord::Screened(outcome) => {
                if outcome.is_gross() {
                    'G'
                } else {
                    match outcome.verdict {
                        Verdict::Pass => 'o',
                        Verdict::Fail => 'x',
                        Verdict::Retest => '?',
                    }
                }
            }
        }))
    }

    /// The report's headline statistics as a formatted table.
    pub fn to_table(&self) -> crate::report::Table {
        let mut table = crate::report::Table::new(vec!["Lot statistic", "Value"]);
        let pct = |x: f64| format!("{:.1} %", 100.0 * x);
        table.row(vec!["dies".to_string(), self.dies().to_string()]);
        table.row(vec![
            "status".to_string(),
            match self.status() {
                LotStatus::Complete => "complete".to_string(),
                LotStatus::Degraded => format!("degraded ({} faulted)", self.faulted),
            },
        ]);
        table.row(vec![
            "pass / fail / unresolved".to_string(),
            format!("{} / {} / {}", self.pass, self.fail, self.unresolved),
        ]);
        table.row(vec!["yield".to_string(), pct(self.yield_fraction())]);
        table.row(vec![
            "defective (detected / escaped)".to_string(),
            format!("{} ({} / {})", self.defective, self.detected, self.escaped),
        ]);
        table.row(vec!["gross rejects".to_string(), self.gross.to_string()]);
        table.row(vec![
            "healthy rejects".to_string(),
            self.healthy_rejects.to_string(),
        ]);
        table.row(vec![
            "retest rate".to_string(),
            format!("{} ({})", pct(self.retest_rate()), self.total_retests),
        ]);
        table.row(vec![
            "mean NF (dB)".to_string(),
            if self.mean_nf_db().is_finite() {
                format!("{:.2}", self.mean_nf_db())
            } else {
                "∞".to_string()
            },
        ]);
        table.row(vec![
            "mean test samples / die".to_string(),
            format!("{:.0}", self.mean_test_samples()),
        ]);
        table
    }
}

impl std::fmt::Display for LotReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfbist_analog::wafer::{DefectModel, ProcessVariation};

    fn tiny_setup(seed: u64) -> BistSetup {
        let mut setup = BistSetup::quick(seed);
        setup.samples = 1 << 13;
        setup.nfft = 1_024;
        setup
    }

    fn tiny_lot(seed: u64, background: f64) -> Lot {
        Lot::new(
            WaferMap::disc(6).unwrap(),
            ProcessVariation::default(),
            DefectModel::new().background(background).unwrap(),
            seed,
        )
        .unwrap()
    }

    fn calibrated_screen() -> Screen {
        // Limit 1.2 dB above the TL081 prototype's expected NF: room
        // for process variation, none for gross noise defects.
        let dut =
            NonInvertingAmplifier::new(OpampModel::tl081(), Ohms::new(10_000.0), Ohms::new(100.0))
                .unwrap();
        let expected = dut
            .expected_noise_figure_db(Ohms::new(2_000.0), 100.0, 1_000.0)
            .unwrap();
        Screen::new(expected + 1.2, 3.0).unwrap()
    }

    #[test]
    fn validation_and_accessors() {
        let screen = Screen::new(10.0, 3.0).unwrap();
        // Healthy-only universe: nothing to assign to defects.
        assert!(LotScreen::new(
            tiny_lot(1, 0.0),
            tiny_setup(1),
            screen,
            FaultUniverse::new()
        )
        .is_err());
        let mut bad = tiny_setup(1);
        bad.samples = 0;
        let universe = FaultUniverse::new().excess_noise(&[8.0]).unwrap();
        assert!(LotScreen::new(tiny_lot(1, 0.0), bad, screen, universe.clone()).is_err());

        let screening = LotScreen::new(tiny_lot(9, 0.0), tiny_setup(1), screen, universe).unwrap();
        assert_eq!(screening.setup().seed, screening.lot().seed());
        assert_eq!(screening.dies(), screening.lot().dies());
        assert_eq!(screening.universe().len(), 2);
        assert_eq!(screening.screen().limit_db(), 10.0);
        assert!(screening.screen_die(screening.dies()).is_err());
        assert!(format!("{screening:?}").contains("LotScreen"));
        // The admission cost scales with retest escalation…
        let base = screening.die_cost_bytes();
        assert_eq!(base, (1 << 13) * 8 * 4);
        let escalated = LotScreen::new(
            tiny_lot(9, 0.0),
            tiny_setup(1),
            screen,
            FaultUniverse::new().excess_noise(&[8.0]).unwrap(),
        )
        .unwrap()
        .retest(RetestPolicy::new(3, 4).unwrap());
        assert_eq!(escalated.die_cost_bytes(), base * 16);
        // …and collapses to the budget when sessions are budgeted.
        assert_eq!(
            escalated.session_budget(64 * 1024).die_cost_bytes(),
            64 * 1024
        );
    }

    #[test]
    fn dies_are_pure_and_assembly_is_order_free() {
        let universe = FaultUniverse::new().excess_noise(&[8.0]).unwrap();
        let screening = LotScreen::new(
            tiny_lot(33, 0.3),
            tiny_setup(0),
            calibrated_screen(),
            universe,
        )
        .unwrap()
        .retest(RetestPolicy::new(2, 2).unwrap());
        let a = screening.screen_die(7).unwrap();
        let b = screening.screen_die(7).unwrap();
        assert_eq!(a, b, "a die must be a pure function of its index");
        // Sequential run == assembled reversed outcomes.
        let report = screening.run().unwrap();
        let mut outcomes: Vec<DieOutcome> = (0..screening.dies())
            .map(|i| screening.screen_die(i).unwrap())
            .collect();
        outcomes.reverse();
        assert_eq!(report, screening.assemble(outcomes).unwrap());
        assert_eq!(report.dies(), screening.dies());
    }

    #[test]
    fn assemble_rejects_malformed_outcome_sets() {
        let universe = FaultUniverse::new().excess_noise(&[8.0]).unwrap();
        let screening = LotScreen::new(
            tiny_lot(5, 0.0),
            tiny_setup(0),
            Screen::new(10.0, 3.0).unwrap(),
            universe,
        )
        .unwrap();
        let outcome = |die: usize| DieOutcome {
            die,
            defect: None,
            verdict: Verdict::Pass,
            retests: 0,
            nf_db: 9.0,
            test_samples: 1,
        };
        assert!(screening.assemble(Vec::new()).is_err(), "wrong count");
        let dup: Vec<DieOutcome> = (0..screening.dies()).map(|_| outcome(0)).collect();
        assert!(screening.assemble(dup).is_err(), "duplicate die");
        let mut range: Vec<DieOutcome> = (0..screening.dies()).map(outcome).collect();
        range.last_mut().unwrap().die = screening.dies();
        assert!(screening.assemble(range).is_err(), "die beyond the lot");
        // And the report itself refuses out-of-order folding.
        let mut report = LotReport::new();
        assert!(report.push(outcome(3)).is_err());
        report.push(outcome(0)).unwrap();
        assert!(report.push(outcome(0)).is_err());
    }

    #[test]
    fn defective_lot_screens_to_a_meaningful_report() {
        // 40% background defects split between a moderate (2×, +3 dB)
        // and a gross (8×) noise fault: the screen must catch all of
        // them — the moderate ones with finite NF, the gross ones as
        // unmeasurable rejects — while healthy dies pass.
        let universe = FaultUniverse::new().excess_noise(&[2.0, 8.0]).unwrap();
        let screening = LotScreen::new(
            tiny_lot(101, 0.4),
            tiny_setup(0),
            calibrated_screen(),
            universe,
        )
        .unwrap()
        .retest(RetestPolicy::new(3, 4).unwrap());
        let report = screening.run().unwrap();
        assert!(report.defective() > 3, "seed must produce defects");
        assert!(report.defective() < report.dies(), "and healthy dies");
        assert_eq!(
            report.detection_rate(),
            Some(1.0),
            "8x noise defects must all be caught: {report}"
        );
        assert_eq!(report.escape_rate(), Some(0.0));
        assert_eq!(report.escaped(), 0);
        assert!(
            report.yield_fraction() > 0.3,
            "healthy dies must mostly pass: {report}"
        );
        assert_eq!(
            report.passed() + report.failed() + report.unresolved(),
            report.dies()
        );
        assert!(report.detected() <= report.failed());
        assert!(report.mean_nf_db().is_finite());
        assert!(report.test_samples() >= (report.dies() as u64) * 2 * (1 << 13));
        assert_eq!(report.rolling_yield().len(), report.dies());
        assert_eq!(
            report.rolling_yield().last().copied(),
            Some(report.yield_fraction())
        );
        // The wafer map renders one mark per site.
        let map = report.render_on(screening.lot().wafer()).unwrap();
        let marks = map
            .chars()
            .filter(|c| matches!(c, 'o' | 'x' | 'G' | '?'))
            .count();
        assert_eq!(marks, report.dies());
        assert!(map.contains('x'), "defects must appear on the map:\n{map}");
        // Mismatched wafer geometry is rejected.
        assert!(report.render_on(&WaferMap::disc(3).unwrap()).is_err());
        // Table smoke.
        let shown = report.to_string();
        assert!(shown.contains("yield") && shown.contains("dies"));
    }

    #[test]
    fn adaptive_lot_stops_early_and_reports_the_reduction() {
        // An adaptive lot at an operating point the sequential rule can
        // resolve (margin +2.5 dB, 2-sigma guard): healthy dies
        // early-pass, gross 8x-noise defects stop as soon as two
        // checkpoints confirm the unmeasurable line, and the report's
        // mean test time lands well under the fixed schedule's bill.
        let dut =
            NonInvertingAmplifier::new(OpampModel::tl081(), Ohms::new(10_000.0), Ohms::new(100.0))
                .unwrap();
        let expected = dut
            .expected_noise_figure_db(Ohms::new(2_000.0), 100.0, 1_000.0)
            .unwrap();
        let screen = Screen::new(expected + 2.5, 2.0).unwrap();
        let mut setup = BistSetup::quick(0); // seed overridden by the lot
        setup.samples = 1 << 16;
        setup.nfft = 1_024;
        let universe = FaultUniverse::new().excess_noise(&[8.0]).unwrap();
        let seq = SequentialScreen::new(screen, 0.05, 0.05)
            .unwrap()
            .min_samples(1 << 12);
        let screening = LotScreen::new(tiny_lot(101, 0.3), setup, screen, universe)
            .unwrap()
            .adaptive(seq)
            .streaming_chunk(1 << 11);
        assert!(screening.adaptive_screen().is_some());
        assert_eq!(screening.fixed_die_samples(), 2 << 16);
        // No escalation in adaptive mode: the cap is the worst case.
        assert_eq!(screening.die_cost_bytes(), (1 << 16) * 8 * 4);

        let report = screening.run().unwrap();
        // Dies are pure in their index, probe or not.
        let a = screening.screen_die(3).unwrap();
        assert_eq!(a, screening.screen_die(3).unwrap());
        assert_eq!(a, screening.screen_die_probed(3, &|_| {}).unwrap());
        // The checkpoint schedule replaces retest escalation.
        assert_eq!(report.retest_rate(), 0.0);
        assert!(report.defective() > 0 && report.passed() > 0);
        assert_eq!(report.detection_rate(), Some(1.0), "{report}");
        // Early stopping must actually bite: the lot spends less than
        // the fixed schedule per die, and says so.
        let reduction = report
            .test_time_reduction_vs(screening.fixed_die_samples() as f64)
            .unwrap();
        assert!(
            reduction >= 2.0,
            "adaptive lot must at least halve the mean test time: {reduction:.2}\n{report}"
        );
        // Some die stopped strictly before the cap.
        assert!(
            report
                .outcomes()
                .any(|o| o.test_samples < screening.fixed_die_samples()),
            "{report}"
        );

        // Reduction accessor edge cases.
        assert_eq!(LotReport::new().test_time_reduction_vs(100.0), None);
        assert_eq!(report.test_time_reduction_vs(0.0), None);
    }

    #[test]
    fn empty_report_edge_cases() {
        let report = LotReport::new();
        assert_eq!(report.dies(), 0);
        assert_eq!(report.yield_fraction(), 0.0);
        assert_eq!(report.retest_rate(), 0.0);
        assert_eq!(report.mean_test_samples(), 0.0);
        assert_eq!(report.mean_nf_db(), f64::INFINITY);
        assert_eq!(report.detection_rate(), None);
        assert_eq!(report.escape_rate(), None);
        assert_eq!(report.outcomes().count(), 0);
        assert_eq!(report.faults().count(), 0);
        assert_eq!(report.faulted(), 0);
        assert!(!report.degraded());
        assert_eq!(report.status(), LotStatus::Complete);
    }

    #[test]
    fn faulted_dies_degrade_the_report_without_touching_the_sums() {
        let outcome = |die: usize| DieOutcome {
            die,
            defect: None,
            verdict: Verdict::Pass,
            retests: 0,
            nf_db: 9.0,
            test_samples: 100,
        };
        let mut report = LotReport::new();
        report.push(outcome(0)).unwrap();
        report
            .push_fault(DieFault {
                die: 1,
                attempts: 2,
                kind: DieFaultKind::Panicked {
                    message: "worker died".to_string(),
                },
            })
            .unwrap();
        report.push(outcome(2)).unwrap();
        report.push(outcome(3)).unwrap();
        // Out-of-order faults are rejected exactly like outcomes.
        assert!(report
            .push_fault(DieFault {
                die: 7,
                attempts: 1,
                kind: DieFaultKind::DeadlineExceeded,
            })
            .is_err());

        assert_eq!(report.dies(), 4);
        assert_eq!(report.faulted(), 1);
        assert!(report.degraded());
        assert_eq!(report.status(), LotStatus::Degraded);
        assert_eq!(report.records().len(), 4);
        assert_eq!(report.outcomes().count(), 3);
        let fault = report.faults().next().unwrap();
        assert_eq!(fault.die, 1);
        assert_eq!(fault.attempts, 2);
        // The fault counts against yield but enters no accumulator.
        assert_eq!(report.passed(), 3);
        assert_eq!(report.yield_fraction(), 0.75);
        assert_eq!(report.rolling_yield(), &[1.0, 0.5, 2.0 / 3.0, 0.75]);
        assert_eq!(report.mean_nf_db(), 9.0);
        assert_eq!(report.test_samples(), 300);
        // The faulted die renders as '!' on the wafer map.
        let wafer = WaferMap::disc(2).unwrap();
        assert_eq!(wafer.dies(), 4);
        let map = report.render_on(&wafer).unwrap();
        assert!(map.contains('!'), "faulted die must be marked:\n{map}");
        // And the table announces the degradation.
        let shown = report.to_string();
        assert!(shown.contains("degraded (1 faulted)"), "{shown}");
    }

    #[test]
    fn assemble_records_reorders_and_round_trips() {
        let universe = FaultUniverse::new().excess_noise(&[8.0]).unwrap();
        let screening = LotScreen::new(
            tiny_lot(5, 0.0),
            tiny_setup(0),
            Screen::new(10.0, 3.0).unwrap(),
            universe,
        )
        .unwrap();
        let mut records: Vec<DieRecord> = (0..screening.dies())
            .map(|die| {
                if die % 3 == 1 {
                    DieRecord::Faulted(DieFault {
                        die,
                        attempts: 1,
                        kind: DieFaultKind::AllocationFailed,
                    })
                } else {
                    DieRecord::Screened(DieOutcome {
                        die,
                        defect: None,
                        verdict: Verdict::Pass,
                        retests: 0,
                        nf_db: 9.0,
                        test_samples: 1,
                    })
                }
            })
            .collect();
        records.reverse();
        let report = screening.assemble_records(records).unwrap();
        assert_eq!(report.dies(), screening.dies());
        assert!(report.degraded());
        assert_eq!(report.faulted(), (screening.dies() + 1) / 3);
        for fault in report.faults() {
            assert_eq!(fault.die % 3, 1);
            assert_eq!(fault.kind, DieFaultKind::AllocationFailed);
        }
    }
}
