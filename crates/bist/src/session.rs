//! The generic measurement session: one acquisition/estimation path for
//! every combination of circuit, acquisition front-end and power-ratio
//! estimator.
//!
//! This is the crate's central abstraction. The paper's comparison —
//! the proposed 1-bit comparator BIST (Fig. 11) versus the conventional
//! ADC + analog-mux Y-factor bench (Fig. 4), evaluated with the three
//! power-ratio estimators of Table 2 — becomes an axis-by-axis swap:
//!
//! * [`Dut`] — *what* is measured: any circuit in `nfbist-analog`
//!   (non-inverting or inverting amplifier, attenuator/amplifier
//!   chains, whole cascades).
//! * [`Digitizer`] — *how* the signal is captured: the 1-bit comparator
//!   cell or an N-bit ADC behind a mux.
//! * [`PowerRatioEstimator`] — *how* the Y factor is formed: mean
//!   square, PSD band power, or the reference-normalized 1-bit
//!   estimator.
//!
//! A session always runs the same flow per acquisition: calibrated
//! hot/cold source → DUT (adding its own synthesized noise) →
//! front-end conditioning gain → digitizer → estimator → Y-factor
//! equations, with optional repeated acquisitions for averaging.

use crate::resources::{digitizer_usage, ResourceUsage};
use crate::setup::BistSetup;
use crate::SocError;
use nfbist_analog::circuits::NonInvertingAmplifier;
use nfbist_analog::converter::{CaptureStream, Digitizer, OneBitDigitizer, Record};
use nfbist_analog::dut::{Dut, DutStream};
use nfbist_analog::noise::WhiteNoise;
use nfbist_analog::noise::{CalibratedNoiseSource, NoiseSourceState};
use nfbist_analog::opamp::OpampModel;
use nfbist_analog::source::{SineSource, Waveform};
use nfbist_analog::units::Kelvin;
use nfbist_core::estimator::NfMeasurement;
use nfbist_core::power_ratio::{
    OneBitPowerRatio, OneBitRatioEstimate, PowerRatioEstimator, RatioEstimate,
};
use nfbist_core::streaming::RatioAccumulator;

/// The golden-ratio stride a session uses to derive per-repeat seeds
/// (`setup.seed + repeat·stride`, wrapping). Exported so batch-level
/// fan-out (`nfbist-runtime`) can derive per-trial/per-cell seeds with
/// the exact same scheme.
pub const REPEAT_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Derives the seed for batch element `index` from a base seed: a
/// golden-ratio walk followed by the SplitMix64 finalizer.
///
/// The finalizer matters: sessions derive *repeat* seeds as the plain
/// arithmetic walk `seed + repeat·φ⁶⁴`, so if batch elements (Monte
/// Carlo trials, coverage cells) used the same walk, element `t+1`
/// repeat `0` would draw bit-identical noise to element `t` repeat `1`
/// and a batch with `repeats > 1` would silently understate its
/// element-to-element spread. Mixing the walk through a bijective hash
/// keeps the derivation deterministic and collision-free while
/// decorrelating it from the repeat walk.
///
/// This is the one canonical derivation; `nfbist-runtime` re-exports
/// it for trial fan-out and the coverage campaign uses it per cell.
///
/// # Examples
///
/// ```
/// use nfbist_soc::session::derive_seed;
///
/// // Deterministic, and distinct per index.
/// assert_eq!(derive_seed(7, 1), derive_seed(7, 1));
/// assert_ne!(derive_seed(7, 1), derive_seed(7, 2));
/// ```
pub fn derive_seed(base: u64, index: u64) -> u64 {
    // SplitMix64 output function over the walked state (a bijection on
    // u64, so distinct (base, index) walks stay distinct).
    let mut z = base.wrapping_add(index.wrapping_add(1).wrapping_mul(REPEAT_SEED_STRIDE));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Outcome of one repeated acquisition within a session run.
#[derive(Debug, Clone)]
pub struct RepeatMeasurement {
    /// Noise figure derived from this repeat's Y ratio, or `None` when
    /// this repeat alone was degenerate (estimated Y ≤ 1) — its ratio
    /// still contributes to the run's mean Y.
    pub nf: Option<NfMeasurement>,
    /// The estimator's full report for this repeat.
    pub ratio: RatioEstimate,
}

/// The unified measurement report a [`MeasurementSession`] returns.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Noise figure from the mean Y ratio across repeats.
    pub nf: NfMeasurement,
    /// Analytic expectation from the DUT's noise model over the
    /// measurement band (Table 3's "Expected" column).
    pub expected_nf_db: f64,
    /// Sample standard deviation of the per-repeat NF in dB (0 for a
    /// single acquisition).
    pub nf_spread_db: f64,
    /// Reference amplitude at the digitizer input, in volts (0 when the
    /// front-end uses no reference).
    pub reference_amplitude: f64,
    /// Resource accounting for the whole run (records sized per
    /// acquisition; compute scaled by the repeat count).
    pub usage: ResourceUsage,
    /// Per-repeat outcomes, in acquisition order.
    pub repeats: Vec<RepeatMeasurement>,
    /// The DUT description.
    pub dut: String,
    /// The acquisition front-end description.
    pub digitizer: String,
    /// The estimator description.
    pub estimator: String,
}

impl Measurement {
    /// The 1-bit estimator intermediates of the first repeat (spectra,
    /// reference lines, normalization), when the session used the 1-bit
    /// estimator.
    pub fn one_bit_detail(&self) -> Option<&OneBitRatioEstimate> {
        self.repeats.first().and_then(|r| r.ratio.one_bit())
    }
}

impl std::fmt::Display for Measurement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{} / {}]: measured {} (expected {:.2} dB, spread {:.3} dB, {} repeat{})",
            self.dut,
            self.digitizer,
            self.estimator,
            self.nf,
            self.expected_nf_db,
            self.nf_spread_db,
            self.repeats.len(),
            if self.repeats.len() == 1 { "" } else { "s" },
        )
    }
}

/// Builder and runner for a complete Y-factor noise-figure measurement.
///
/// Defaults reproduce the paper's prototype bench: the OP27
/// non-inverting amplifier DUT, the 1-bit comparator cell, the 1-bit
/// reference-normalized estimator, one acquisition pair.
///
/// # Examples
///
/// ```no_run
/// use nfbist_analog::circuits::NonInvertingAmplifier;
/// use nfbist_analog::opamp::OpampModel;
/// use nfbist_analog::units::Ohms;
/// use nfbist_soc::session::MeasurementSession;
/// use nfbist_soc::setup::BistSetup;
///
/// # fn main() -> Result<(), nfbist_soc::SocError> {
/// let dut = NonInvertingAmplifier::new(
///     OpampModel::tl081(),
///     Ohms::new(10_000.0),
///     Ohms::new(100.0),
/// )?;
/// let m = MeasurementSession::new(BistSetup::paper_prototype(42))?
///     .dut(dut)
///     .repeats(4)
///     .run()?;
/// println!("expected {:.2} dB, measured {:.2} dB", m.expected_nf_db, m.nf.figure.db());
/// # Ok(())
/// # }
/// ```
///
/// Swapping the acquisition axis turns the same session into the
/// conventional Fig. 4 bench:
///
/// ```no_run
/// use nfbist_analog::converter::AdcDigitizer;
/// use nfbist_core::power_ratio::PsdRatioEstimator;
/// use nfbist_soc::session::MeasurementSession;
/// use nfbist_soc::setup::BistSetup;
///
/// # fn main() -> Result<(), nfbist_soc::SocError> {
/// let setup = BistSetup::quick(7);
/// let m = MeasurementSession::new(setup.clone())?
///     .digitizer(AdcDigitizer::new(12)?)
///     .estimator(PsdRatioEstimator::new(
///         setup.sample_rate,
///         setup.nfft,
///         setup.noise_band,
///     )?)
///     .run()?;
/// println!("{m}");
/// # Ok(())
/// # }
/// ```
pub struct MeasurementSession {
    setup: BistSetup,
    dut: Box<dyn Dut>,
    digitizer: Box<dyn Digitizer>,
    estimator: Box<dyn PowerRatioEstimator>,
    repeats: usize,
    memory_budget: Option<usize>,
    streaming_chunk: Option<usize>,
}

impl std::fmt::Debug for MeasurementSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MeasurementSession")
            .field("setup", &self.setup)
            .field("dut", &self.dut.label())
            .field("digitizer", &self.digitizer.label())
            .field("estimator", &self.estimator.label())
            .field("repeats", &self.repeats)
            .field("memory_budget", &self.memory_budget)
            .finish()
    }
}

/// How many chunk-sized float buffers the streaming acquisition
/// pipeline keeps alive at once (source chunk, DUT output, reference
/// chunk, captured samples, plus per-stage slack) — the divisor that
/// turns a memory budget into a chunk length.
const STREAMING_PIPELINE_BUFFERS: usize = 8;

impl MeasurementSession {
    /// Starts a session from a validated setup, with the paper's
    /// default DUT (OP27 non-inverting, Av = 101), the 1-bit comparator
    /// cell, and the setup-matched 1-bit estimator.
    ///
    /// # Errors
    ///
    /// Propagates [`BistSetup::validate`] failures and default
    /// component construction errors.
    pub fn new(setup: BistSetup) -> Result<Self, SocError> {
        setup.validate()?;
        let estimator = OneBitPowerRatio::new(
            setup.sample_rate,
            setup.nfft,
            setup.reference_frequency,
            setup.noise_band,
        )?;
        let dut = NonInvertingAmplifier::new(
            OpampModel::op27(),
            nfbist_analog::units::Ohms::new(10_000.0),
            nfbist_analog::units::Ohms::new(100.0),
        )?;
        Ok(MeasurementSession {
            setup,
            dut: Box::new(dut),
            digitizer: Box::new(OneBitDigitizer::ideal()),
            estimator: Box::new(estimator),
            repeats: 1,
            memory_budget: None,
            streaming_chunk: None,
        })
    }

    /// Selects the device under test.
    pub fn dut(mut self, dut: impl Dut + 'static) -> Self {
        self.dut = Box::new(dut);
        self
    }

    /// Selects the acquisition front-end.
    ///
    /// Note: the default estimator is the 1-bit reference-normalized
    /// one; when switching to a scale-preserving front-end such as
    /// `AdcDigitizer`, also select a matching estimator
    /// (`PsdRatioEstimator` or `MeanSquareEstimator`).
    pub fn digitizer(mut self, digitizer: impl Digitizer + 'static) -> Self {
        self.digitizer = Box::new(digitizer);
        self
    }

    /// Selects the power-ratio estimator.
    pub fn estimator(mut self, estimator: impl PowerRatioEstimator + 'static) -> Self {
        self.estimator = Box::new(estimator);
        self
    }

    /// Sets the number of repeated hot/cold acquisition pairs whose Y
    /// ratios are averaged (values below 1 are clamped to 1). Each
    /// repeat uses an independent seed derived from the setup seed.
    pub fn repeats(mut self, n: usize) -> Self {
        self.repeats = n.max(1);
        self
    }

    /// Caps the session's transient acquisition memory at `bytes`.
    ///
    /// When the batch record footprint (`samples × 8` bytes of expanded
    /// estimator samples per acquisition) would exceed the budget *and*
    /// the selected estimator supports streaming
    /// ([`PowerRatioEstimator::streaming`]), the session switches to
    /// **streaming mode**: the whole source → DUT → conditioning →
    /// digitizer → estimator pipeline runs chunk by chunk and no buffer
    /// ever holds the full record. The result is bit-identical to the
    /// batch run — only the memory profile changes. Record length then
    /// costs time, not RAM, which is exactly the paper's
    /// accuracy-for-test-time trade: retest escalation can keep growing
    /// the acquisition without growing allocation.
    ///
    /// The budget sizes the streaming chunk
    /// ([`MeasurementSession::streaming_chunk_samples`]), whose floor
    /// of 1024 samples puts a practical lower bound of roughly 64 KiB
    /// (8 pipeline buffers × 1024 samples × 8 bytes) on the transient
    /// working set — budgets below that still stream, with the
    /// smallest chunk, but cannot shrink the buffers further. Add the
    /// Welch plan (`O(nfft)`) on top. The budget is a sizing target
    /// for the chunked pipeline, not a hard allocator cap.
    ///
    /// With no budget (the default) the session always materializes
    /// records, as before.
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Overrides the derived streaming chunk length (in samples) —
    /// chiefly a test hook for proving chunk-size invariance; values
    /// are clamped to `[1, samples]`.
    pub fn streaming_chunk_len(mut self, samples: usize) -> Self {
        self.streaming_chunk = Some(samples);
        self
    }

    /// The configured memory budget, if any.
    pub fn memory_budget_bytes(&self) -> Option<usize> {
        self.memory_budget
    }

    /// `true` when [`MeasurementSession::run`] will take the streaming
    /// path: a memory budget is set, the batch record footprint exceeds
    /// it, and the estimator supports chunked accumulation.
    pub fn streaming_active(&self) -> bool {
        match self.memory_budget {
            Some(budget) => {
                self.setup.samples.saturating_mul(8) > budget
                    && self.estimator.streaming().is_some()
            }
            None => false,
        }
    }

    /// The chunk length (in samples) the streaming pipeline uses:
    /// the explicit override when set, otherwise the budget divided
    /// across the pipeline's live buffers. Floored at 1024 samples —
    /// below that, shrinking chunks further buys no meaningful memory
    /// (the Welch plan dominates) while the per-chunk overhead grows,
    /// so sub-64 KiB budgets run at the floor rather than honoring
    /// the cap exactly (see [`MeasurementSession::memory_budget`]).
    pub fn streaming_chunk_samples(&self) -> usize {
        let cap = self.setup.samples.max(1);
        if let Some(n) = self.streaming_chunk {
            return n.clamp(1, cap);
        }
        let budget = self.memory_budget.unwrap_or(usize::MAX);
        (budget / (8 * STREAMING_PIPELINE_BUFFERS))
            .max(1_024)
            .min(cap)
    }

    /// The setup.
    pub fn setup(&self) -> &BistSetup {
        &self.setup
    }

    /// The selected DUT.
    pub fn dut_ref(&self) -> &dyn Dut {
        &*self.dut
    }

    /// The selected front-end.
    pub fn digitizer_ref(&self) -> &dyn Digitizer {
        &*self.digitizer
    }

    /// The selected estimator.
    pub fn estimator_ref(&self) -> &dyn PowerRatioEstimator {
        &*self.estimator
    }

    /// The configured repeat count.
    pub fn repeat_count(&self) -> usize {
        self.repeats
    }

    /// Seed for a given repeat index (repeat 0 is the setup seed).
    fn repeat_seed(&self, repeat: usize) -> u64 {
        self.setup
            .seed
            .wrapping_add((repeat as u64).wrapping_mul(REPEAT_SEED_STRIDE))
    }

    fn source(&self, repeat: usize) -> Result<CalibratedNoiseSource, SocError> {
        let mut src = CalibratedNoiseSource::new(
            Kelvin::new(self.setup.hot_kelvin),
            Kelvin::new(self.setup.cold_kelvin),
            self.setup.source_resistance,
            self.repeat_seed(repeat) ^ 0xA5A5_A5A5,
        )?;
        if self.setup.hot_calibration_error != 0.0 {
            src.set_hot_error(self.setup.hot_calibration_error)?;
        }
        Ok(src)
    }

    /// Analytic noise RMS at the DUT output for a source state (the
    /// calibration a real BIST would do with a short trial
    /// acquisition).
    ///
    /// # Errors
    ///
    /// Propagates model errors.
    pub fn dut_output_rms(&self, state: NoiseSourceState) -> Result<f64, SocError> {
        let src = self.source(0)?;
        let nyquist = self.setup.sample_rate / 2.0;
        let source_density = src.voltage_density(state);
        let added =
            self.dut
                .mean_added_noise_density_sq(self.setup.source_resistance, 1.0, nyquist)?;
        let input_power = (source_density + added) * nyquist;
        Ok(self.dut.gain() * input_power.sqrt())
    }

    /// The conditioning gain between the DUT output and the digitizer,
    /// chosen by the front-end (the bench post-amplifier for the 1-bit
    /// cell; a range-fitting gain for an ADC).
    ///
    /// # Errors
    ///
    /// Propagates model errors.
    pub fn frontend_gain(&self) -> Result<f64, SocError> {
        let hot_rms = self.dut_output_rms(NoiseSourceState::Hot)?;
        Ok(self
            .digitizer
            .frontend_gain(hot_rms, self.setup.post_gain)?)
    }

    /// Analytic noise RMS at the digitizer input for a source state.
    ///
    /// # Errors
    ///
    /// Propagates model errors.
    pub fn digitizer_noise_rms(&self, state: NoiseSourceState) -> Result<f64, SocError> {
        Ok(self.frontend_gain()? * self.dut_output_rms(state)?)
    }

    /// The reference amplitude the session will use: the configured
    /// fraction of the **cold** digitizer-input noise RMS (so the hot
    /// state, with more noise, sees a smaller relative reference — both
    /// states stay inside Fig. 10's valid region for realistic Y).
    ///
    /// # Errors
    ///
    /// Propagates model errors.
    pub fn reference_amplitude(&self) -> Result<f64, SocError> {
        Ok(self.setup.reference_fraction * self.digitizer_noise_rms(NoiseSourceState::Cold)?)
    }

    /// The reference waveform shared by every acquisition (all zeros
    /// when the front-end uses no reference).
    fn reference_waveform(&self) -> Result<Vec<f64>, SocError> {
        if self.digitizer.uses_reference() {
            Ok(
                SineSource::new(self.setup.reference_frequency, self.reference_amplitude()?)?
                    .generate(self.setup.samples, self.setup.sample_rate)?,
            )
        } else {
            Ok(vec![0.0; self.setup.samples])
        }
    }

    /// Runs one acquisition for repeat index `repeat`: source noise →
    /// DUT → front-end conditioning → digitizer (against the reference
    /// sine when the front-end uses one).
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn acquire(&self, state: NoiseSourceState, repeat: usize) -> Result<Record, SocError> {
        self.acquire_conditioned(
            state,
            repeat,
            self.frontend_gain()?,
            &self.reference_waveform()?,
        )
    }

    /// The acquisition body, with the run-invariant conditioning gain
    /// and reference waveform supplied by the caller (hoisted out of
    /// the repeat loop in [`MeasurementSession::run`]).
    fn acquire_conditioned(
        &self,
        state: NoiseSourceState,
        repeat: usize,
        gain: f64,
        reference: &[f64],
    ) -> Result<Record, SocError> {
        let n = self.setup.samples;
        let fs = self.setup.sample_rate;
        let seed = self.repeat_seed(repeat);
        let mut src = self.source(repeat)?;
        // Distinct noise records per state: the source seed evolves per
        // call, and the DUT noise seed is derived from the state.
        let state_salt = match state {
            NoiseSourceState::Hot => 1u64,
            NoiseSourceState::Cold => 2u64,
        };
        if state == NoiseSourceState::Cold {
            // Advance the source stream so hot/cold records are
            // independent even though `src` is rebuilt per call.
            let _ = src.generate(state, 1, fs)?;
        }
        let source_noise = src.generate(state, n, fs)?;

        let dut_out = self.dut.process(
            &source_noise,
            self.setup.source_resistance,
            fs,
            seed.wrapping_add(state_salt).wrapping_mul(0x9E37),
        )?;

        let conditioned: Vec<f64> = dut_out.iter().map(|v| v * gain).collect();

        Ok(self.digitizer.acquire(&conditioned, reference)?)
    }

    /// The run-invariant conditioning shared by every repeat: the
    /// front-end gain and the reference waveform. Computed once per run
    /// (or once per batch when a parallel executor fans the repeats
    /// out) and passed to
    /// [`MeasurementSession::measure_repeat_conditioned`].
    ///
    /// # Errors
    ///
    /// Propagates model errors.
    pub fn conditioning(&self) -> Result<(f64, Vec<f64>), SocError> {
        Ok((self.frontend_gain()?, self.reference_waveform()?))
    }

    /// Runs one complete repeat — hot and cold acquisition plus the
    /// ratio estimate — with the run-invariant conditioning supplied by
    /// the caller (see [`MeasurementSession::conditioning`]).
    ///
    /// Each repeat is fully determined by `(setup seed, repeat index)`,
    /// which is what makes fan-out across worker threads bit-identical
    /// to the sequential loop.
    ///
    /// # Errors
    ///
    /// Propagates acquisition and estimation errors.
    pub fn measure_repeat_conditioned(
        &self,
        repeat: usize,
        gain: f64,
        reference: &[f64],
    ) -> Result<RepeatMeasurement, SocError> {
        let hot = self.acquire_conditioned(NoiseSourceState::Hot, repeat, gain, reference)?;
        let cold = self.acquire_conditioned(NoiseSourceState::Cold, repeat, gain, reference)?;
        let ratio = self
            .estimator
            .estimate(&hot.to_samples(), &cold.to_samples())?;
        // A single noisy repeat may estimate Y <= 1 (degenerate on
        // its own) yet still contribute to a valid mean, so the
        // per-repeat NF is optional rather than an abort.
        let nf =
            NfMeasurement::from_y(ratio.ratio, self.setup.hot_kelvin, self.setup.cold_kelvin).ok();
        Ok(RepeatMeasurement { nf, ratio })
    }

    /// Runs one complete repeat in **streaming mode**: hot and cold
    /// acquisitions flow chunk by chunk through source → DUT →
    /// conditioning → digitizer into the estimator's
    /// [`RatioAccumulator`],
    /// with no buffer ever holding a full record. Because every stage
    /// evolves the same sequential state the batch path does, the
    /// returned [`RepeatMeasurement`] is **bit-identical** to
    /// [`MeasurementSession::measure_repeat_conditioned`] for the same
    /// `(seed, repeat)` — for any chunk length.
    ///
    /// `gain` is the run-invariant front-end gain
    /// ([`MeasurementSession::frontend_gain`]); unlike the batch path
    /// no materialized reference waveform is passed — reference chunks
    /// are synthesized on the fly from the absolute sample index.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidParameter`] when the selected
    /// estimator has no streaming support, and propagates acquisition
    /// and estimation errors.
    pub fn measure_repeat_streaming(
        &self,
        repeat: usize,
        gain: f64,
    ) -> Result<RepeatMeasurement, SocError> {
        let mut seq = self.begin_sequential(repeat, gain)?;
        seq.advance_to(self.setup.samples)?;
        seq.finish()
    }

    /// Opens a **resumable** streaming repeat: both source-state
    /// acquisition chains plus the estimator's accumulator, positioned
    /// at sample zero. The caller advances it checkpoint by checkpoint
    /// ([`SequentialRepeat::advance_to`]), consults interim estimates
    /// ([`SequentialRepeat::snapshot`]) and closes it whenever the
    /// decision is made ([`SequentialRepeat::finish`]) — the machinery
    /// a sequential (early-stopping) screen is built on.
    ///
    /// `gain` is the run-invariant front-end gain
    /// ([`MeasurementSession::frontend_gain`]), hoisted out so a screen
    /// can open many repeats without recomputing it.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidParameter`] when the selected
    /// estimator has no streaming support, and propagates construction
    /// errors.
    pub fn begin_sequential(
        &self,
        repeat: usize,
        gain: f64,
    ) -> Result<SequentialRepeat<'_>, SocError> {
        let streaming = self
            .estimator
            .streaming()
            .ok_or(SocError::InvalidParameter {
                name: "estimator",
                reason: "the selected estimator does not support streaming",
            })?;
        let acc = streaming.begin()?;
        Ok(SequentialRepeat {
            hot: self.begin_state_chain(NoiseSourceState::Hot, repeat, gain)?,
            cold: self.begin_state_chain(NoiseSourceState::Cold, repeat, gain)?,
            acc,
            chunk_len: self.streaming_chunk_samples(),
            cap: self.setup.samples,
            hot_kelvin: self.setup.hot_kelvin,
            cold_kelvin: self.setup.cold_kelvin,
        })
    }

    /// Opens one source-state acquisition chain at sample zero.
    ///
    /// The seed handling mirrors [`MeasurementSession::acquire_conditioned`]
    /// step for step (including the cold-state source advance), so the
    /// samples the chain emits match the batch record bitwise — for any
    /// chunking and any stopping point.
    pub(crate) fn begin_state_chain(
        &self,
        state: NoiseSourceState,
        repeat: usize,
        gain: f64,
    ) -> Result<StateChain<'_>, SocError> {
        let fs = self.setup.sample_rate;
        let seed = self.repeat_seed(repeat);
        let mut src = self.source(repeat)?;
        let state_salt = match state {
            NoiseSourceState::Hot => 1u64,
            NoiseSourceState::Cold => 2u64,
        };
        if state == NoiseSourceState::Cold {
            // Advance the source stream so hot/cold records are
            // independent (identical to the batch path).
            let _ = src.generate(state, 1, fs)?;
        }
        let source_stream = src.stream(state, fs)?;
        let dut_stream = self.dut.process_stream(
            self.setup.source_resistance,
            fs,
            seed.wrapping_add(state_salt).wrapping_mul(0x9E37),
        )?;
        let capture = self.digitizer.begin_capture();
        let reference = if self.digitizer.uses_reference() {
            Some(SineSource::new(
                self.setup.reference_frequency,
                self.reference_amplitude()?,
            )?)
        } else {
            None
        };
        Ok(StateChain {
            sample_rate: fs,
            gain,
            source_stream,
            dut_stream,
            capture,
            reference,
            dut_out: Vec::new(),
            captured: Vec::new(),
            zeros: Vec::new(),
            produced: 0,
            emitted: 0,
        })
    }

    /// Assembles the final [`Measurement`] from per-repeat outcomes (in
    /// acquisition order): Y-factor on the mean ratio, NF spread,
    /// analytic expectation, and resource accounting scaled by the
    /// repeat count (saturating, so enormous batch configurations
    /// cannot overflow in release builds).
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidParameter`] for an empty repeat list
    /// and propagates Y-factor/model errors.
    pub fn combine(&self, repeats: Vec<RepeatMeasurement>) -> Result<Measurement, SocError> {
        if repeats.is_empty() {
            return Err(SocError::InvalidParameter {
                name: "repeats",
                reason: "at least one repeat measurement is required",
            });
        }
        let y_sum: f64 = repeats.iter().map(|r| r.ratio.ratio).sum();
        let mean_y = y_sum / repeats.len() as f64;
        let nf = NfMeasurement::from_y(mean_y, self.setup.hot_kelvin, self.setup.cold_kelvin)?;
        let dbs: Vec<f64> = repeats
            .iter()
            .filter_map(|r| r.nf.map(|nf| nf.figure.db()))
            .collect();
        let nf_spread_db = if dbs.len() > 1 {
            nfbist_dsp::stats::std_dev(&dbs)?
        } else {
            0.0
        };

        let expected_nf_db = self.dut.expected_noise_figure_db(
            self.setup.source_resistance,
            self.setup.noise_band.0,
            self.setup.noise_band.1,
        )?;

        let mut usage = digitizer_usage(
            self.setup.samples,
            self.setup.nfft,
            self.digitizer.bits_per_sample(),
        );
        usage.fft_count = usage.fft_count.saturating_mul(repeats.len());
        usage.estimated_flops = usage.estimated_flops.saturating_mul(repeats.len() as u64);

        let reference_amplitude = if self.digitizer.uses_reference() {
            self.reference_amplitude()?
        } else {
            0.0
        };

        Ok(Measurement {
            nf,
            expected_nf_db,
            nf_spread_db,
            reference_amplitude,
            usage,
            repeats,
            dut: self.dut.label(),
            digitizer: self.digitizer.label(),
            estimator: self.estimator.label(),
        })
    }

    /// Runs the complete measurement: `repeats` hot/cold acquisition
    /// pairs, the selected estimator on each, the Y-factor equation on
    /// the mean ratio, the analytic expectation, and resource
    /// accounting.
    ///
    /// The body is exactly [`MeasurementSession::conditioning`] → a
    /// sequential loop of
    /// [`MeasurementSession::measure_repeat_conditioned`] →
    /// [`MeasurementSession::combine`]; the parallel batch runner in
    /// `nfbist-runtime` replaces only the loop, so its output is
    /// bit-identical by construction.
    ///
    /// # Errors
    ///
    /// Propagates acquisition and estimation errors.
    ///
    /// # Streaming
    ///
    /// When [`MeasurementSession::streaming_active`] is `true` (see
    /// [`MeasurementSession::memory_budget`]), the loop body is
    /// [`MeasurementSession::measure_repeat_streaming`] instead and no
    /// full record — not even the reference waveform — is ever
    /// materialized. The returned [`Measurement`] is bit-identical
    /// either way.
    pub fn run(&self) -> Result<Measurement, SocError> {
        if self.streaming_active() {
            let gain = self.frontend_gain()?;
            let mut repeats = Vec::with_capacity(self.repeats);
            for r in 0..self.repeats {
                repeats.push(self.measure_repeat_streaming(r, gain)?);
            }
            self.combine(repeats)
        } else {
            self.run_batch_reference()
        }
    }

    /// Runs the measurement on the **batch** path unconditionally, even
    /// when a memory budget would select streaming — the reference
    /// against which streaming output is asserted bit-identical (the
    /// `exp_montecarlo --streaming` smoke and the integration tests
    /// use it).
    ///
    /// # Errors
    ///
    /// Same as [`MeasurementSession::run`].
    pub fn run_batch_reference(&self) -> Result<Measurement, SocError> {
        let (gain, reference) = self.conditioning()?;
        let mut repeats = Vec::with_capacity(self.repeats);
        for r in 0..self.repeats {
            repeats.push(self.measure_repeat_conditioned(r, gain, &reference)?);
        }
        self.combine(repeats)
    }
}

/// One source state's resumable acquisition pipeline: source noise →
/// DUT → conditioning gain → digitizer, positioned at an absolute
/// sample offset. Every stage carries its own sequential state, so
/// advancing the chain in any chunking emits the exact bit pattern the
/// batch path would — and stopping at offset `n` leaves every stage in
/// the state a batch run of record length `n` would have reached.
pub(crate) struct StateChain<'a> {
    sample_rate: f64,
    gain: f64,
    source_stream: WhiteNoise,
    dut_stream: Box<dyn DutStream + 'a>,
    capture: Box<dyn CaptureStream + 'a>,
    reference: Option<SineSource>,
    dut_out: Vec<f64>,
    captured: Vec<f64>,
    zeros: Vec<f64>,
    /// Source samples fed to the DUT so far.
    produced: usize,
    /// DUT samples seen by the digitizer so far.
    emitted: usize,
}

impl StateChain<'_> {
    /// Advances the chain until `target` source samples have been
    /// produced, feeding each captured chunk of expanded estimator
    /// samples to `sink`. A no-op when the chain is already there.
    pub(crate) fn advance_to(
        &mut self,
        target: usize,
        chunk_len: usize,
        sink: &mut dyn FnMut(&[f64]) -> Result<(), nfbist_core::CoreError>,
    ) -> Result<(), SocError> {
        let chunk_len = chunk_len.max(1);
        while self.produced < target {
            let m = chunk_len.min(target - self.produced);
            let source_chunk = self.source_stream.generate(m);
            self.produced += m;
            self.dut_out.clear();
            self.dut_stream.push(&source_chunk, &mut self.dut_out)?;
            self.condition_capture(sink)?;
        }
        Ok(())
    }

    /// Closes the chain at its current offset: flushes the DUT stream's
    /// tail and the digitizer's held-back samples into `sink`. After
    /// this the sink has received exactly the expanded record a batch
    /// acquisition of `self.produced` samples produces.
    fn finish(
        &mut self,
        sink: &mut dyn FnMut(&[f64]) -> Result<(), nfbist_core::CoreError>,
    ) -> Result<(), SocError> {
        self.dut_out.clear();
        self.dut_stream.finish(&mut self.dut_out)?;
        self.condition_capture(sink)?;
        debug_assert_eq!(
            self.emitted, self.produced,
            "every source sample must reach the digitizer"
        );
        self.captured.clear();
        self.capture.finish(&mut self.captured)?;
        sink(&self.captured)?;
        Ok(())
    }

    /// Conditions the pending DUT output chunk, digitizes it against
    /// the matching reference chunk (synthesized from the absolute
    /// sample offset) and forwards the captured samples to `sink`.
    fn condition_capture(
        &mut self,
        sink: &mut dyn FnMut(&[f64]) -> Result<(), nfbist_core::CoreError>,
    ) -> Result<(), SocError> {
        if self.dut_out.is_empty() {
            return Ok(());
        }
        for v in self.dut_out.iter_mut() {
            *v *= self.gain;
        }
        self.captured.clear();
        match &self.reference {
            Some(sine) => {
                let ref_chunk =
                    sine.generate_chunk(self.emitted, self.dut_out.len(), self.sample_rate)?;
                self.capture
                    .push(&self.dut_out, &ref_chunk, &mut self.captured)?;
            }
            None => {
                self.zeros.clear();
                self.zeros.resize(self.dut_out.len(), 0.0);
                self.capture
                    .push(&self.dut_out, &self.zeros, &mut self.captured)?;
            }
        }
        sink(&self.captured)?;
        self.emitted += self.dut_out.len();
        Ok(())
    }
}

/// A streaming repeat held open for sequential (early-stopping)
/// acquisition: the hot and cold per-stage pipeline chains plus the
/// estimator's accumulator.
///
/// Advance it to successive checkpoints, consult
/// [`SequentialRepeat::snapshot`] after each, and call
/// [`SequentialRepeat::finish`] the moment the decision is safe — the
/// finished measurement is **bit-identical** to a batch run whose
/// record length equals the stopping point, because every pipeline
/// stage evolves the exact state the batch path would (the invariant
/// the streaming-vs-batch tests pin down).
///
/// Borrowed from the session that opened it
/// ([`MeasurementSession::begin_sequential`]).
pub struct SequentialRepeat<'a> {
    hot: StateChain<'a>,
    cold: StateChain<'a>,
    acc: Box<dyn RatioAccumulator>,
    chunk_len: usize,
    cap: usize,
    hot_kelvin: f64,
    cold_kelvin: f64,
}

impl SequentialRepeat<'_> {
    /// Advances both source states to `samples` produced samples
    /// (clamped to the session's record length), pushing every captured
    /// chunk into the accumulator. A no-op when already there.
    ///
    /// # Errors
    ///
    /// Propagates acquisition and accumulation errors.
    pub fn advance_to(&mut self, samples: usize) -> Result<(), SocError> {
        let target = samples.min(self.cap);
        let SequentialRepeat {
            hot,
            cold,
            acc,
            chunk_len,
            ..
        } = self;
        hot.advance_to(target, *chunk_len, &mut |s| acc.push_hot(s))?;
        cold.advance_to(target, *chunk_len, &mut |s| acc.push_cold(s))?;
        Ok(())
    }

    /// Source samples acquired so far (per source state).
    pub fn samples_consumed(&self) -> usize {
        self.hot.produced
    }

    /// The session record length this repeat is capped at.
    pub fn sample_cap(&self) -> usize {
        self.cap
    }

    /// The interim ratio estimate over everything pushed so far —
    /// what a sequential screen's stop rule consults at a checkpoint.
    /// Does not flush the pipeline tails, so it slightly lags
    /// [`SequentialRepeat::finish`]; it is nevertheless a pure function
    /// of `(seed, repeat, samples consumed)`, independent of chunking.
    ///
    /// # Errors
    ///
    /// Propagates estimator errors (e.g. too few samples pushed for
    /// the estimator to form a ratio yet).
    pub fn snapshot(&self) -> Result<RatioEstimate, SocError> {
        Ok(self.acc.snapshot()?)
    }

    /// Closes the repeat at its current stopping point: flushes the
    /// DUT and capture tails into the accumulator and forms the final
    /// ratio — bit-identical to a batch acquisition of
    /// [`SequentialRepeat::samples_consumed`] samples.
    ///
    /// # Errors
    ///
    /// Propagates acquisition and estimation errors.
    pub fn finish(self) -> Result<RepeatMeasurement, SocError> {
        let SequentialRepeat {
            mut hot,
            mut cold,
            mut acc,
            hot_kelvin,
            cold_kelvin,
            ..
        } = self;
        hot.finish(&mut |s| acc.push_hot(s))?;
        cold.finish(&mut |s| acc.push_cold(s))?;
        let ratio = acc.finish()?;
        let nf = NfMeasurement::from_y(ratio.ratio, hot_kelvin, cold_kelvin).ok();
        Ok(RepeatMeasurement { nf, ratio })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfbist_analog::converter::AdcDigitizer;
    use nfbist_analog::units::Ohms;
    use nfbist_core::power_ratio::PsdRatioEstimator;

    fn dut(opamp: OpampModel) -> NonInvertingAmplifier {
        NonInvertingAmplifier::new(opamp, Ohms::new(10_000.0), Ohms::new(100.0)).unwrap()
    }

    #[test]
    fn invalid_setup_rejected() {
        let mut setup = BistSetup::quick(1);
        setup.samples = 0;
        assert!(MeasurementSession::new(setup).is_err());
    }

    #[test]
    fn acquisition_has_expected_shape() {
        let session = MeasurementSession::new(BistSetup::quick(3)).unwrap();
        let record = session.acquire(NoiseSourceState::Hot, 0).unwrap();
        assert_eq!(record.len(), session.setup().samples);
        // Zero-mean noise against a zero-mean reference: duty near
        // 50 %.
        let bits = record.as_bits().expect("1-bit default front-end");
        assert!((bits.duty() - 0.5).abs() < 0.02, "duty {}", bits.duty());
    }

    #[test]
    fn reference_amplitude_tracks_cold_rms() {
        let session = MeasurementSession::new(BistSetup::quick(5)).unwrap();
        let rms = session.digitizer_noise_rms(NoiseSourceState::Cold).unwrap();
        let amp = session.reference_amplitude().unwrap();
        assert!((amp / rms - 0.3).abs() < 1e-12);
        let hot_rms = session.digitizer_noise_rms(NoiseSourceState::Hot).unwrap();
        assert!(hot_rms > rms);
        // The 1-bit front-end applies exactly the configured post-gain.
        assert!((session.frontend_gain().unwrap() - session.setup().post_gain).abs() < 1e-12);
    }

    #[test]
    fn quick_measurement_recovers_expected_nf() {
        // The Table 3 shape on a reduced record: measured within 2 dB
        // of expected (the paper's own worst case) for a noisy and a
        // quiet op-amp. The CA3140's near-unity Y makes single quick
        // acquisitions high-variance, so it runs with Y-averaging
        // (which is exactly what `repeats` exists for).
        for (opamp, seed, repeats) in [
            (OpampModel::tl081(), 10u64, 1usize),
            (OpampModel::ca3140(), 8, 4),
        ] {
            let m = MeasurementSession::new(BistSetup::quick(seed))
                .unwrap()
                .dut(dut(opamp))
                .repeats(repeats)
                .run()
                .unwrap();
            assert!(
                (m.nf.figure.db() - m.expected_nf_db).abs() < 2.0,
                "{}: measured {:.2} vs expected {:.2}",
                m.dut,
                m.nf.figure.db(),
                m.expected_nf_db
            );
        }
    }

    #[test]
    fn measurement_reports_resources_and_labels() {
        let m = MeasurementSession::new(BistSetup::quick(6))
            .unwrap()
            .dut(dut(OpampModel::tl081()))
            .run()
            .unwrap();
        assert_eq!(m.usage.record_bytes, (1usize << 17) / 8);
        assert!(m.reference_amplitude > 0.0);
        assert!(m.one_bit_detail().unwrap().normalization.scale > 0.0);
        assert!(m.dut.contains("TL081"));
        assert!(m.digitizer.contains("1-bit"));
        assert!(m.estimator.contains("1-bit"));
        assert!(m.to_string().contains("measured"));
    }

    #[test]
    fn calibration_error_biases_measurement() {
        let mut setup = BistSetup::quick(7);
        setup.hot_calibration_error = 0.20; // gross 20 % error
        let biased = MeasurementSession::new(setup)
            .unwrap()
            .dut(dut(OpampModel::tl081()))
            .run()
            .unwrap();
        let clean = MeasurementSession::new(BistSetup::quick(7))
            .unwrap()
            .dut(dut(OpampModel::tl081()))
            .run()
            .unwrap();
        // Hotter-than-declared source → Y up → reported NF down.
        assert!(
            biased.nf.figure.db() < clean.nf.figure.db(),
            "biased {:.2} vs clean {:.2}",
            biased.nf.figure.db(),
            clean.nf.figure.db()
        );
    }

    #[test]
    fn acquisitions_are_deterministic_per_seed_and_repeat() {
        let s1 = MeasurementSession::new(BistSetup::quick(7)).unwrap();
        let s2 = MeasurementSession::new(BistSetup::quick(7)).unwrap();
        let a = s1.acquire(NoiseSourceState::Hot, 0).unwrap();
        let b = s2.acquire(NoiseSourceState::Hot, 0).unwrap();
        assert_eq!(a, b, "same seed must reproduce the same record");
        // Different repeat indices draw different noise.
        let c = s1.acquire(NoiseSourceState::Hot, 1).unwrap();
        assert_ne!(a, c);
        // And hot/cold differ.
        let d = s1.acquire(NoiseSourceState::Cold, 0).unwrap();
        assert_ne!(a, d);
    }

    #[test]
    fn adc_session_expresses_the_fig4_baseline() {
        let setup = BistSetup::quick(9);
        let m = MeasurementSession::new(setup.clone())
            .unwrap()
            .dut(dut(OpampModel::tl081()))
            .digitizer(AdcDigitizer::new(12).unwrap())
            .estimator(
                PsdRatioEstimator::new(setup.sample_rate, setup.nfft, setup.noise_band).unwrap(),
            )
            .run()
            .unwrap();
        assert!(
            (m.nf.figure.db() - m.expected_nf_db).abs() < 1.0,
            "measured {:.2} vs expected {:.2}",
            m.nf.figure.db(),
            m.expected_nf_db
        );
        // No reference in the ADC path; multi-bit records dominate
        // memory.
        assert_eq!(m.reference_amplitude, 0.0);
        let one_bit = digitizer_usage(setup.samples, setup.nfft, 1);
        assert!(m.usage.record_bytes >= 16 * one_bit.record_bytes);
        assert!(m.digitizer.contains("ADC"));
    }

    #[test]
    fn adc_acquisition_stays_within_range() {
        let setup = BistSetup::quick(10);
        let session = MeasurementSession::new(setup)
            .unwrap()
            .dut(dut(OpampModel::ca3140()))
            .digitizer(AdcDigitizer::new(12).unwrap());
        let record = session.acquire(NoiseSourceState::Hot, 0).unwrap();
        let x = record.to_samples();
        let peak = nfbist_dsp::stats::peak(&x).unwrap();
        assert!(peak <= 1.0);
        // Clipping should be rare: the RMS sits near 0.2 of full scale.
        let rms = nfbist_dsp::stats::rms(&x).unwrap();
        assert!(rms > 0.1 && rms < 0.35, "rms {rms}");
    }

    #[test]
    fn decomposed_run_matches_manual_assembly() {
        let mut setup = BistSetup::quick(21);
        setup.samples = 1 << 15;
        let session = MeasurementSession::new(setup)
            .unwrap()
            .dut(dut(OpampModel::tl081()))
            .repeats(2);
        let direct = session.run().unwrap();
        // The same three public pieces the parallel runner uses.
        let (gain, reference) = session.conditioning().unwrap();
        let repeats: Vec<_> = (0..2)
            .map(|r| {
                session
                    .measure_repeat_conditioned(r, gain, &reference)
                    .unwrap()
            })
            .collect();
        let assembled = session.combine(repeats).unwrap();
        assert_eq!(direct.nf.y, assembled.nf.y);
        assert_eq!(direct.nf.figure.db(), assembled.nf.figure.db());
        assert_eq!(direct.nf_spread_db, assembled.nf_spread_db);
        assert_eq!(direct.usage, assembled.usage);
        for (a, b) in direct.repeats.iter().zip(&assembled.repeats) {
            assert_eq!(a.ratio.ratio, b.ratio.ratio);
        }
        // Combining nothing is rejected.
        assert!(session.combine(Vec::new()).is_err());
    }

    #[test]
    fn streaming_run_is_bitwise_identical_to_batch_across_chunk_sizes() {
        let mut setup = BistSetup::quick(17);
        setup.samples = 1 << 14;
        setup.nfft = 1_024;
        let build = || {
            MeasurementSession::new(setup.clone())
                .unwrap()
                .dut(dut(OpampModel::tl081()))
                .repeats(2)
        };
        let batch = build().run().unwrap();
        assert!(!build().streaming_active());
        // Chunk sizes below, at, and off the Welch segment length.
        for chunk in [1_000usize, 1_024, 1_025, 7_777] {
            let session = build().memory_budget(1).streaming_chunk_len(chunk);
            assert!(session.streaming_active(), "budget 1 byte forces streaming");
            let streamed = session.run().unwrap();
            assert_eq!(
                streamed.nf.y.to_bits(),
                batch.nf.y.to_bits(),
                "chunk {chunk}"
            );
            assert_eq!(
                streamed.nf.figure.db().to_bits(),
                batch.nf.figure.db().to_bits()
            );
            assert_eq!(
                streamed.nf_spread_db.to_bits(),
                batch.nf_spread_db.to_bits()
            );
            assert_eq!(streamed.usage, batch.usage);
            for (s, b) in streamed.repeats.iter().zip(&batch.repeats) {
                assert_eq!(s.ratio.ratio.to_bits(), b.ratio.ratio.to_bits());
                assert_eq!(s.ratio.hot_power.to_bits(), b.ratio.hot_power.to_bits());
                assert_eq!(s.ratio.cold_power.to_bits(), b.ratio.cold_power.to_bits());
            }
        }
    }

    #[test]
    fn sequential_stop_is_bitwise_identical_to_a_batch_run_of_that_length() {
        // The invariant the adaptive screen rests on: stopping a
        // SequentialRepeat at n_c and flushing equals a batch run whose
        // record length is n_c — for any chunking, at every checkpoint.
        let mut setup = BistSetup::quick(37);
        setup.samples = 1 << 14;
        setup.nfft = 1_024;
        for chunk in [512usize, 1_024, 3_333] {
            let session = MeasurementSession::new(setup.clone())
                .unwrap()
                .dut(dut(OpampModel::tl081()))
                .streaming_chunk_len(chunk);
            let gain = session.frontend_gain().unwrap();
            for n_c in [1usize << 12, 1 << 13, 3 * (1 << 12)] {
                let mut seq = session.begin_sequential(0, gain).unwrap();
                seq.advance_to(n_c).unwrap();
                assert_eq!(seq.samples_consumed(), n_c);
                assert_eq!(seq.sample_cap(), 1 << 14);
                // The snapshot is chunk-invariant even before flushing.
                let snap = seq.snapshot().unwrap();
                let reference_snap = {
                    let mut r = session.begin_sequential(0, gain).unwrap();
                    r.advance_to(n_c).unwrap();
                    r.snapshot().unwrap()
                };
                assert_eq!(snap.ratio.to_bits(), reference_snap.ratio.to_bits());
                let stopped = seq.finish().unwrap();
                let mut short = setup.clone();
                short.samples = n_c;
                let batch = MeasurementSession::new(short)
                    .unwrap()
                    .dut(dut(OpampModel::tl081()))
                    .run()
                    .unwrap();
                assert_eq!(
                    stopped.ratio.ratio.to_bits(),
                    batch.nf.y.to_bits(),
                    "chunk {chunk}, stop {n_c}"
                );
                assert_eq!(
                    stopped.nf.unwrap().figure.db().to_bits(),
                    batch.nf.figure.db().to_bits()
                );
            }
        }
    }

    #[test]
    fn streaming_adc_psd_session_matches_batch() {
        let mut setup = BistSetup::quick(19);
        setup.samples = 1 << 14;
        setup.nfft = 1_024;
        let build = || {
            MeasurementSession::new(setup.clone())
                .unwrap()
                .dut(dut(OpampModel::tl081()))
                .digitizer(AdcDigitizer::new(12).unwrap())
                .estimator(
                    PsdRatioEstimator::new(setup.sample_rate, setup.nfft, setup.noise_band)
                        .unwrap(),
                )
        };
        let batch = build().run().unwrap();
        let streamed = build().memory_budget(64 * 1024).run().unwrap();
        assert_eq!(streamed.nf.y.to_bits(), batch.nf.y.to_bits());
        assert_eq!(
            streamed.reference_amplitude, 0.0,
            "no reference on the ADC path"
        );
    }

    #[test]
    fn budget_large_enough_keeps_the_batch_path() {
        let mut setup = BistSetup::quick(23);
        setup.samples = 1 << 13;
        setup.nfft = 1_024;
        let session = MeasurementSession::new(setup)
            .unwrap()
            .memory_budget(usize::MAX);
        assert!(!session.streaming_active(), "record fits the budget");
        assert_eq!(session.memory_budget_bytes(), Some(usize::MAX));
    }

    #[test]
    fn streaming_chunk_derivation_respects_budget_and_floor() {
        let mut setup = BistSetup::quick(29);
        setup.samples = 1 << 17;
        let session = MeasurementSession::new(setup.clone()).unwrap();
        // 1 MiB budget across 8 pipeline buffers of 8-byte samples.
        let s = MeasurementSession::new(setup.clone())
            .unwrap()
            .memory_budget(1 << 20);
        assert_eq!(s.streaming_chunk_samples(), (1 << 20) / 64);
        // Tiny budgets floor at 1024 samples, never pathological chunks.
        let tiny = MeasurementSession::new(setup.clone())
            .unwrap()
            .memory_budget(16);
        assert_eq!(tiny.streaming_chunk_samples(), 1_024);
        // Explicit override clamps to the record.
        let forced = session.streaming_chunk_len(usize::MAX);
        assert_eq!(forced.streaming_chunk_samples(), 1 << 17);
    }

    #[test]
    fn streaming_with_unsupported_estimator_falls_back_to_batch() {
        use nfbist_core::power_ratio::RatioEstimate;

        /// A batch-only estimator (no streaming override).
        struct BatchOnly;
        impl PowerRatioEstimator for BatchOnly {
            fn label(&self) -> String {
                "batch-only".into()
            }
            fn estimate(
                &self,
                hot: &[f64],
                cold: &[f64],
            ) -> Result<RatioEstimate, nfbist_core::CoreError> {
                nfbist_core::power_ratio::MeanSquareEstimator.estimate(hot, cold)
            }
        }
        let mut setup = BistSetup::quick(31);
        setup.samples = 1 << 13;
        setup.nfft = 1_024;
        // A scale-preserving front-end: the mean-square ratio is
        // meaningless on ±1 comparator samples.
        let session = MeasurementSession::new(setup)
            .unwrap()
            .digitizer(AdcDigitizer::new(12).unwrap())
            .estimator(BatchOnly)
            .memory_budget(1);
        // The budget is exceeded but the estimator cannot stream: the
        // session stays on the (correct) batch path rather than failing.
        assert!(!session.streaming_active());
        session.run().unwrap();
        // Asking for the streaming repeat explicitly *is* an error.
        assert!(session.measure_repeat_streaming(0, 1.0).is_err());
    }

    #[test]
    fn repeats_average_and_report_spread() {
        let mut setup = BistSetup::quick(12);
        setup.samples = 1 << 15; // keep the repeated run fast
        let m = MeasurementSession::new(setup)
            .unwrap()
            .dut(dut(OpampModel::tl081()))
            .repeats(3)
            .run()
            .unwrap();
        assert_eq!(m.repeats.len(), 3);
        assert!(m.nf_spread_db > 0.0, "independent repeats must scatter");
        let mean_y: f64 =
            m.repeats.iter().map(|r| r.ratio.ratio).sum::<f64>() / m.repeats.len() as f64;
        assert!((m.nf.y - mean_y).abs() < 1e-12);
        // Compute cost scales with the repeat count (quick nfft 2048).
        let single = digitizer_usage(1 << 15, 2_048, 1);
        assert_eq!(m.usage.fft_count, 3 * single.fft_count);
        // repeats(0) clamps to one acquisition.
        assert_eq!(
            MeasurementSession::new(BistSetup::quick(1))
                .unwrap()
                .repeats(0)
                .repeat_count(),
            1
        );
    }
}
