//! The generic measurement session: one acquisition/estimation path for
//! every combination of circuit, acquisition front-end and power-ratio
//! estimator.
//!
//! This is the crate's central abstraction. The paper's comparison —
//! the proposed 1-bit comparator BIST (Fig. 11) versus the conventional
//! ADC + analog-mux Y-factor bench (Fig. 4), evaluated with the three
//! power-ratio estimators of Table 2 — becomes an axis-by-axis swap:
//!
//! * [`Dut`] — *what* is measured: any circuit in `nfbist-analog`
//!   (non-inverting or inverting amplifier, attenuator/amplifier
//!   chains, whole cascades).
//! * [`Digitizer`] — *how* the signal is captured: the 1-bit comparator
//!   cell or an N-bit ADC behind a mux.
//! * [`PowerRatioEstimator`] — *how* the Y factor is formed: mean
//!   square, PSD band power, or the reference-normalized 1-bit
//!   estimator.
//!
//! A session always runs the same flow per acquisition: calibrated
//! hot/cold source → DUT (adding its own synthesized noise) →
//! front-end conditioning gain → digitizer → estimator → Y-factor
//! equations, with optional repeated acquisitions for averaging.

use crate::resources::{digitizer_usage, ResourceUsage};
use crate::setup::BistSetup;
use crate::SocError;
use nfbist_analog::circuits::NonInvertingAmplifier;
use nfbist_analog::converter::{Digitizer, OneBitDigitizer, Record};
use nfbist_analog::dut::Dut;
use nfbist_analog::noise::{CalibratedNoiseSource, NoiseSourceState};
use nfbist_analog::opamp::OpampModel;
use nfbist_analog::source::{SineSource, Waveform};
use nfbist_analog::units::Kelvin;
use nfbist_core::estimator::NfMeasurement;
use nfbist_core::power_ratio::{
    OneBitPowerRatio, OneBitRatioEstimate, PowerRatioEstimator, RatioEstimate,
};

/// The golden-ratio stride a session uses to derive per-repeat seeds
/// (`setup.seed + repeat·stride`, wrapping). Exported so batch-level
/// fan-out (`nfbist-runtime`) can derive per-trial/per-cell seeds with
/// the exact same scheme.
pub const REPEAT_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Derives the seed for batch element `index` from a base seed: a
/// golden-ratio walk followed by the SplitMix64 finalizer.
///
/// The finalizer matters: sessions derive *repeat* seeds as the plain
/// arithmetic walk `seed + repeat·φ⁶⁴`, so if batch elements (Monte
/// Carlo trials, coverage cells) used the same walk, element `t+1`
/// repeat `0` would draw bit-identical noise to element `t` repeat `1`
/// and a batch with `repeats > 1` would silently understate its
/// element-to-element spread. Mixing the walk through a bijective hash
/// keeps the derivation deterministic and collision-free while
/// decorrelating it from the repeat walk.
///
/// This is the one canonical derivation; `nfbist-runtime` re-exports
/// it for trial fan-out and the coverage campaign uses it per cell.
///
/// # Examples
///
/// ```
/// use nfbist_soc::session::derive_seed;
///
/// // Deterministic, and distinct per index.
/// assert_eq!(derive_seed(7, 1), derive_seed(7, 1));
/// assert_ne!(derive_seed(7, 1), derive_seed(7, 2));
/// ```
pub fn derive_seed(base: u64, index: u64) -> u64 {
    // SplitMix64 output function over the walked state (a bijection on
    // u64, so distinct (base, index) walks stay distinct).
    let mut z = base.wrapping_add(index.wrapping_add(1).wrapping_mul(REPEAT_SEED_STRIDE));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Outcome of one repeated acquisition within a session run.
#[derive(Debug, Clone)]
pub struct RepeatMeasurement {
    /// Noise figure derived from this repeat's Y ratio, or `None` when
    /// this repeat alone was degenerate (estimated Y ≤ 1) — its ratio
    /// still contributes to the run's mean Y.
    pub nf: Option<NfMeasurement>,
    /// The estimator's full report for this repeat.
    pub ratio: RatioEstimate,
}

/// The unified measurement report a [`MeasurementSession`] returns.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Noise figure from the mean Y ratio across repeats.
    pub nf: NfMeasurement,
    /// Analytic expectation from the DUT's noise model over the
    /// measurement band (Table 3's "Expected" column).
    pub expected_nf_db: f64,
    /// Sample standard deviation of the per-repeat NF in dB (0 for a
    /// single acquisition).
    pub nf_spread_db: f64,
    /// Reference amplitude at the digitizer input, in volts (0 when the
    /// front-end uses no reference).
    pub reference_amplitude: f64,
    /// Resource accounting for the whole run (records sized per
    /// acquisition; compute scaled by the repeat count).
    pub usage: ResourceUsage,
    /// Per-repeat outcomes, in acquisition order.
    pub repeats: Vec<RepeatMeasurement>,
    /// The DUT description.
    pub dut: String,
    /// The acquisition front-end description.
    pub digitizer: String,
    /// The estimator description.
    pub estimator: String,
}

impl Measurement {
    /// The 1-bit estimator intermediates of the first repeat (spectra,
    /// reference lines, normalization), when the session used the 1-bit
    /// estimator.
    pub fn one_bit_detail(&self) -> Option<&OneBitRatioEstimate> {
        self.repeats.first().and_then(|r| r.ratio.one_bit())
    }
}

impl std::fmt::Display for Measurement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{} / {}]: measured {} (expected {:.2} dB, spread {:.3} dB, {} repeat{})",
            self.dut,
            self.digitizer,
            self.estimator,
            self.nf,
            self.expected_nf_db,
            self.nf_spread_db,
            self.repeats.len(),
            if self.repeats.len() == 1 { "" } else { "s" },
        )
    }
}

/// Builder and runner for a complete Y-factor noise-figure measurement.
///
/// Defaults reproduce the paper's prototype bench: the OP27
/// non-inverting amplifier DUT, the 1-bit comparator cell, the 1-bit
/// reference-normalized estimator, one acquisition pair.
///
/// # Examples
///
/// ```no_run
/// use nfbist_analog::circuits::NonInvertingAmplifier;
/// use nfbist_analog::opamp::OpampModel;
/// use nfbist_analog::units::Ohms;
/// use nfbist_soc::session::MeasurementSession;
/// use nfbist_soc::setup::BistSetup;
///
/// # fn main() -> Result<(), nfbist_soc::SocError> {
/// let dut = NonInvertingAmplifier::new(
///     OpampModel::tl081(),
///     Ohms::new(10_000.0),
///     Ohms::new(100.0),
/// )?;
/// let m = MeasurementSession::new(BistSetup::paper_prototype(42))?
///     .dut(dut)
///     .repeats(4)
///     .run()?;
/// println!("expected {:.2} dB, measured {:.2} dB", m.expected_nf_db, m.nf.figure.db());
/// # Ok(())
/// # }
/// ```
///
/// Swapping the acquisition axis turns the same session into the
/// conventional Fig. 4 bench:
///
/// ```no_run
/// use nfbist_analog::converter::AdcDigitizer;
/// use nfbist_core::power_ratio::PsdRatioEstimator;
/// use nfbist_soc::session::MeasurementSession;
/// use nfbist_soc::setup::BistSetup;
///
/// # fn main() -> Result<(), nfbist_soc::SocError> {
/// let setup = BistSetup::quick(7);
/// let m = MeasurementSession::new(setup.clone())?
///     .digitizer(AdcDigitizer::new(12)?)
///     .estimator(PsdRatioEstimator::new(
///         setup.sample_rate,
///         setup.nfft,
///         setup.noise_band,
///     )?)
///     .run()?;
/// println!("{m}");
/// # Ok(())
/// # }
/// ```
pub struct MeasurementSession {
    setup: BistSetup,
    dut: Box<dyn Dut>,
    digitizer: Box<dyn Digitizer>,
    estimator: Box<dyn PowerRatioEstimator>,
    repeats: usize,
}

impl std::fmt::Debug for MeasurementSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MeasurementSession")
            .field("setup", &self.setup)
            .field("dut", &self.dut.label())
            .field("digitizer", &self.digitizer.label())
            .field("estimator", &self.estimator.label())
            .field("repeats", &self.repeats)
            .finish()
    }
}

impl MeasurementSession {
    /// Starts a session from a validated setup, with the paper's
    /// default DUT (OP27 non-inverting, Av = 101), the 1-bit comparator
    /// cell, and the setup-matched 1-bit estimator.
    ///
    /// # Errors
    ///
    /// Propagates [`BistSetup::validate`] failures and default
    /// component construction errors.
    pub fn new(setup: BistSetup) -> Result<Self, SocError> {
        setup.validate()?;
        let estimator = OneBitPowerRatio::new(
            setup.sample_rate,
            setup.nfft,
            setup.reference_frequency,
            setup.noise_band,
        )?;
        let dut = NonInvertingAmplifier::new(
            OpampModel::op27(),
            nfbist_analog::units::Ohms::new(10_000.0),
            nfbist_analog::units::Ohms::new(100.0),
        )?;
        Ok(MeasurementSession {
            setup,
            dut: Box::new(dut),
            digitizer: Box::new(OneBitDigitizer::ideal()),
            estimator: Box::new(estimator),
            repeats: 1,
        })
    }

    /// Selects the device under test.
    pub fn dut(mut self, dut: impl Dut + 'static) -> Self {
        self.dut = Box::new(dut);
        self
    }

    /// Selects the acquisition front-end.
    ///
    /// Note: the default estimator is the 1-bit reference-normalized
    /// one; when switching to a scale-preserving front-end such as
    /// `AdcDigitizer`, also select a matching estimator
    /// (`PsdRatioEstimator` or `MeanSquareEstimator`).
    pub fn digitizer(mut self, digitizer: impl Digitizer + 'static) -> Self {
        self.digitizer = Box::new(digitizer);
        self
    }

    /// Selects the power-ratio estimator.
    pub fn estimator(mut self, estimator: impl PowerRatioEstimator + 'static) -> Self {
        self.estimator = Box::new(estimator);
        self
    }

    /// Sets the number of repeated hot/cold acquisition pairs whose Y
    /// ratios are averaged (values below 1 are clamped to 1). Each
    /// repeat uses an independent seed derived from the setup seed.
    pub fn repeats(mut self, n: usize) -> Self {
        self.repeats = n.max(1);
        self
    }

    /// The setup.
    pub fn setup(&self) -> &BistSetup {
        &self.setup
    }

    /// The selected DUT.
    pub fn dut_ref(&self) -> &dyn Dut {
        &*self.dut
    }

    /// The selected front-end.
    pub fn digitizer_ref(&self) -> &dyn Digitizer {
        &*self.digitizer
    }

    /// The selected estimator.
    pub fn estimator_ref(&self) -> &dyn PowerRatioEstimator {
        &*self.estimator
    }

    /// The configured repeat count.
    pub fn repeat_count(&self) -> usize {
        self.repeats
    }

    /// Seed for a given repeat index (repeat 0 is the setup seed).
    fn repeat_seed(&self, repeat: usize) -> u64 {
        self.setup
            .seed
            .wrapping_add((repeat as u64).wrapping_mul(REPEAT_SEED_STRIDE))
    }

    fn source(&self, repeat: usize) -> Result<CalibratedNoiseSource, SocError> {
        let mut src = CalibratedNoiseSource::new(
            Kelvin::new(self.setup.hot_kelvin),
            Kelvin::new(self.setup.cold_kelvin),
            self.setup.source_resistance,
            self.repeat_seed(repeat) ^ 0xA5A5_A5A5,
        )?;
        if self.setup.hot_calibration_error != 0.0 {
            src.set_hot_error(self.setup.hot_calibration_error)?;
        }
        Ok(src)
    }

    /// Analytic noise RMS at the DUT output for a source state (the
    /// calibration a real BIST would do with a short trial
    /// acquisition).
    ///
    /// # Errors
    ///
    /// Propagates model errors.
    pub fn dut_output_rms(&self, state: NoiseSourceState) -> Result<f64, SocError> {
        let src = self.source(0)?;
        let nyquist = self.setup.sample_rate / 2.0;
        let source_density = src.voltage_density(state);
        let added =
            self.dut
                .mean_added_noise_density_sq(self.setup.source_resistance, 1.0, nyquist)?;
        let input_power = (source_density + added) * nyquist;
        Ok(self.dut.gain() * input_power.sqrt())
    }

    /// The conditioning gain between the DUT output and the digitizer,
    /// chosen by the front-end (the bench post-amplifier for the 1-bit
    /// cell; a range-fitting gain for an ADC).
    ///
    /// # Errors
    ///
    /// Propagates model errors.
    pub fn frontend_gain(&self) -> Result<f64, SocError> {
        let hot_rms = self.dut_output_rms(NoiseSourceState::Hot)?;
        Ok(self
            .digitizer
            .frontend_gain(hot_rms, self.setup.post_gain)?)
    }

    /// Analytic noise RMS at the digitizer input for a source state.
    ///
    /// # Errors
    ///
    /// Propagates model errors.
    pub fn digitizer_noise_rms(&self, state: NoiseSourceState) -> Result<f64, SocError> {
        Ok(self.frontend_gain()? * self.dut_output_rms(state)?)
    }

    /// The reference amplitude the session will use: the configured
    /// fraction of the **cold** digitizer-input noise RMS (so the hot
    /// state, with more noise, sees a smaller relative reference — both
    /// states stay inside Fig. 10's valid region for realistic Y).
    ///
    /// # Errors
    ///
    /// Propagates model errors.
    pub fn reference_amplitude(&self) -> Result<f64, SocError> {
        Ok(self.setup.reference_fraction * self.digitizer_noise_rms(NoiseSourceState::Cold)?)
    }

    /// The reference waveform shared by every acquisition (all zeros
    /// when the front-end uses no reference).
    fn reference_waveform(&self) -> Result<Vec<f64>, SocError> {
        if self.digitizer.uses_reference() {
            Ok(
                SineSource::new(self.setup.reference_frequency, self.reference_amplitude()?)?
                    .generate(self.setup.samples, self.setup.sample_rate)?,
            )
        } else {
            Ok(vec![0.0; self.setup.samples])
        }
    }

    /// Runs one acquisition for repeat index `repeat`: source noise →
    /// DUT → front-end conditioning → digitizer (against the reference
    /// sine when the front-end uses one).
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn acquire(&self, state: NoiseSourceState, repeat: usize) -> Result<Record, SocError> {
        self.acquire_conditioned(
            state,
            repeat,
            self.frontend_gain()?,
            &self.reference_waveform()?,
        )
    }

    /// The acquisition body, with the run-invariant conditioning gain
    /// and reference waveform supplied by the caller (hoisted out of
    /// the repeat loop in [`MeasurementSession::run`]).
    fn acquire_conditioned(
        &self,
        state: NoiseSourceState,
        repeat: usize,
        gain: f64,
        reference: &[f64],
    ) -> Result<Record, SocError> {
        let n = self.setup.samples;
        let fs = self.setup.sample_rate;
        let seed = self.repeat_seed(repeat);
        let mut src = self.source(repeat)?;
        // Distinct noise records per state: the source seed evolves per
        // call, and the DUT noise seed is derived from the state.
        let state_salt = match state {
            NoiseSourceState::Hot => 1u64,
            NoiseSourceState::Cold => 2u64,
        };
        if state == NoiseSourceState::Cold {
            // Advance the source stream so hot/cold records are
            // independent even though `src` is rebuilt per call.
            let _ = src.generate(state, 1, fs)?;
        }
        let source_noise = src.generate(state, n, fs)?;

        let dut_out = self.dut.process(
            &source_noise,
            self.setup.source_resistance,
            fs,
            seed.wrapping_add(state_salt).wrapping_mul(0x9E37),
        )?;

        let conditioned: Vec<f64> = dut_out.iter().map(|v| v * gain).collect();

        Ok(self.digitizer.acquire(&conditioned, reference)?)
    }

    /// The run-invariant conditioning shared by every repeat: the
    /// front-end gain and the reference waveform. Computed once per run
    /// (or once per batch when a parallel executor fans the repeats
    /// out) and passed to
    /// [`MeasurementSession::measure_repeat_conditioned`].
    ///
    /// # Errors
    ///
    /// Propagates model errors.
    pub fn conditioning(&self) -> Result<(f64, Vec<f64>), SocError> {
        Ok((self.frontend_gain()?, self.reference_waveform()?))
    }

    /// Runs one complete repeat — hot and cold acquisition plus the
    /// ratio estimate — with the run-invariant conditioning supplied by
    /// the caller (see [`MeasurementSession::conditioning`]).
    ///
    /// Each repeat is fully determined by `(setup seed, repeat index)`,
    /// which is what makes fan-out across worker threads bit-identical
    /// to the sequential loop.
    ///
    /// # Errors
    ///
    /// Propagates acquisition and estimation errors.
    pub fn measure_repeat_conditioned(
        &self,
        repeat: usize,
        gain: f64,
        reference: &[f64],
    ) -> Result<RepeatMeasurement, SocError> {
        let hot = self.acquire_conditioned(NoiseSourceState::Hot, repeat, gain, reference)?;
        let cold = self.acquire_conditioned(NoiseSourceState::Cold, repeat, gain, reference)?;
        let ratio = self
            .estimator
            .estimate(&hot.to_samples(), &cold.to_samples())?;
        // A single noisy repeat may estimate Y <= 1 (degenerate on
        // its own) yet still contribute to a valid mean, so the
        // per-repeat NF is optional rather than an abort.
        let nf =
            NfMeasurement::from_y(ratio.ratio, self.setup.hot_kelvin, self.setup.cold_kelvin).ok();
        Ok(RepeatMeasurement { nf, ratio })
    }

    /// Assembles the final [`Measurement`] from per-repeat outcomes (in
    /// acquisition order): Y-factor on the mean ratio, NF spread,
    /// analytic expectation, and resource accounting scaled by the
    /// repeat count (saturating, so enormous batch configurations
    /// cannot overflow in release builds).
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidParameter`] for an empty repeat list
    /// and propagates Y-factor/model errors.
    pub fn combine(&self, repeats: Vec<RepeatMeasurement>) -> Result<Measurement, SocError> {
        if repeats.is_empty() {
            return Err(SocError::InvalidParameter {
                name: "repeats",
                reason: "at least one repeat measurement is required",
            });
        }
        let y_sum: f64 = repeats.iter().map(|r| r.ratio.ratio).sum();
        let mean_y = y_sum / repeats.len() as f64;
        let nf = NfMeasurement::from_y(mean_y, self.setup.hot_kelvin, self.setup.cold_kelvin)?;
        let dbs: Vec<f64> = repeats
            .iter()
            .filter_map(|r| r.nf.map(|nf| nf.figure.db()))
            .collect();
        let nf_spread_db = if dbs.len() > 1 {
            nfbist_dsp::stats::std_dev(&dbs)?
        } else {
            0.0
        };

        let expected_nf_db = self.dut.expected_noise_figure_db(
            self.setup.source_resistance,
            self.setup.noise_band.0,
            self.setup.noise_band.1,
        )?;

        let mut usage = digitizer_usage(
            self.setup.samples,
            self.setup.nfft,
            self.digitizer.bits_per_sample(),
        );
        usage.fft_count = usage.fft_count.saturating_mul(repeats.len());
        usage.estimated_flops = usage.estimated_flops.saturating_mul(repeats.len() as u64);

        let reference_amplitude = if self.digitizer.uses_reference() {
            self.reference_amplitude()?
        } else {
            0.0
        };

        Ok(Measurement {
            nf,
            expected_nf_db,
            nf_spread_db,
            reference_amplitude,
            usage,
            repeats,
            dut: self.dut.label(),
            digitizer: self.digitizer.label(),
            estimator: self.estimator.label(),
        })
    }

    /// Runs the complete measurement: `repeats` hot/cold acquisition
    /// pairs, the selected estimator on each, the Y-factor equation on
    /// the mean ratio, the analytic expectation, and resource
    /// accounting.
    ///
    /// The body is exactly [`MeasurementSession::conditioning`] → a
    /// sequential loop of
    /// [`MeasurementSession::measure_repeat_conditioned`] →
    /// [`MeasurementSession::combine`]; the parallel batch runner in
    /// `nfbist-runtime` replaces only the loop, so its output is
    /// bit-identical by construction.
    ///
    /// # Errors
    ///
    /// Propagates acquisition and estimation errors.
    pub fn run(&self) -> Result<Measurement, SocError> {
        let (gain, reference) = self.conditioning()?;
        let mut repeats = Vec::with_capacity(self.repeats);
        for r in 0..self.repeats {
            repeats.push(self.measure_repeat_conditioned(r, gain, &reference)?);
        }
        self.combine(repeats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfbist_analog::converter::AdcDigitizer;
    use nfbist_analog::units::Ohms;
    use nfbist_core::power_ratio::PsdRatioEstimator;

    fn dut(opamp: OpampModel) -> NonInvertingAmplifier {
        NonInvertingAmplifier::new(opamp, Ohms::new(10_000.0), Ohms::new(100.0)).unwrap()
    }

    #[test]
    fn invalid_setup_rejected() {
        let mut setup = BistSetup::quick(1);
        setup.samples = 0;
        assert!(MeasurementSession::new(setup).is_err());
    }

    #[test]
    fn acquisition_has_expected_shape() {
        let session = MeasurementSession::new(BistSetup::quick(3)).unwrap();
        let record = session.acquire(NoiseSourceState::Hot, 0).unwrap();
        assert_eq!(record.len(), session.setup().samples);
        // Zero-mean noise against a zero-mean reference: duty near
        // 50 %.
        let bits = record.as_bits().expect("1-bit default front-end");
        assert!((bits.duty() - 0.5).abs() < 0.02, "duty {}", bits.duty());
    }

    #[test]
    fn reference_amplitude_tracks_cold_rms() {
        let session = MeasurementSession::new(BistSetup::quick(5)).unwrap();
        let rms = session.digitizer_noise_rms(NoiseSourceState::Cold).unwrap();
        let amp = session.reference_amplitude().unwrap();
        assert!((amp / rms - 0.3).abs() < 1e-12);
        let hot_rms = session.digitizer_noise_rms(NoiseSourceState::Hot).unwrap();
        assert!(hot_rms > rms);
        // The 1-bit front-end applies exactly the configured post-gain.
        assert!((session.frontend_gain().unwrap() - session.setup().post_gain).abs() < 1e-12);
    }

    #[test]
    fn quick_measurement_recovers_expected_nf() {
        // The Table 3 shape on a reduced record: measured within 2 dB
        // of expected (the paper's own worst case) for a noisy and a
        // quiet op-amp. The CA3140's near-unity Y makes single quick
        // acquisitions high-variance, so it runs with Y-averaging
        // (which is exactly what `repeats` exists for).
        for (opamp, seed, repeats) in [
            (OpampModel::tl081(), 10u64, 1usize),
            (OpampModel::ca3140(), 8, 4),
        ] {
            let m = MeasurementSession::new(BistSetup::quick(seed))
                .unwrap()
                .dut(dut(opamp))
                .repeats(repeats)
                .run()
                .unwrap();
            assert!(
                (m.nf.figure.db() - m.expected_nf_db).abs() < 2.0,
                "{}: measured {:.2} vs expected {:.2}",
                m.dut,
                m.nf.figure.db(),
                m.expected_nf_db
            );
        }
    }

    #[test]
    fn measurement_reports_resources_and_labels() {
        let m = MeasurementSession::new(BistSetup::quick(6))
            .unwrap()
            .dut(dut(OpampModel::tl081()))
            .run()
            .unwrap();
        assert_eq!(m.usage.record_bytes, (1usize << 17) / 8);
        assert!(m.reference_amplitude > 0.0);
        assert!(m.one_bit_detail().unwrap().normalization.scale > 0.0);
        assert!(m.dut.contains("TL081"));
        assert!(m.digitizer.contains("1-bit"));
        assert!(m.estimator.contains("1-bit"));
        assert!(m.to_string().contains("measured"));
    }

    #[test]
    fn calibration_error_biases_measurement() {
        let mut setup = BistSetup::quick(7);
        setup.hot_calibration_error = 0.20; // gross 20 % error
        let biased = MeasurementSession::new(setup)
            .unwrap()
            .dut(dut(OpampModel::tl081()))
            .run()
            .unwrap();
        let clean = MeasurementSession::new(BistSetup::quick(7))
            .unwrap()
            .dut(dut(OpampModel::tl081()))
            .run()
            .unwrap();
        // Hotter-than-declared source → Y up → reported NF down.
        assert!(
            biased.nf.figure.db() < clean.nf.figure.db(),
            "biased {:.2} vs clean {:.2}",
            biased.nf.figure.db(),
            clean.nf.figure.db()
        );
    }

    #[test]
    fn acquisitions_are_deterministic_per_seed_and_repeat() {
        let s1 = MeasurementSession::new(BistSetup::quick(7)).unwrap();
        let s2 = MeasurementSession::new(BistSetup::quick(7)).unwrap();
        let a = s1.acquire(NoiseSourceState::Hot, 0).unwrap();
        let b = s2.acquire(NoiseSourceState::Hot, 0).unwrap();
        assert_eq!(a, b, "same seed must reproduce the same record");
        // Different repeat indices draw different noise.
        let c = s1.acquire(NoiseSourceState::Hot, 1).unwrap();
        assert_ne!(a, c);
        // And hot/cold differ.
        let d = s1.acquire(NoiseSourceState::Cold, 0).unwrap();
        assert_ne!(a, d);
    }

    #[test]
    fn adc_session_expresses_the_fig4_baseline() {
        let setup = BistSetup::quick(9);
        let m = MeasurementSession::new(setup.clone())
            .unwrap()
            .dut(dut(OpampModel::tl081()))
            .digitizer(AdcDigitizer::new(12).unwrap())
            .estimator(
                PsdRatioEstimator::new(setup.sample_rate, setup.nfft, setup.noise_band).unwrap(),
            )
            .run()
            .unwrap();
        assert!(
            (m.nf.figure.db() - m.expected_nf_db).abs() < 1.0,
            "measured {:.2} vs expected {:.2}",
            m.nf.figure.db(),
            m.expected_nf_db
        );
        // No reference in the ADC path; multi-bit records dominate
        // memory.
        assert_eq!(m.reference_amplitude, 0.0);
        let one_bit = digitizer_usage(setup.samples, setup.nfft, 1);
        assert!(m.usage.record_bytes >= 16 * one_bit.record_bytes);
        assert!(m.digitizer.contains("ADC"));
    }

    #[test]
    fn adc_acquisition_stays_within_range() {
        let setup = BistSetup::quick(10);
        let session = MeasurementSession::new(setup)
            .unwrap()
            .dut(dut(OpampModel::ca3140()))
            .digitizer(AdcDigitizer::new(12).unwrap());
        let record = session.acquire(NoiseSourceState::Hot, 0).unwrap();
        let x = record.to_samples();
        let peak = nfbist_dsp::stats::peak(&x).unwrap();
        assert!(peak <= 1.0);
        // Clipping should be rare: the RMS sits near 0.2 of full scale.
        let rms = nfbist_dsp::stats::rms(&x).unwrap();
        assert!(rms > 0.1 && rms < 0.35, "rms {rms}");
    }

    #[test]
    fn decomposed_run_matches_manual_assembly() {
        let mut setup = BistSetup::quick(21);
        setup.samples = 1 << 15;
        let session = MeasurementSession::new(setup)
            .unwrap()
            .dut(dut(OpampModel::tl081()))
            .repeats(2);
        let direct = session.run().unwrap();
        // The same three public pieces the parallel runner uses.
        let (gain, reference) = session.conditioning().unwrap();
        let repeats: Vec<_> = (0..2)
            .map(|r| {
                session
                    .measure_repeat_conditioned(r, gain, &reference)
                    .unwrap()
            })
            .collect();
        let assembled = session.combine(repeats).unwrap();
        assert_eq!(direct.nf.y, assembled.nf.y);
        assert_eq!(direct.nf.figure.db(), assembled.nf.figure.db());
        assert_eq!(direct.nf_spread_db, assembled.nf_spread_db);
        assert_eq!(direct.usage, assembled.usage);
        for (a, b) in direct.repeats.iter().zip(&assembled.repeats) {
            assert_eq!(a.ratio.ratio, b.ratio.ratio);
        }
        // Combining nothing is rejected.
        assert!(session.combine(Vec::new()).is_err());
    }

    #[test]
    fn repeats_average_and_report_spread() {
        let mut setup = BistSetup::quick(12);
        setup.samples = 1 << 15; // keep the repeated run fast
        let m = MeasurementSession::new(setup)
            .unwrap()
            .dut(dut(OpampModel::tl081()))
            .repeats(3)
            .run()
            .unwrap();
        assert_eq!(m.repeats.len(), 3);
        assert!(m.nf_spread_db > 0.0, "independent repeats must scatter");
        let mean_y: f64 =
            m.repeats.iter().map(|r| r.ratio.ratio).sum::<f64>() / m.repeats.len() as f64;
        assert!((m.nf.y - mean_y).abs() < 1e-12);
        // Compute cost scales with the repeat count (quick nfft 2048).
        let single = digitizer_usage(1 << 15, 2_048, 1);
        assert_eq!(m.usage.fft_count, 3 * single.fft_count);
        // repeats(0) clamps to one acquisition.
        assert_eq!(
            MeasurementSession::new(BistSetup::quick(1))
                .unwrap()
                .repeats(0)
                .repeat_count(),
            1
        );
    }
}
