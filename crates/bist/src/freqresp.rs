//! Frequency-response BIST: the same comparator cell measuring gain vs
//! frequency (paper §7 / ref. \[3\]).
//!
//! A constant-amplitude test tone is swept across frequency; at each
//! point the DUT output (tone + DUT noise) is digitized with the noise
//! as dither, and a Goertzel detector reads the tone line out of the
//! bitstream. Normalizing to a passband point yields the relative
//! response and the −3 dB corner.

use crate::SocError;
use nfbist_analog::component::{Amplifier, Block};
use nfbist_analog::converter::OneBitDigitizer;
use nfbist_analog::noise::WhiteNoise;
use nfbist_analog::source::{SineSource, Waveform};
use nfbist_core::frequency_response::{corner_frequency, relative_response, SweepPoint};
use nfbist_dsp::goertzel::Goertzel;

/// Result of a frequency-response BIST run.
#[derive(Debug, Clone)]
pub struct FrequencyResponseMeasurement {
    /// `(frequency, relative gain dB)` normalized to the first point.
    pub response: Vec<(f64, f64)>,
    /// Interpolated −3 dB corner, when the sweep crosses it.
    pub corner_hz: Option<f64>,
}

/// Sweep configuration for the frequency-response BIST.
#[derive(Debug, Clone)]
pub struct FrequencyResponseTester {
    sample_rate: f64,
    samples_per_point: usize,
    tone_amplitude: f64,
    dither_sigma: f64,
    frequencies: Vec<f64>,
    seed: u64,
}

impl FrequencyResponseTester {
    /// Creates a tester.
    ///
    /// * `tone_amplitude` — input tone amplitude (keep it near 10–40 %
    ///   of `dither_sigma` at the comparator, the same operating window
    ///   as the NF reference).
    /// * `dither_sigma` — RMS of the dither noise added at the
    ///   comparator (models the DUT's own output noise).
    /// * `frequencies` — sweep points; the first is the normalization
    ///   anchor and should sit in the passband.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidParameter`] for non-positive
    /// parameters, an empty sweep, or frequencies at/above Nyquist.
    pub fn new(
        sample_rate: f64,
        samples_per_point: usize,
        tone_amplitude: f64,
        dither_sigma: f64,
        frequencies: Vec<f64>,
        seed: u64,
    ) -> Result<Self, SocError> {
        if !(sample_rate > 0.0) {
            return Err(SocError::InvalidParameter {
                name: "sample_rate",
                reason: "must be positive",
            });
        }
        if samples_per_point == 0 {
            return Err(SocError::InvalidParameter {
                name: "samples_per_point",
                reason: "must be nonzero",
            });
        }
        if !(tone_amplitude > 0.0) || !(dither_sigma > 0.0) {
            return Err(SocError::InvalidParameter {
                name: "levels",
                reason: "tone amplitude and dither sigma must be positive",
            });
        }
        if frequencies.is_empty() {
            return Err(SocError::InvalidParameter {
                name: "frequencies",
                reason: "sweep needs at least one point",
            });
        }
        if frequencies
            .iter()
            .any(|&f| !(f > 0.0) || f >= sample_rate / 2.0)
        {
            return Err(SocError::InvalidParameter {
                name: "frequencies",
                reason: "every sweep frequency must be in (0, nyquist)",
            });
        }
        Ok(FrequencyResponseTester {
            sample_rate,
            samples_per_point,
            tone_amplitude,
            dither_sigma,
            frequencies,
            seed,
        })
    }

    /// The sweep frequencies.
    pub fn frequencies(&self) -> &[f64] {
        &self.frequencies
    }

    /// Runs the sweep against a DUT block (processed per point), using
    /// the 1-bit digitizer with noise dither and Goertzel line readout.
    ///
    /// # Errors
    ///
    /// Propagates simulation and estimation errors.
    pub fn measure(&self, dut: &Amplifier) -> Result<FrequencyResponseMeasurement, SocError> {
        let n = self.samples_per_point;
        let fs = self.sample_rate;
        let digitizer = OneBitDigitizer::ideal();
        let mut sweep = Vec::with_capacity(self.frequencies.len());
        for (i, &f) in self.frequencies.iter().enumerate() {
            let tone = SineSource::new(f, self.tone_amplitude)?.generate(n, fs)?;
            let mut stage = dut.clone();
            stage.reset();
            let mut out = stage.process(&tone);
            // The DUT's own broadband output noise, acting as dither.
            let dither =
                WhiteNoise::new(self.dither_sigma, self.seed.wrapping_add(i as u64))?.generate(n);
            for (o, d) in out.iter_mut().zip(&dither) {
                *o += d;
            }
            // Skip the filter transient before digitizing.
            let skip = (n / 10).min(5_000);
            let bits = digitizer.digitize_sign(&out[skip..])?;
            // Goertzel reads the tone line straight off the packed
            // bitstream — no ±1 float expansion is materialized.
            let line_power = Goertzel::new(f, fs)?.power_iter(bits.iter_bipolar())?;
            sweep.push(SweepPoint {
                frequency: f,
                line_power,
            });
        }
        let response = relative_response(&sweep, 0)?;
        let corner_hz = corner_frequency(&response)?;
        Ok(FrequencyResponseMeasurement {
            response,
            corner_hz,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        let mk = |fs: f64, n: usize, a: f64, s: f64, f: Vec<f64>| {
            FrequencyResponseTester::new(fs, n, a, s, f, 0)
        };
        assert!(mk(0.0, 10, 0.1, 1.0, vec![100.0]).is_err());
        assert!(mk(1e4, 0, 0.1, 1.0, vec![100.0]).is_err());
        assert!(mk(1e4, 10, 0.0, 1.0, vec![100.0]).is_err());
        assert!(mk(1e4, 10, 0.1, 0.0, vec![100.0]).is_err());
        assert!(mk(1e4, 10, 0.1, 1.0, vec![]).is_err());
        assert!(mk(1e4, 10, 0.1, 1.0, vec![6_000.0]).is_err());
        assert!(mk(1e4, 10, 0.1, 1.0, vec![100.0]).is_ok());
    }

    #[test]
    fn flat_dut_measures_flat() {
        let tester = FrequencyResponseTester::new(
            40_000.0,
            120_000,
            0.25,
            1.0,
            vec![500.0, 1_000.0, 2_000.0, 4_000.0],
            3,
        )
        .unwrap();
        let dut = Amplifier::ideal(4.0).unwrap();
        let m = tester.measure(&dut).unwrap();
        for (f, g) in &m.response {
            assert!(g.abs() < 0.6, "gain at {f} Hz: {g} dB");
        }
        assert_eq!(m.corner_hz, None);
    }

    #[test]
    fn one_pole_corner_recovered_through_one_bit_bist() {
        // The headline claim of §7: a bandwidth-limited amplifier's
        // corner is measurable with the same comparator cell.
        let fs = 40_000.0;
        let fc = 2_000.0;
        let tester = FrequencyResponseTester::new(
            fs,
            150_000,
            0.25,
            1.0,
            vec![
                200.0, 500.0, 1_000.0, 1_500.0, 2_000.0, 3_000.0, 4_000.0, 6_000.0, 8_000.0,
            ],
            5,
        )
        .unwrap();
        let dut = Amplifier::ideal(4.0)
            .unwrap()
            .with_bandwidth(fc, fs)
            .unwrap();
        let m = tester.measure(&dut).unwrap();
        let corner = m.corner_hz.expect("sweep crosses -3 dB");
        assert!(
            (corner - fc).abs() / fc < 0.25,
            "measured corner {corner} vs {fc}"
        );
        // Monotone rolloff above the corner.
        let tail: Vec<f64> = m
            .response
            .iter()
            .filter(|(f, _)| *f >= fc)
            .map(|(_, g)| *g)
            .collect();
        for w in tail.windows(2) {
            assert!(w[1] <= w[0] + 0.5, "rolloff not monotone: {tail:?}");
        }
    }
}
