//! Frequency-response BIST: the same comparator cell measuring gain vs
//! frequency (paper §7 / ref. \[3\]).
//!
//! A constant-amplitude test tone is swept across frequency; at each
//! point the DUT output (tone + DUT noise) is digitized with the noise
//! as dither, and a Goertzel detector reads the tone line out of the
//! bitstream. Normalizing to a passband point yields the relative
//! response and the −3 dB corner.
//!
//! # Repeats and the SoA fan-out
//!
//! Comparator dither makes every point estimate stochastic; averaging
//! repeated acquisitions at the same frequency tightens it without
//! lengthening any single record. With [`FrequencyResponseTester::repeats`]
//! `> 1` the repeats of one sweep point are expanded side by side into a
//! sample-major [`SoaRecords`] batch and read out with
//! [`Goertzel::power_soa`]: the Goertzel recurrence is a serial
//! dependency chain along *samples*, but across *repeats* the chains are
//! independent, so the SIMD layer walks four lanes per register. Each
//! lane is bit-identical to running that repeat through the scalar
//! single-record detector.

use crate::session::derive_seed;
use crate::SocError;
use nfbist_analog::bitstream::Bitstream;
use nfbist_analog::component::{Amplifier, Block};
use nfbist_analog::converter::OneBitDigitizer;
use nfbist_analog::noise::WhiteNoise;
use nfbist_analog::source::{SineSource, Waveform};
use nfbist_core::frequency_response::{corner_frequency, relative_response, SweepPoint};
use nfbist_dsp::goertzel::Goertzel;
use nfbist_dsp::soa::SoaRecords;

/// Result of a frequency-response BIST run.
#[derive(Debug, Clone)]
pub struct FrequencyResponseMeasurement {
    /// `(frequency, relative gain dB)` normalized to the first point.
    pub response: Vec<(f64, f64)>,
    /// Interpolated −3 dB corner, when the sweep crosses it.
    pub corner_hz: Option<f64>,
}

/// Sweep configuration for the frequency-response BIST.
#[derive(Debug, Clone)]
pub struct FrequencyResponseTester {
    sample_rate: f64,
    samples_per_point: usize,
    tone_amplitude: f64,
    dither_sigma: f64,
    frequencies: Vec<f64>,
    seed: u64,
    repeats: usize,
}

impl FrequencyResponseTester {
    /// Creates a tester.
    ///
    /// * `tone_amplitude` — input tone amplitude (keep it near 10–40 %
    ///   of `dither_sigma` at the comparator, the same operating window
    ///   as the NF reference).
    /// * `dither_sigma` — RMS of the dither noise added at the
    ///   comparator (models the DUT's own output noise).
    /// * `frequencies` — sweep points; the first is the normalization
    ///   anchor and should sit in the passband.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidParameter`] for non-positive
    /// parameters, an empty sweep, or frequencies at/above Nyquist.
    pub fn new(
        sample_rate: f64,
        samples_per_point: usize,
        tone_amplitude: f64,
        dither_sigma: f64,
        frequencies: Vec<f64>,
        seed: u64,
    ) -> Result<Self, SocError> {
        if !(sample_rate > 0.0) {
            return Err(SocError::InvalidParameter {
                name: "sample_rate",
                reason: "must be positive",
            });
        }
        if samples_per_point == 0 {
            return Err(SocError::InvalidParameter {
                name: "samples_per_point",
                reason: "must be nonzero",
            });
        }
        if !(tone_amplitude > 0.0) || !(dither_sigma > 0.0) {
            return Err(SocError::InvalidParameter {
                name: "levels",
                reason: "tone amplitude and dither sigma must be positive",
            });
        }
        if frequencies.is_empty() {
            return Err(SocError::InvalidParameter {
                name: "frequencies",
                reason: "sweep needs at least one point",
            });
        }
        if frequencies
            .iter()
            .any(|&f| !(f > 0.0) || f >= sample_rate / 2.0)
        {
            return Err(SocError::InvalidParameter {
                name: "frequencies",
                reason: "every sweep frequency must be in (0, nyquist)",
            });
        }
        Ok(FrequencyResponseTester {
            sample_rate,
            samples_per_point,
            tone_amplitude,
            dither_sigma,
            frequencies,
            seed,
            repeats: 1,
        })
    }

    /// Sets the number of repeated acquisitions averaged per sweep
    /// point (clamped to at least 1; default 1). Repeats of one point
    /// run through the SoA Goertzel batch readout — see the
    /// [module docs](self).
    pub fn repeats(mut self, r: usize) -> Self {
        self.repeats = r.max(1);
        self
    }

    /// Repeated acquisitions per sweep point.
    pub fn repeat_count(&self) -> usize {
        self.repeats
    }

    /// The sweep frequencies.
    pub fn frequencies(&self) -> &[f64] {
        &self.frequencies
    }

    /// Measures one sweep point: `repeats` independent dithered
    /// acquisitions at `frequencies()[i]`, read out together through
    /// the SoA Goertzel batch and averaged.
    ///
    /// The point is a pure function of `(tester, dut, i)` — repeat
    /// seeds derive from `(seed, i·repeats + k)` via [`derive_seed`] —
    /// so points may be computed in any order or concurrently
    /// (`BatchPlan::run_freqresp` in `nfbist-runtime` does exactly
    /// that) and reassembled with
    /// [`FrequencyResponseTester::assemble`].
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidParameter`] for an out-of-range
    /// index; otherwise propagates simulation and estimation errors.
    pub fn measure_point(&self, dut: &Amplifier, i: usize) -> Result<SweepPoint, SocError> {
        let &f = self.frequencies.get(i).ok_or(SocError::InvalidParameter {
            name: "point",
            reason: "sweep point index out of range",
        })?;
        let n = self.samples_per_point;
        let fs = self.sample_rate;
        let digitizer = OneBitDigitizer::ideal();
        // The deterministic part — tone through the DUT — is identical
        // across repeats, so it is simulated once per point.
        let tone = SineSource::new(f, self.tone_amplitude)?.generate(n, fs)?;
        let mut stage = dut.clone();
        stage.reset();
        let clean = stage.process(&tone);
        // Skip the filter transient before digitizing.
        let skip = (n / 10).min(5_000);
        let mut noisy = vec![0.0f64; n];
        let mut streams = Vec::with_capacity(self.repeats);
        for k in 0..self.repeats {
            noisy.copy_from_slice(&clean);
            // The DUT's own broadband output noise, acting as dither —
            // an independent realization per repeat.
            let seed = derive_seed(self.seed, (i * self.repeats + k) as u64);
            let dither = WhiteNoise::new(self.dither_sigma, seed)?.generate(n);
            for (o, d) in noisy.iter_mut().zip(&dither) {
                *o += d;
            }
            streams.push(digitizer.digitize_sign(&noisy[skip..])?);
        }
        let detector = Goertzel::new(f, fs)?;
        let line_power = if self.repeats == 1 {
            // Single acquisition: read the line straight off the packed
            // bitstream — no ±1 float expansion is materialized.
            detector.power_iter(streams[0].iter_bipolar())?
        } else {
            // Repeat batch: expand side by side (sample-major SoA) and
            // run all repeats' Goertzel chains in SIMD lanes at once.
            let batch: SoaRecords = Bitstream::expand_many_bipolar(&streams)?;
            let powers = detector.power_soa(&batch)?;
            powers.iter().sum::<f64>() / powers.len() as f64
        };
        Ok(SweepPoint {
            frequency: f,
            line_power,
        })
    }

    /// Normalizes a complete, in-order set of sweep points (one per
    /// frequency, as produced by
    /// [`FrequencyResponseTester::measure_point`]) into the final
    /// measurement.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidParameter`] unless exactly one point
    /// per sweep frequency is supplied; otherwise propagates
    /// normalization errors.
    pub fn assemble(
        &self,
        points: Vec<SweepPoint>,
    ) -> Result<FrequencyResponseMeasurement, SocError> {
        if points.len() != self.frequencies.len() {
            return Err(SocError::InvalidParameter {
                name: "points",
                reason: "need exactly one sweep point per frequency",
            });
        }
        let response = relative_response(&points, 0)?;
        let corner_hz = corner_frequency(&response)?;
        Ok(FrequencyResponseMeasurement {
            response,
            corner_hz,
        })
    }

    /// Runs the sweep against a DUT block (processed per point), using
    /// the 1-bit digitizer with noise dither and Goertzel line readout.
    ///
    /// # Errors
    ///
    /// Propagates simulation and estimation errors.
    pub fn measure(&self, dut: &Amplifier) -> Result<FrequencyResponseMeasurement, SocError> {
        let points = (0..self.frequencies.len())
            .map(|i| self.measure_point(dut, i))
            .collect::<Result<Vec<_>, _>>()?;
        self.assemble(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        let mk = |fs: f64, n: usize, a: f64, s: f64, f: Vec<f64>| {
            FrequencyResponseTester::new(fs, n, a, s, f, 0)
        };
        assert!(mk(0.0, 10, 0.1, 1.0, vec![100.0]).is_err());
        assert!(mk(1e4, 0, 0.1, 1.0, vec![100.0]).is_err());
        assert!(mk(1e4, 10, 0.0, 1.0, vec![100.0]).is_err());
        assert!(mk(1e4, 10, 0.1, 0.0, vec![100.0]).is_err());
        assert!(mk(1e4, 10, 0.1, 1.0, vec![]).is_err());
        assert!(mk(1e4, 10, 0.1, 1.0, vec![6_000.0]).is_err());
        assert!(mk(1e4, 10, 0.1, 1.0, vec![100.0]).is_ok());
    }

    #[test]
    fn repeats_builder_and_point_bounds() {
        let tester =
            FrequencyResponseTester::new(1e4, 4_000, 0.2, 1.0, vec![500.0, 1_000.0], 1).unwrap();
        assert_eq!(tester.repeat_count(), 1);
        let tester = tester.repeats(0);
        assert_eq!(tester.repeat_count(), 1, "clamped to at least 1");
        let tester = tester.repeats(4);
        assert_eq!(tester.repeat_count(), 4);
        let dut = Amplifier::ideal(2.0).unwrap();
        assert!(tester.measure_point(&dut, 2).is_err(), "index out of range");
        let p = tester.measure_point(&dut, 1).unwrap();
        assert_eq!(p.frequency, 1_000.0);
        assert!(p.line_power > 0.0);
        // assemble needs exactly one point per frequency.
        assert!(tester.assemble(vec![p]).is_err());
    }

    #[test]
    fn repeated_points_match_the_mean_of_scalar_repeats_bitwise() {
        // The SoA lanes must reproduce each repeat's scalar Goertzel
        // readout exactly, so the averaged point equals the hand-rolled
        // mean over individually measured repeats.
        let tester = FrequencyResponseTester::new(2e4, 6_000, 0.25, 1.0, vec![800.0], 21)
            .unwrap()
            .repeats(5);
        let dut = Amplifier::ideal(3.0).unwrap();
        let batch_point = tester.measure_point(&dut, 0).unwrap();

        // Re-run the per-repeat pipeline through the scalar detector.
        let n = 6_000;
        let fs = 2e4;
        let f = 800.0;
        let tone = SineSource::new(f, 0.25).unwrap().generate(n, fs).unwrap();
        let mut stage = dut.clone();
        stage.reset();
        let clean = stage.process(&tone);
        let skip = (n / 10).min(5_000);
        let digitizer = OneBitDigitizer::ideal();
        let detector = Goertzel::new(f, fs).unwrap();
        let powers: Vec<f64> = (0..5)
            .map(|k| {
                let seed = derive_seed(21, k as u64);
                let dither = WhiteNoise::new(1.0, seed).unwrap().generate(n);
                let noisy: Vec<f64> = clean.iter().zip(&dither).map(|(c, d)| c + d).collect();
                let bits = digitizer.digitize_sign(&noisy[skip..]).unwrap();
                detector.power_iter(bits.iter_bipolar()).unwrap()
            })
            .collect();
        let mean = powers.iter().sum::<f64>() / powers.len() as f64;
        assert_eq!(batch_point.line_power.to_bits(), mean.to_bits());
    }

    #[test]
    fn flat_dut_measures_flat() {
        let tester = FrequencyResponseTester::new(
            40_000.0,
            120_000,
            0.25,
            1.0,
            vec![500.0, 1_000.0, 2_000.0, 4_000.0],
            3,
        )
        .unwrap();
        let dut = Amplifier::ideal(4.0).unwrap();
        let m = tester.measure(&dut).unwrap();
        for (f, g) in &m.response {
            assert!(g.abs() < 0.6, "gain at {f} Hz: {g} dB");
        }
        assert_eq!(m.corner_hz, None);
    }

    #[test]
    fn one_pole_corner_recovered_through_one_bit_bist() {
        // The headline claim of §7: a bandwidth-limited amplifier's
        // corner is measurable with the same comparator cell.
        let fs = 40_000.0;
        let fc = 2_000.0;
        let tester = FrequencyResponseTester::new(
            fs,
            150_000,
            0.25,
            1.0,
            vec![
                200.0, 500.0, 1_000.0, 1_500.0, 2_000.0, 3_000.0, 4_000.0, 6_000.0, 8_000.0,
            ],
            5,
        )
        .unwrap();
        let dut = Amplifier::ideal(4.0)
            .unwrap()
            .with_bandwidth(fc, fs)
            .unwrap();
        let m = tester.measure(&dut).unwrap();
        let corner = m.corner_hz.expect("sweep crosses -3 dB");
        assert!(
            (corner - fc).abs() / fc < 0.25,
            "measured corner {corner} vs {fc}"
        );
        // Monotone rolloff above the corner.
        let tail: Vec<f64> = m
            .response
            .iter()
            .filter(|(f, _)| *f >= fc)
            .map(|(_, g)| *g)
            .collect();
        for w in tail.windows(2) {
            assert!(w[1] <= w[0] + 0.5, "rolloff not monotone: {tail:?}");
        }
    }
}
