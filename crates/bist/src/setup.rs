//! Measurement configuration: the paper's Fig. 11 bench as data.

use crate::SocError;
use nfbist_analog::units::Ohms;

/// Configuration of a BIST noise-figure measurement.
///
/// Public fields by design: this is a plain configuration record the
/// experiment binaries tweak freely; [`BistSetup::validate`] guards the
/// invariants before a pipeline is built.
///
/// # Examples
///
/// ```
/// use nfbist_soc::setup::BistSetup;
///
/// let setup = BistSetup::paper_prototype(7);
/// assert_eq!(setup.reference_frequency, 3_000.0);
/// assert_eq!(setup.samples, 1_000_000);
/// assert_eq!(setup.nfft, 10_000);
/// assert!(setup.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BistSetup {
    /// Simulation/acquisition sample rate in hertz.
    pub sample_rate: f64,
    /// Samples per acquisition (the paper used 10⁶).
    pub samples: usize,
    /// Welch segment / FFT length (the paper used 10⁴).
    pub nfft: usize,
    /// Declared hot temperature of the noise source, kelvin.
    pub hot_kelvin: f64,
    /// Declared cold temperature, kelvin.
    pub cold_kelvin: f64,
    /// Source resistance presented to the DUT.
    pub source_resistance: Ohms,
    /// Reference tone frequency in hertz (3 kHz in the prototype).
    pub reference_frequency: f64,
    /// Reference amplitude as a fraction of the *cold* noise RMS at the
    /// comparator (the paper's Fig. 10 recommends 10–40 %).
    pub reference_fraction: f64,
    /// Noise measurement band `(f_lo, f_hi)` in hertz (≤1 kHz in the
    /// prototype).
    pub noise_band: (f64, f64),
    /// Post-amplifier voltage gain ahead of the comparator (Av = 1156
    /// in the prototype; the 1-bit path is scale-invariant so this only
    /// matters against comparator imperfections).
    pub post_gain: f64,
    /// Fractional calibration error on the emitted hot temperature
    /// (0 for a perfect source).
    pub hot_calibration_error: f64,
    /// RNG seed; every derived stream is deterministic in this.
    pub seed: u64,
}

impl BistSetup {
    /// The paper's prototype configuration (§5.4): 3 kHz reference,
    /// 1 kHz noise bandwidth, Th = 2900 K, T0 = 290 K, 10⁶ samples,
    /// 10⁴-point FFT, source resistance 2 kΩ, post-gain 1156.
    ///
    /// The sample rate (not reported in the paper — the scope handled
    /// acquisition) is set to 20 kHz, comfortably above the 3 kHz
    /// reference and its first harmonics.
    pub fn paper_prototype(seed: u64) -> Self {
        BistSetup {
            sample_rate: 20_000.0,
            samples: 1_000_000,
            nfft: 10_000,
            hot_kelvin: 2_900.0,
            cold_kelvin: 290.0,
            source_resistance: Ohms::new(2_000.0),
            reference_frequency: 3_000.0,
            reference_fraction: 0.3,
            noise_band: (100.0, 1_000.0),
            post_gain: 1_156.0,
            hot_calibration_error: 0.0,
            seed,
        }
    }

    /// A reduced configuration for fast tests and CI: 2¹⁷ samples,
    /// 2 048-point FFT, otherwise the paper's parameters.
    pub fn quick(seed: u64) -> Self {
        BistSetup {
            samples: 1 << 17,
            nfft: 2_048,
            ..Self::paper_prototype(seed)
        }
    }

    /// Effective number of independent samples per acquisition for
    /// uncertainty/guard-band purposes: `2·B·T` with `B` the noise
    /// bandwidth and `T = samples / sample_rate` the record duration
    /// (clamped to at least 1). This is the `n_effective` that
    /// [`crate::screening::Screen::judge`] and the coverage campaign
    /// feed the guard-band model.
    ///
    /// # Examples
    ///
    /// ```
    /// use nfbist_soc::setup::BistSetup;
    ///
    /// // Paper prototype: B = 900 Hz, T = 10⁶ / 20 kHz = 50 s.
    /// let setup = BistSetup::paper_prototype(0);
    /// assert_eq!(setup.effective_samples(), 90_000);
    /// ```
    pub fn effective_samples(&self) -> usize {
        self.effective_samples_for(self.samples)
    }

    /// [`BistSetup::effective_samples`] at an arbitrary record length
    /// instead of the configured one — the per-checkpoint `n_effective`
    /// a sequential (early-stopping) screen needs while the record is
    /// still growing.
    ///
    /// # Examples
    ///
    /// ```
    /// use nfbist_soc::setup::BistSetup;
    ///
    /// let setup = BistSetup::paper_prototype(0);
    /// assert_eq!(setup.effective_samples_for(setup.samples), 90_000);
    /// assert_eq!(setup.effective_samples_for(setup.samples / 2), 45_000);
    /// assert_eq!(setup.effective_samples_for(0), 1); // clamped
    /// ```
    pub fn effective_samples_for(&self, samples: usize) -> usize {
        let bandwidth = self.noise_band.1 - self.noise_band.0;
        let duration = samples as f64 / self.sample_rate;
        ((2.0 * bandwidth * duration) as usize).max(1)
    }

    /// Checks all invariants.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidParameter`] describing the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), SocError> {
        if !(self.sample_rate > 0.0) {
            return Err(SocError::InvalidParameter {
                name: "sample_rate",
                reason: "must be positive",
            });
        }
        if self.samples == 0 {
            return Err(SocError::InvalidParameter {
                name: "samples",
                reason: "must be nonzero",
            });
        }
        if self.nfft == 0 || self.nfft > self.samples {
            return Err(SocError::InvalidParameter {
                name: "nfft",
                reason: "must be nonzero and at most the record length",
            });
        }
        if !(self.hot_kelvin > self.cold_kelvin) || !(self.cold_kelvin >= 0.0) {
            return Err(SocError::InvalidParameter {
                name: "temperatures",
                reason: "requires hot > cold >= 0",
            });
        }
        if !(self.source_resistance.value() > 0.0) {
            return Err(SocError::InvalidParameter {
                name: "source_resistance",
                reason: "must be positive",
            });
        }
        if !(self.reference_frequency > 0.0) || self.reference_frequency >= self.sample_rate / 2.0 {
            return Err(SocError::InvalidParameter {
                name: "reference_frequency",
                reason: "must be positive and below nyquist",
            });
        }
        if !(self.reference_fraction > 0.0) || !(self.reference_fraction < 1.0) {
            return Err(SocError::InvalidParameter {
                name: "reference_fraction",
                reason: "must be in (0, 1)",
            });
        }
        // f_lo must be strictly positive: the analytic expectation
        // integrates the op-amp 1/f noise model over the band, which
        // diverges at DC — and the measured/expected columns must
        // cover the same band to be comparable.
        if !(self.noise_band.0 > 0.0)
            || !(self.noise_band.1 > self.noise_band.0)
            || self.noise_band.1 >= self.sample_rate / 2.0
        {
            return Err(SocError::InvalidParameter {
                name: "noise_band",
                reason: "requires 0 < f_lo < f_hi < nyquist",
            });
        }
        if !(self.post_gain > 0.0) {
            return Err(SocError::InvalidParameter {
                name: "post_gain",
                reason: "must be positive",
            });
        }
        if !self.hot_calibration_error.is_finite() || self.hot_calibration_error <= -1.0 {
            return Err(SocError::InvalidParameter {
                name: "hot_calibration_error",
                reason: "must be finite and above -1",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_prototype_is_valid() {
        assert!(BistSetup::paper_prototype(0).validate().is_ok());
        assert!(BistSetup::quick(0).validate().is_ok());
    }

    #[test]
    fn each_invariant_is_enforced() {
        let base = BistSetup::quick(0);
        type Mutation = Box<dyn Fn(&mut BistSetup)>;
        let mutations: Vec<(&str, Mutation)> = vec![
            ("sample_rate", Box::new(|s| s.sample_rate = 0.0)),
            ("samples", Box::new(|s| s.samples = 0)),
            ("nfft zero", Box::new(|s| s.nfft = 0)),
            ("nfft > samples", Box::new(|s| s.nfft = s.samples + 1)),
            ("temps", Box::new(|s| s.hot_kelvin = s.cold_kelvin)),
            ("cold", Box::new(|s| s.cold_kelvin = -1.0)),
            ("rs", Box::new(|s| s.source_resistance = Ohms::new(0.0))),
            ("ref freq", Box::new(|s| s.reference_frequency = 0.0)),
            (
                "ref freq nyquist",
                Box::new(|s| s.reference_frequency = s.sample_rate),
            ),
            ("ref frac", Box::new(|s| s.reference_fraction = 0.0)),
            ("ref frac 1", Box::new(|s| s.reference_fraction = 1.0)),
            ("band", Box::new(|s| s.noise_band = (500.0, 100.0))),
            ("band dc", Box::new(|s| s.noise_band = (0.0, 100.0))),
            (
                "band nyquist",
                Box::new(|s| s.noise_band = (100.0, s.sample_rate)),
            ),
            ("post gain", Box::new(|s| s.post_gain = 0.0)),
            ("cal error", Box::new(|s| s.hot_calibration_error = -1.0)),
        ];
        for (name, mutate) in mutations {
            let mut s = base.clone();
            mutate(&mut s);
            assert!(s.validate().is_err(), "mutation '{name}' not caught");
        }
    }

    #[test]
    fn quick_differs_only_in_record_sizes() {
        let p = BistSetup::paper_prototype(5);
        let q = BistSetup::quick(5);
        assert_eq!(p.reference_frequency, q.reference_frequency);
        assert_eq!(p.noise_band, q.noise_band);
        assert!(q.samples < p.samples);
        assert!(q.nfft < p.nfft);
    }
}
