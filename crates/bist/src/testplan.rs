//! Test-resource partitioning: scheduling BIST acquisitions under a
//! SoC memory budget.
//!
//! The paper's framing (refs. \[1\]–\[2\]) is test-resource reuse in a SoC.
//! With one comparator per test point, the *analog* side is always
//! parallel — but the stored bitstreams compete for the same on-chip
//! memory. This module plans how many points can be captured
//! concurrently per pass given a budget, and how many passes a full
//! test of `n` points needs.

use crate::resources::{one_bit_usage, ResourceBudget, ResourceUsage};
use crate::SocError;

/// A planned acquisition schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestPlan {
    /// Number of test points captured concurrently in each pass.
    pub points_per_pass: usize,
    /// Number of passes needed to cover all points (hot+cold pairs per
    /// point are captured within a pass).
    pub passes: usize,
    /// Memory used in the widest pass, in bytes.
    pub pass_memory_bytes: usize,
    /// Per-measurement resource estimate the plan was built from.
    pub per_point: ResourceUsage,
}

impl TestPlan {
    /// Total test points covered by the plan.
    pub fn total_points(&self) -> usize {
        // The last pass may be partial; the plan records the covering
        // count, so this is an upper bound consistent with `new`.
        self.points_per_pass * self.passes
    }
}

/// Plans the acquisition schedule for `points` test points, each needing
/// a hot+cold pair of `samples`-long 1-bit records analyzed with
/// `nfft`-point segments, under `budget`.
///
/// The FFT working buffer is shared across points (processing is
/// sequential on the SoC CPU), so each concurrent point costs only its
/// two records.
///
/// # Errors
///
/// Returns [`SocError::InvalidParameter`] for zero points and
/// [`SocError::BudgetExceeded`] when even a single point does not fit.
///
/// # Examples
///
/// ```
/// use nfbist_soc::resources::ResourceBudget;
/// use nfbist_soc::testplan::plan_acquisitions;
///
/// # fn main() -> Result<(), nfbist_soc::SocError> {
/// // 8 test points, paper-size records, 1 MB of SRAM.
/// let plan = plan_acquisitions(8, 1_000_000, 10_000, ResourceBudget::new(1 << 20))?;
/// assert!(plan.points_per_pass >= 2);
/// assert!(plan.passes * plan.points_per_pass >= 8);
/// # Ok(())
/// # }
/// ```
pub fn plan_acquisitions(
    points: usize,
    samples: usize,
    nfft: usize,
    budget: ResourceBudget,
) -> Result<TestPlan, SocError> {
    if points == 0 {
        return Err(SocError::InvalidParameter {
            name: "points",
            reason: "need at least one test point",
        });
    }
    let per_point = one_bit_usage(samples, nfft);
    // Shared FFT buffer + per-point hot/cold records.
    let fft_buffer = per_point.peak_memory_bytes - 2 * per_point.record_bytes;
    let per_point_records = 2 * per_point.record_bytes;
    if fft_buffer + per_point_records > budget.memory_bytes() {
        return Err(SocError::BudgetExceeded {
            requested_bytes: fft_buffer + per_point_records,
            budget_bytes: budget.memory_bytes(),
        });
    }
    let concurrent = ((budget.memory_bytes() - fft_buffer) / per_point_records).max(1);
    let points_per_pass = concurrent.min(points);
    let passes = points.div_ceil(points_per_pass);
    Ok(TestPlan {
        points_per_pass,
        passes,
        pass_memory_bytes: fft_buffer + points_per_pass * per_point_records,
        per_point,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(plan_acquisitions(0, 1000, 100, ResourceBudget::new(1 << 20)).is_err());
        // A budget smaller than one point's needs is rejected with the
        // numbers attached.
        let err = plan_acquisitions(1, 1_000_000, 10_000, ResourceBudget::new(1_000));
        assert!(matches!(err, Err(SocError::BudgetExceeded { .. })));
    }

    #[test]
    fn single_point_fits_one_pass() {
        let plan =
            plan_acquisitions(1, 1_000_000, 10_000, ResourceBudget::new(512 * 1024)).unwrap();
        assert_eq!(plan.points_per_pass, 1);
        assert_eq!(plan.passes, 1);
        assert!(plan.pass_memory_bytes <= 512 * 1024);
    }

    #[test]
    fn bigger_budget_means_fewer_passes() {
        let small =
            plan_acquisitions(16, 1_000_000, 10_000, ResourceBudget::new(512 * 1024)).unwrap();
        let large = plan_acquisitions(16, 1_000_000, 10_000, ResourceBudget::new(8 << 20)).unwrap();
        assert!(large.passes < small.passes, "{large:?} vs {small:?}");
        assert!(large.points_per_pass > small.points_per_pass);
        assert!(large.total_points() >= 16);
    }

    #[test]
    fn pass_memory_never_exceeds_budget() {
        for budget_kb in [300usize, 512, 1024, 4096] {
            let budget = ResourceBudget::new(budget_kb * 1024);
            if let Ok(plan) = plan_acquisitions(32, 1_000_000, 10_000, budget) {
                assert!(
                    plan.pass_memory_bytes <= budget.memory_bytes(),
                    "budget {budget_kb} kB: {plan:?}"
                );
                assert!(plan.points_per_pass * plan.passes >= 32);
            }
        }
    }

    #[test]
    fn concurrency_capped_at_point_count() {
        let plan = plan_acquisitions(2, 10_000, 1_000, ResourceBudget::new(64 << 20)).unwrap();
        assert_eq!(plan.points_per_pass, 2);
        assert_eq!(plan.passes, 1);
    }
}
