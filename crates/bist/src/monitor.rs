//! Continuous in-field monitoring: an unbounded acquisition pipeline
//! feeding a forgetting-window NF time series and a CUSUM drift
//! detector.
//!
//! A production screen ([`crate::screening`]) asks *"is this part good
//! right now?"* once. A fielded part keeps aging — temperature
//! excursions, parametric drift, latent defects activating — and the
//! paper's 1-bit BIST cell is cheap enough to leave **on** for the
//! whole mission. [`MonitorSession`] models that mission: the familiar
//! source → DUT → conditioning → digitizer pipeline runs continuously
//! at a bounded memory footprint, a windowed estimator
//! ([`nfbist_core::streaming::WindowedRatioAccumulator`]) keeps a
//! *current-window* noise-figure estimate with a matching delta-method
//! sigma, and a one-sided CUSUM statistic over the z-scored NF series
//! turns that time series into a typed, deterministic [`AlarmEvent`]
//! timeline.
//!
//! Determinism is the load-bearing property: the timeline is a pure
//! function of `(seed, drift profile, window config)`. Every pipeline
//! stage is chunk-invariant, emissions happen at absolute sample
//! offsets, and the CUSUM recursion is plain `f64` arithmetic — so the
//! identical bits come out for any streaming chunk size, any worker
//! count in the fleet fan-out, and any memory budget. The
//! `monitor_determinism` integration tests pin this down with
//! `f64::to_bits` equality.
//!
//! # Detector
//!
//! After `warmup` emissions the monitor freezes a baseline `b` (the
//! mean of the warm-up NF estimates — learned, not analytic, so a
//! biased-but-stable estimator does not poison the statistic) and
//! emits [`AlarmKind::WarmupComplete`]. From then on each emission
//! forms `z = (NF − b)/σ` and folds it into the one-sided CUSUM
//! `S⁺ ← max(0, S⁺ + f·(z − k))`; `S⁺` crossing the threshold `h`
//! from below raises [`AlarmKind::DriftAlarm`].
//!
//! The freshness factor `f` is what makes the recursion honest under
//! overlap: consecutive windows share most of their samples when the
//! emission stride is shorter than the window span, so their z-scores
//! are strongly correlated and an unscaled CUSUM would count the same
//! evidence many times over. `f = fresh / window` (new estimator
//! samples since the last emission over the samples in the window,
//! clamped to 1) weights each emission by the fraction of genuinely
//! new information it carries — emitting 4× faster neither inflates
//! nor starves the statistic. The drift allowance `k` (in sigmas,
//! default 0.5) absorbs in-family noise and residual baseline error;
//! the threshold `h` (default 8) sets the false-alarm rate, with
//! expected detection delay ≈ `h / (f·(δ − k))` emissions for a true
//! shift of `δ` sigmas (see THEORY §5). An optional absolute limit adds
//! [`AlarmKind::LimitViolation`] when the NF estimate itself crosses
//! it — the "part is now out of spec" event, distinct from the
//! earlier "part is drifting" warning.

use crate::session::MeasurementSession;
use crate::setup::BistSetup;
use crate::SocError;
use nfbist_analog::converter::Digitizer;
use nfbist_analog::dut::Dut;
use nfbist_analog::noise::NoiseSourceState;
use nfbist_core::power_ratio::PowerRatioEstimator;
use nfbist_core::streaming::{windowed_nf_point, EstimatorWindow};

/// What a monitor emission event reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlarmKind {
    /// The warm-up window closed and the baseline froze; drift and
    /// limit checks are armed from this emission on.
    WarmupComplete,
    /// The one-sided CUSUM statistic crossed its threshold from below:
    /// the NF series has drifted up relative to the frozen baseline.
    DriftAlarm,
    /// The windowed NF estimate crossed the configured absolute limit
    /// from below.
    LimitViolation,
}

impl AlarmKind {
    /// A stable small integer for signature/ordering purposes.
    pub const fn code(self) -> u8 {
        match self {
            AlarmKind::WarmupComplete => 0,
            AlarmKind::DriftAlarm => 1,
            AlarmKind::LimitViolation => 2,
        }
    }
}

impl std::fmt::Display for AlarmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlarmKind::WarmupComplete => write!(f, "warmup-complete"),
            AlarmKind::DriftAlarm => write!(f, "drift-alarm"),
            AlarmKind::LimitViolation => write!(f, "limit-violation"),
        }
    }
}

/// One event on the monitor's alarm timeline. Alarms are
/// **transition-based**: a drift alarm fires when the CUSUM crosses
/// `h` from below (not on every emission it stays above), and a limit
/// violation fires when the NF estimate crosses the limit from below.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlarmEvent {
    /// What happened.
    pub kind: AlarmKind,
    /// 1-based emission index the event fired at.
    pub emission: usize,
    /// Absolute source-sample offset of the emission.
    pub sample_index: usize,
    /// The windowed NF estimate at the event, in dB.
    pub nf_db: f64,
    /// The delta-method sigma of that estimate, in dB.
    pub sigma_db: f64,
    /// The CUSUM statistic after folding in this emission.
    pub cusum: f64,
}

/// One emission point of the monitored NF time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorPoint {
    /// 1-based emission index.
    pub emission: usize,
    /// Absolute source-sample offset of the emission.
    pub sample_index: usize,
    /// Windowed NF estimate in dB.
    pub nf_db: f64,
    /// Delta-method sigma of the estimate in dB at the current window
    /// depth.
    pub sigma_db: f64,
    /// Effective independent samples the sigma was computed at.
    pub n_effective: usize,
    /// The one-sided CUSUM statistic after this emission (0 during
    /// warm-up).
    pub cusum: f64,
}

/// The complete outcome of one monitoring mission: the NF time series,
/// the alarm timeline, and bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorReport {
    points: Vec<MonitorPoint>,
    events: Vec<AlarmEvent>,
    baseline_db: Option<f64>,
    skipped_emissions: usize,
    horizon: usize,
}

impl MonitorReport {
    /// The emitted NF time series, in emission order.
    pub fn points(&self) -> &[MonitorPoint] {
        &self.points
    }

    /// The alarm timeline, in emission order.
    pub fn events(&self) -> &[AlarmEvent] {
        &self.events
    }

    /// The frozen warm-up baseline in dB (`None` when the mission
    /// ended before warm-up completed).
    pub fn baseline_db(&self) -> Option<f64> {
        self.baseline_db
    }

    /// Emissions whose snapshot could not form an estimate yet (window
    /// still filling, degenerate ratio) and were skipped.
    pub fn skipped_emissions(&self) -> usize {
        self.skipped_emissions
    }

    /// The mission length in source samples.
    pub fn horizon_samples(&self) -> usize {
        self.horizon
    }

    /// The first event of a given kind, if any.
    pub fn first_event(&self, kind: AlarmKind) -> Option<&AlarmEvent> {
        self.events.iter().find(|e| e.kind == kind)
    }

    /// The exact bit content of the alarm timeline: `(kind code,
    /// sample index, NF bits, CUSUM bits)` per event. Two reports with
    /// equal signatures raised bit-identical alarms at identical
    /// mission points — the form the determinism tests compare.
    pub fn alarm_signature(&self) -> Vec<(u8, usize, u64, u64)> {
        self.events
            .iter()
            .map(|e| {
                (
                    e.kind.code(),
                    e.sample_index,
                    e.nf_db.to_bits(),
                    e.cusum.to_bits(),
                )
            })
            .collect()
    }

    /// The exact bit content of the NF series: `(sample index, NF
    /// bits, sigma bits)` per emission point.
    pub fn series_signature(&self) -> Vec<(usize, u64, u64)> {
        self.points
            .iter()
            .map(|p| (p.sample_index, p.nf_db.to_bits(), p.sigma_db.to_bits()))
            .collect()
    }
}

/// A continuous monitoring mission over one DUT; see the module docs.
///
/// Wraps a [`MeasurementSession`] (same DUT/digitizer/estimator axes,
/// same seeding, same chunk-invariant streaming pipeline) and adds the
/// monitoring configuration: the estimator window, the emission
/// cadence, the mission horizon, and the CUSUM detector parameters.
///
/// # Examples
///
/// ```
/// use nfbist_core::streaming::EstimatorWindow;
/// use nfbist_soc::monitor::{AlarmKind, MonitorSession};
/// use nfbist_soc::setup::BistSetup;
///
/// # fn main() -> Result<(), nfbist_soc::SocError> {
/// let mut setup = BistSetup::quick(11);
/// setup.samples = 1 << 15;
/// setup.nfft = 1_024;
/// let report = MonitorSession::new(setup)?
///     .window(EstimatorWindow::Sliding { segments: 8 })
///     .warmup(4)
///     .run()?;
/// // A healthy part completes warm-up and raises no drift alarm.
/// assert!(report.first_event(AlarmKind::WarmupComplete).is_some());
/// assert!(report.first_event(AlarmKind::DriftAlarm).is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MonitorSession {
    session: MeasurementSession,
    window: EstimatorWindow,
    emission_stride: usize,
    horizon: usize,
    warmup_emissions: usize,
    cusum_k: f64,
    cusum_h: f64,
    nf_limit_db: Option<f64>,
}

impl MonitorSession {
    /// Starts a monitor from a validated setup with the session
    /// defaults (paper DUT, 1-bit front-end and estimator) and the
    /// monitoring defaults: an 8-segment sliding window, one emission
    /// per `nfft` source samples, a mission horizon of `setup.samples`,
    /// 8 warm-up emissions, and a CUSUM detector with allowance
    /// `k = 0.5` and threshold `h = 8`.
    ///
    /// # Errors
    ///
    /// Propagates [`BistSetup::validate`] failures and component
    /// construction errors.
    pub fn new(setup: BistSetup) -> Result<Self, SocError> {
        let stride = setup.nfft;
        let horizon = setup.samples;
        Ok(MonitorSession {
            session: MeasurementSession::new(setup)?,
            window: EstimatorWindow::Sliding { segments: 8 },
            emission_stride: stride,
            horizon,
            warmup_emissions: 8,
            cusum_k: 0.5,
            cusum_h: 8.0,
            nf_limit_db: None,
        })
    }

    /// Selects the device under test (a
    /// [`nfbist_analog::fault::DriftingDut`] makes the mission
    /// interesting).
    pub fn dut(mut self, dut: impl Dut + 'static) -> Self {
        self.session = self.session.dut(dut);
        self
    }

    /// Selects the acquisition front-end.
    pub fn digitizer(mut self, digitizer: impl Digitizer + 'static) -> Self {
        self.session = self.session.digitizer(digitizer);
        self
    }

    /// Selects the power-ratio estimator; it must support windowed
    /// accumulation ([`PowerRatioEstimator::windowed`]), which all
    /// three Table 2 estimators do.
    pub fn estimator(mut self, estimator: impl PowerRatioEstimator + 'static) -> Self {
        self.session = self.session.estimator(estimator);
        self
    }

    /// Caps the pipeline's transient memory; see
    /// [`MeasurementSession::memory_budget`]. The monitor always runs
    /// the chunked pipeline — the budget only sizes the chunk.
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.session = self.session.memory_budget(bytes);
        self
    }

    /// Overrides the streaming chunk length in samples (a test hook
    /// for proving chunk-size invariance).
    pub fn streaming_chunk_len(mut self, samples: usize) -> Self {
        self.session = self.session.streaming_chunk_len(samples);
        self
    }

    /// Sets the estimator window policy (builder style).
    pub fn window(mut self, window: EstimatorWindow) -> Self {
        self.window = window;
        self
    }

    /// Sets the emission cadence in source samples (builder style).
    pub fn emission_stride(mut self, samples: usize) -> Self {
        self.emission_stride = samples;
        self
    }

    /// Sets the mission length in source samples (builder style). The
    /// horizon is independent of `setup.samples` — a monitor outlives
    /// any single screening acquisition.
    pub fn horizon(mut self, samples: usize) -> Self {
        self.horizon = samples;
        self
    }

    /// Sets the number of warm-up emissions the baseline is learned
    /// over (builder style). Alarms are suppressed during warm-up.
    pub fn warmup(mut self, emissions: usize) -> Self {
        self.warmup_emissions = emissions;
        self
    }

    /// Sets the CUSUM drift allowance `k` and alarm threshold `h`,
    /// both in baseline sigmas (builder style).
    pub fn cusum(mut self, k: f64, h: f64) -> Self {
        self.cusum_k = k;
        self.cusum_h = h;
        self
    }

    /// Arms an absolute NF limit in dB: crossing it from below raises
    /// [`AlarmKind::LimitViolation`] (builder style).
    pub fn nf_limit_db(mut self, limit: f64) -> Self {
        self.nf_limit_db = Some(limit);
        self
    }

    /// The wrapped measurement session.
    pub fn session(&self) -> &MeasurementSession {
        &self.session
    }

    /// The estimator window policy.
    pub fn window_policy(&self) -> EstimatorWindow {
        self.window
    }

    /// The emission cadence in source samples.
    pub fn emission_stride_samples(&self) -> usize {
        self.emission_stride
    }

    /// The mission length in source samples.
    pub fn horizon_samples(&self) -> usize {
        self.horizon
    }

    /// The number of warm-up emissions.
    pub fn warmup_emissions(&self) -> usize {
        self.warmup_emissions
    }

    /// The CUSUM drift allowance in sigmas.
    pub fn cusum_k(&self) -> f64 {
        self.cusum_k
    }

    /// The CUSUM alarm threshold in sigmas.
    pub fn cusum_h(&self) -> f64 {
        self.cusum_h
    }

    /// The armed absolute NF limit in dB, if any.
    pub fn nf_limit(&self) -> Option<f64> {
        self.nf_limit_db
    }

    /// The band-limiting fraction `2B/fs` the sigma model scales raw
    /// window samples by — the share of samples that count as
    /// independent given the analysis band (clamped to 1). Used for
    /// all three estimators so their sigmas are comparable.
    pub fn effective_fraction(&self) -> f64 {
        let setup = self.session.setup();
        let width = setup.noise_band.1 - setup.noise_band.0;
        (2.0 * width / setup.sample_rate).min(1.0)
    }

    fn validate(&self) -> Result<(), SocError> {
        self.window.validate()?;
        if self.emission_stride == 0 {
            return Err(SocError::InvalidParameter {
                name: "emission_stride",
                reason: "emission cadence must be at least one sample",
            });
        }
        if self.horizon < self.emission_stride {
            return Err(SocError::InvalidParameter {
                name: "horizon",
                reason: "mission must span at least one emission stride",
            });
        }
        if self.warmup_emissions == 0 {
            return Err(SocError::InvalidParameter {
                name: "warmup",
                reason: "the baseline needs at least one warm-up emission",
            });
        }
        if !(self.cusum_k >= 0.0 && self.cusum_k.is_finite()) {
            return Err(SocError::InvalidParameter {
                name: "cusum_k",
                reason: "drift allowance must be finite and non-negative",
            });
        }
        if !(self.cusum_h > 0.0 && self.cusum_h.is_finite()) {
            return Err(SocError::InvalidParameter {
                name: "cusum_h",
                reason: "alarm threshold must be finite and positive",
            });
        }
        Ok(())
    }

    /// Runs the mission: advances both source-state chains emission by
    /// emission, snapshots the windowed estimator at each absolute
    /// stride multiple, and folds the NF series through the CUSUM
    /// detector into the alarm timeline.
    ///
    /// The timeline is a pure function of `(seed, DUT drift profile,
    /// window/detector config)` — bit-identical across streaming chunk
    /// sizes and memory budgets, which is what makes fleet-level
    /// fan-out free of scheduling artifacts.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidParameter`] for an out-of-domain
    /// monitor configuration or an estimator without windowed support,
    /// and propagates pipeline errors. Emissions whose snapshot cannot
    /// form an estimate yet (window still filling) are counted as
    /// skipped, not errors.
    pub fn run(&self) -> Result<MonitorReport, SocError> {
        self.validate()?;
        let windowed =
            self.session
                .estimator_ref()
                .windowed()
                .ok_or(SocError::InvalidParameter {
                    name: "estimator",
                    reason: "the selected estimator does not support windowed accumulation",
                })?;
        let mut acc = windowed.begin_windowed(self.window)?;
        let gain = self.session.frontend_gain()?;
        let mut hot = self
            .session
            .begin_state_chain(NoiseSourceState::Hot, 0, gain)?;
        let mut cold = self
            .session
            .begin_state_chain(NoiseSourceState::Cold, 0, gain)?;
        let chunk = self.session.streaming_chunk_samples();
        let setup = self.session.setup();
        let (hot_kelvin, cold_kelvin) = (setup.hot_kelvin, setup.cold_kelvin);
        let fraction = self.effective_fraction();

        let emissions = self.horizon / self.emission_stride;
        let mut points = Vec::with_capacity(emissions);
        let mut events = Vec::new();
        let mut skipped = 0usize;
        let mut warm_sum = 0.0;
        let mut warm_count = 0usize;
        let mut baseline: Option<f64> = None;
        let mut cusum = 0.0f64;
        let mut drift_high = false;
        let mut limit_high = false;
        // Estimator samples pushed so far / at the previous processed
        // emission — the freshness factor's numerator (see module docs).
        let mut pushed = 0usize;
        let mut prev_pushed = 0usize;

        for emission in 1..=emissions {
            let target = emission * self.emission_stride;
            hot.advance_to(target, chunk, &mut |s| {
                pushed += s.len();
                acc.push_hot(s)
            })?;
            cold.advance_to(target, chunk, &mut |s| acc.push_cold(s))?;
            let point = match windowed_nf_point(&*acc, hot_kelvin, cold_kelvin, fraction) {
                Ok(p) if p.sigma_db.is_finite() && p.sigma_db > 0.0 => p,
                _ => {
                    skipped += 1;
                    continue;
                }
            };
            match baseline {
                None => {
                    // Warm-up: accumulate the baseline, suppress alarms.
                    warm_sum += point.nf_db;
                    warm_count += 1;
                    points.push(MonitorPoint {
                        emission,
                        sample_index: target,
                        nf_db: point.nf_db,
                        sigma_db: point.sigma_db,
                        n_effective: point.n_effective,
                        cusum: 0.0,
                    });
                    if warm_count == self.warmup_emissions {
                        baseline = Some(warm_sum / warm_count as f64);
                        prev_pushed = pushed;
                        events.push(AlarmEvent {
                            kind: AlarmKind::WarmupComplete,
                            emission,
                            sample_index: target,
                            nf_db: point.nf_db,
                            sigma_db: point.sigma_db,
                            cusum: 0.0,
                        });
                    }
                }
                Some(base) => {
                    let fresh = (pushed - prev_pushed) as f64;
                    prev_pushed = pushed;
                    let freshness = (fresh / acc.effective_samples()).min(1.0);
                    let z = (point.nf_db - base) / point.sigma_db;
                    cusum = (cusum + freshness * (z - self.cusum_k)).max(0.0);
                    points.push(MonitorPoint {
                        emission,
                        sample_index: target,
                        nf_db: point.nf_db,
                        sigma_db: point.sigma_db,
                        n_effective: point.n_effective,
                        cusum,
                    });
                    let now_high = cusum > self.cusum_h;
                    if now_high && !drift_high {
                        events.push(AlarmEvent {
                            kind: AlarmKind::DriftAlarm,
                            emission,
                            sample_index: target,
                            nf_db: point.nf_db,
                            sigma_db: point.sigma_db,
                            cusum,
                        });
                    }
                    drift_high = now_high;
                    if let Some(limit) = self.nf_limit_db {
                        let now_over = point.nf_db > limit;
                        if now_over && !limit_high {
                            events.push(AlarmEvent {
                                kind: AlarmKind::LimitViolation,
                                emission,
                                sample_index: target,
                                nf_db: point.nf_db,
                                sigma_db: point.sigma_db,
                                cusum,
                            });
                        }
                        limit_high = now_over;
                    }
                }
            }
        }

        Ok(MonitorReport {
            points,
            events,
            baseline_db: baseline,
            skipped_emissions: skipped,
            horizon: self.horizon,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfbist_analog::converter::AdcDigitizer;
    use nfbist_analog::fault::{AnalogFault, DriftSchedule, DriftingDut};
    use nfbist_analog::opamp::OpampModel;
    use nfbist_analog::units::Ohms;
    use nfbist_core::power_ratio::PsdRatioEstimator;

    fn amp() -> nfbist_analog::circuits::NonInvertingAmplifier {
        nfbist_analog::circuits::NonInvertingAmplifier::new(
            OpampModel::op27(),
            Ohms::new(10_000.0),
            Ohms::new(100.0),
        )
        .unwrap()
    }

    fn psd_monitor(seed: u64) -> MonitorSession {
        let mut setup = BistSetup::quick(seed);
        setup.samples = 1 << 15;
        setup.nfft = 1_024;
        let est = PsdRatioEstimator::new(setup.sample_rate, setup.nfft, setup.noise_band).unwrap();
        MonitorSession::new(setup)
            .unwrap()
            .dut(amp())
            .digitizer(AdcDigitizer::new(12).unwrap())
            .estimator(est)
            .window(EstimatorWindow::Sliding { segments: 8 })
            .warmup(4)
    }

    #[test]
    fn healthy_mission_completes_warmup_and_stays_quiet() {
        let report = psd_monitor(3).run().unwrap();
        assert!(report.baseline_db().unwrap().is_finite());
        let warm = report.first_event(AlarmKind::WarmupComplete).unwrap();
        assert_eq!(warm.cusum, 0.0);
        assert!(report.first_event(AlarmKind::DriftAlarm).is_none());
        assert!(report.first_event(AlarmKind::LimitViolation).is_none());
        assert!(report.points().len() > 8);
        // Every point sits at an absolute stride multiple.
        for p in report.points() {
            assert_eq!(p.sample_index % 1_024, 0);
            assert!(p.sigma_db > 0.0);
        }
    }

    #[test]
    fn timeline_is_bit_identical_across_chunk_sizes_and_budgets() {
        let reference = psd_monitor(9).run().unwrap();
        for session in [
            psd_monitor(9).streaming_chunk_len(997),
            psd_monitor(9).streaming_chunk_len(4_096),
            psd_monitor(9).memory_budget(1 << 16),
        ] {
            let other = session.run().unwrap();
            assert_eq!(other.alarm_signature(), reference.alarm_signature());
            assert_eq!(other.series_signature(), reference.series_signature());
            assert_eq!(
                other.baseline_db().map(f64::to_bits),
                reference.baseline_db().map(f64::to_bits)
            );
        }
    }

    #[test]
    fn step_drift_raises_the_alarm_after_onset() {
        let onset = 12_000usize;
        let drifting = DriftingDut::new(amp(), DriftSchedule::Step { at: onset })
            .unwrap()
            .with_fault(AnalogFault::ExcessNoise { factor: 8.0 })
            .unwrap();
        let report = psd_monitor(5)
            .dut(drifting)
            .horizon(1 << 15)
            .nf_limit_db(30.0)
            .run()
            .unwrap();
        let alarm = report
            .first_event(AlarmKind::DriftAlarm)
            .expect("an 8x excess-noise step must trip the CUSUM");
        assert!(
            alarm.sample_index > onset,
            "alarm at {} cannot precede the defect at {onset}",
            alarm.sample_index
        );
        // No false alarm while the part was still healthy.
        let healthy_points = report
            .points()
            .iter()
            .filter(|p| p.sample_index <= onset)
            .count();
        assert!(healthy_points > 0);
        assert!(report
            .points()
            .iter()
            .take_while(|p| p.sample_index <= onset)
            .all(|p| p.cusum <= 8.0));
    }

    #[test]
    fn configuration_is_validated() {
        assert!(matches!(
            psd_monitor(1).emission_stride(0).run(),
            Err(SocError::InvalidParameter {
                name: "emission_stride",
                ..
            })
        ));
        assert!(matches!(
            psd_monitor(1).horizon(10).run(),
            Err(SocError::InvalidParameter {
                name: "horizon",
                ..
            })
        ));
        assert!(matches!(
            psd_monitor(1).warmup(0).run(),
            Err(SocError::InvalidParameter { name: "warmup", .. })
        ));
        assert!(matches!(
            psd_monitor(1).cusum(-1.0, 8.0).run(),
            Err(SocError::InvalidParameter {
                name: "cusum_k",
                ..
            })
        ));
        assert!(matches!(
            psd_monitor(1).cusum(0.5, 0.0).run(),
            Err(SocError::InvalidParameter {
                name: "cusum_h",
                ..
            })
        ));
        assert!(matches!(
            psd_monitor(1)
                .window(EstimatorWindow::Forgetting { lambda: 1.5 })
                .run(),
            Err(SocError::Core(_))
        ));
    }

    #[test]
    fn forgetting_window_monitor_runs_too() {
        let report = psd_monitor(7)
            .window(EstimatorWindow::Forgetting { lambda: 0.8 })
            .run()
            .unwrap();
        assert!(report.baseline_db().is_some());
        assert!(report.first_event(AlarmKind::DriftAlarm).is_none());
    }
}
