//! Simultaneous observation of several analog test points.
//!
//! Paper §4.3: because the digitizer is a single comparator, it "can be
//! permanently connected to the analog test point", and several test
//! points can be observed *simultaneously* — unlike the shared-ADC
//! setup, which must multiplex. This module models a cascade of
//! amplifier stages with one BIST cell per stage output and measures
//! every point's cumulative noise figure from a single pair of
//! hot/cold acquisitions.

use crate::setup::BistSetup;
use crate::SocError;
use nfbist_analog::circuits::{friis_noise_factor, CascadeStage};
use nfbist_analog::converter::OneBitDigitizer;
use nfbist_analog::dut::Dut;
use nfbist_analog::noise::{CalibratedNoiseSource, NoiseSourceState};
use nfbist_analog::source::{SineSource, Waveform};
use nfbist_analog::units::Kelvin;
use nfbist_core::estimator::{NfMeasurement, OneBitNfEstimator};
use nfbist_core::power_ratio::OneBitPowerRatio;

/// Result for one observed test point.
#[derive(Debug, Clone)]
pub struct PointMeasurement {
    /// Index of the stage whose output this point taps (0-based).
    pub stage: usize,
    /// Measured cumulative noise figure up to this point.
    pub nf: NfMeasurement,
    /// Friis expectation for the cumulative cascade up to this point.
    pub expected_nf_db: f64,
}

/// A cascade of [`Dut`] stages with a permanently attached digitizer
/// at every stage output. Stages may be heterogeneous — any `Dut`
/// implementor can sit at any position.
///
/// # Examples
///
/// ```no_run
/// use nfbist_analog::circuits::NonInvertingAmplifier;
/// use nfbist_analog::dut::Dut;
/// use nfbist_analog::opamp::OpampModel;
/// use nfbist_analog::units::Ohms;
/// use nfbist_soc::multipoint::MultipointBist;
/// use nfbist_soc::setup::BistSetup;
///
/// # fn main() -> Result<(), nfbist_soc::SocError> {
/// let stage = |m| NonInvertingAmplifier::new(m, Ohms::new(1_000.0), Ohms::new(1_000.0));
/// let cascade: Vec<Box<dyn Dut>> = vec![
///     Box::new(stage(OpampModel::op27())?),
///     Box::new(stage(OpampModel::tl081())?),
/// ];
/// let bist = MultipointBist::new(BistSetup::quick(1), cascade)?;
/// let points = bist.measure_all()?;
/// assert_eq!(points.len(), 2);
/// # Ok(())
/// # }
/// ```
pub struct MultipointBist {
    setup: BistSetup,
    stages: Vec<Box<dyn Dut>>,
    digitizer: OneBitDigitizer,
}

impl std::fmt::Debug for MultipointBist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultipointBist")
            .field("setup", &self.setup)
            .field(
                "stages",
                &self.stages.iter().map(|s| s.label()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl MultipointBist {
    /// Builds the multipoint tester over a cascade of stages.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidParameter`] for an empty cascade and
    /// propagates setup validation.
    pub fn new(setup: BistSetup, stages: Vec<Box<dyn Dut>>) -> Result<Self, SocError> {
        setup.validate()?;
        if stages.is_empty() {
            return Err(SocError::InvalidParameter {
                name: "stages",
                reason: "cascade needs at least one stage",
            });
        }
        Ok(MultipointBist {
            setup,
            stages,
            digitizer: OneBitDigitizer::ideal(),
        })
    }

    /// Number of observed test points.
    pub fn points(&self) -> usize {
        self.stages.len()
    }

    /// The measurement setup.
    pub fn setup(&self) -> &BistSetup {
        &self.setup
    }

    /// Friis expectation of the cumulative noise figure at stage `i`'s
    /// output.
    ///
    /// # Errors
    ///
    /// Propagates analysis errors; [`SocError::InvalidParameter`] for
    /// an out-of-range index.
    pub fn expected_nf_db(&self, point: usize) -> Result<f64, SocError> {
        if point >= self.stages.len() {
            return Err(SocError::InvalidParameter {
                name: "point",
                reason: "test point index out of range",
            });
        }
        // `validate` guarantees f_lo > 0, so the band is usable for
        // the 1/f-aware expectation integral as-is.
        let band = self.setup.noise_band;
        let mut cascade = Vec::with_capacity(point + 1);
        // First stage sees the source resistance; later stages see the
        // previous stage's (low) output impedance — approximate with
        // the same Rs for the noise analysis denominator, which keeps
        // every stage's F defined against the same reference.
        for stage in &self.stages[..=point] {
            let f = stage.expected_noise_factor(self.setup.source_resistance, band.0, band.1)?;
            cascade.push(CascadeStage::new(f, stage.gain() * stage.gain())?);
        }
        let f_total = friis_noise_factor(&cascade)?;
        Ok(10.0 * f_total.log10())
    }

    /// Acquires one record per test point for a given source state —
    /// all points observe the *same* physical noise realization, which
    /// is exactly what the simultaneous-observation argument promises.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn acquire_all(
        &self,
        state: NoiseSourceState,
    ) -> Result<Vec<nfbist_analog::bitstream::Bitstream>, SocError> {
        let n = self.setup.samples;
        let fs = self.setup.sample_rate;
        let mut src = CalibratedNoiseSource::new(
            Kelvin::new(self.setup.hot_kelvin),
            Kelvin::new(self.setup.cold_kelvin),
            self.setup.source_resistance,
            self.setup.seed ^ 0x5151_5151,
        )?;
        if state == NoiseSourceState::Cold {
            let _ = src.generate(state, 1, fs)?;
        }
        let mut signal = src.generate(state, n, fs)?;

        let mut records = Vec::with_capacity(self.stages.len());
        for (i, stage) in self.stages.iter().enumerate() {
            let salt = (i as u64 + 1).wrapping_mul(match state {
                NoiseSourceState::Hot => 0x1234_5678,
                NoiseSourceState::Cold => 0x8765_4321,
            });
            signal = stage.process(
                &signal,
                self.setup.source_resistance,
                fs,
                self.setup.seed.wrapping_add(salt),
            )?;
            // Per-point reference scaling: each BIST cell attenuates the
            // shared reference to the configured fraction of its local
            // cold noise RMS (modelled analytically).
            let local_rms = self.local_cold_rms(i)?;
            let reference = SineSource::new(
                self.setup.reference_frequency,
                self.setup.reference_fraction * local_rms,
            )?
            .generate(n, fs)?;
            records.push(self.digitizer.digitize(&signal, &reference)?);
        }
        Ok(records)
    }

    /// Analytic cold-state noise RMS at stage `i`'s output.
    fn local_cold_rms(&self, point: usize) -> Result<f64, SocError> {
        let nyquist = self.setup.sample_rate / 2.0;
        let mut density = 4.0
            * nfbist_analog::constants::BOLTZMANN
            * self.setup.cold_kelvin
            * self.setup.source_resistance.value();
        for stage in &self.stages[..=point] {
            let added =
                stage.mean_added_noise_density_sq(self.setup.source_resistance, 1.0, nyquist)?;
            density = (density + added) * stage.gain() * stage.gain();
        }
        Ok((density * nyquist).sqrt())
    }

    /// Builds the setup-matched NF estimator every test point shares.
    /// Construct it **once** per run and pass it to each
    /// [`MultipointBist::measure_point`] call: the estimator caches its
    /// Welch FFT plan and scratch internally, and supports concurrent
    /// callers, so one instance serves a whole (possibly parallel)
    /// multipoint sweep without re-planning per point.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors.
    pub fn estimator(&self) -> Result<OneBitNfEstimator, SocError> {
        let ratio = OneBitPowerRatio::new(
            self.setup.sample_rate,
            self.setup.nfft,
            self.setup.reference_frequency,
            self.setup.noise_band,
        )?;
        Ok(OneBitNfEstimator::new(
            ratio,
            self.setup.hot_kelvin,
            self.setup.cold_kelvin,
        )?)
    }

    /// Estimates the cumulative noise figure at one test point from its
    /// already-acquired hot/cold records, using a shared estimator from
    /// [`MultipointBist::estimator`]. Each point's estimation is
    /// independent of every other point's, which is what lets the batch
    /// runner in `nfbist-runtime` fan the points out across workers.
    ///
    /// # Errors
    ///
    /// Propagates estimation errors; [`SocError::InvalidParameter`] for
    /// an out-of-range index.
    pub fn measure_point(
        &self,
        estimator: &OneBitNfEstimator,
        point: usize,
        hot: &nfbist_analog::bitstream::Bitstream,
        cold: &nfbist_analog::bitstream::Bitstream,
    ) -> Result<PointMeasurement, SocError> {
        let (nf, _) = estimator.estimate(hot, cold)?;
        Ok(PointMeasurement {
            stage: point,
            nf,
            expected_nf_db: self.expected_nf_db(point)?,
        })
    }

    /// Measures the cumulative noise figure at every test point from
    /// one hot and one cold multi-point acquisition.
    ///
    /// # Errors
    ///
    /// Propagates acquisition and estimation errors.
    pub fn measure_all(&self) -> Result<Vec<PointMeasurement>, SocError> {
        let hot = self.acquire_all(NoiseSourceState::Hot)?;
        let cold = self.acquire_all(NoiseSourceState::Cold)?;
        let estimator = self.estimator()?;
        hot.iter()
            .zip(&cold)
            .enumerate()
            .map(|(i, (h, c))| self.measure_point(&estimator, i, h, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfbist_analog::circuits::NonInvertingAmplifier;
    use nfbist_analog::opamp::OpampModel;
    use nfbist_analog::units::Ohms;

    fn stage(opamp: OpampModel, rf: f64, rg: f64) -> Box<dyn Dut> {
        Box::new(NonInvertingAmplifier::new(opamp, Ohms::new(rf), Ohms::new(rg)).unwrap())
    }

    #[test]
    fn validation() {
        assert!(MultipointBist::new(BistSetup::quick(0), vec![]).is_err());
        let mut bad = BistSetup::quick(0);
        bad.samples = 0;
        assert!(MultipointBist::new(bad, vec![stage(OpampModel::op27(), 1e3, 1e3)]).is_err());
    }

    #[test]
    fn expected_nf_is_monotone_along_cascade_with_noisy_tail() {
        // A quiet first stage with modest gain followed by a noisy
        // stage: the cumulative NF at point 1 exceeds point 0.
        let bist = MultipointBist::new(
            BistSetup::quick(1),
            vec![
                stage(OpampModel::op27(), 1_000.0, 1_000.0), // gain 2
                stage(OpampModel::ca3140(), 10_000.0, 100.0),
            ],
        )
        .unwrap();
        let nf0 = bist.expected_nf_db(0).unwrap();
        let nf1 = bist.expected_nf_db(1).unwrap();
        assert!(nf1 > nf0, "{nf0} → {nf1}");
        assert!(bist.expected_nf_db(2).is_err());
        assert_eq!(bist.points(), 2);
    }

    #[test]
    fn high_gain_first_stage_masks_noisy_second() {
        // Friis through the BIST lens: with Av = 101 up front, the
        // CA3140 behind barely moves the cumulative NF.
        let bist = MultipointBist::new(
            BistSetup::quick(2),
            vec![
                stage(OpampModel::op27(), 10_000.0, 100.0), // gain 101
                stage(OpampModel::ca3140(), 10_000.0, 100.0),
            ],
        )
        .unwrap();
        let nf0 = bist.expected_nf_db(0).unwrap();
        let nf1 = bist.expected_nf_db(1).unwrap();
        assert!(nf1 - nf0 < 0.05, "masking failed: {nf0} → {nf1}");
    }

    #[test]
    fn simultaneous_measurement_of_two_points() {
        let bist = MultipointBist::new(
            BistSetup::quick(7),
            vec![
                stage(OpampModel::tl081(), 1_000.0, 1_000.0),
                stage(OpampModel::ca3140(), 1_000.0, 1_000.0),
            ],
        )
        .unwrap();
        let points = bist.measure_all().unwrap();
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(
                (p.nf.figure.db() - p.expected_nf_db).abs() < 2.0,
                "point {}: measured {:.2} vs expected {:.2}",
                p.stage,
                p.nf.figure.db(),
                p.expected_nf_db
            );
        }
        // Cumulative NF grows along this low-gain cascade.
        assert!(points[1].expected_nf_db > points[0].expected_nf_db);
    }

    #[test]
    fn heterogeneous_cascade_is_observable() {
        // The Dut trait at work: a noiseless behavioural gain block
        // sits between two op-amp stages, and every point still gets a
        // cumulative NF from the same acquisition pair.
        use nfbist_analog::component::Amplifier;
        let bist = MultipointBist::new(
            BistSetup::quick(4),
            vec![
                stage(OpampModel::op27(), 10_000.0, 100.0),
                Box::new(Amplifier::ideal(2.0).unwrap()),
                stage(OpampModel::ca3140(), 1_000.0, 1_000.0),
            ],
        )
        .unwrap();
        assert_eq!(bist.points(), 3);
        let points = bist.measure_all().unwrap();
        // A noiseless unity-NF stage behind gain 101 leaves the
        // cumulative expectation essentially unchanged.
        assert!(
            (points[1].expected_nf_db - points[0].expected_nf_db).abs() < 0.01,
            "{} vs {}",
            points[1].expected_nf_db,
            points[0].expected_nf_db
        );
        for p in &points {
            assert!(
                (p.nf.figure.db() - p.expected_nf_db).abs() < 2.0,
                "point {}: measured {:.2} vs expected {:.2}",
                p.stage,
                p.nf.figure.db(),
                p.expected_nf_db
            );
        }
    }
}
