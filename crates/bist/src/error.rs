use std::fmt;

/// Error type for the SoC BIST environment.
///
/// # Examples
///
/// ```
/// use nfbist_soc::setup::BistSetup;
///
/// let mut setup = BistSetup::paper_prototype(1);
/// setup.samples = 0;
/// assert!(setup.validate().is_err());
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SocError {
    /// A configuration value was invalid.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable constraint description.
        reason: &'static str,
    },
    /// An acquisition would not fit the SoC resource budget.
    BudgetExceeded {
        /// What was requested, in bytes.
        requested_bytes: usize,
        /// What the budget allows, in bytes.
        budget_bytes: usize,
    },
    /// A DSP-layer operation failed.
    Dsp(nfbist_dsp::DspError),
    /// An analog-layer operation failed.
    Analog(nfbist_analog::AnalogError),
    /// A core estimation failed.
    Core(nfbist_core::CoreError),
}

impl fmt::Display for SocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            SocError::BudgetExceeded {
                requested_bytes,
                budget_bytes,
            } => write!(
                f,
                "acquisition needs {requested_bytes} bytes but the budget is {budget_bytes}"
            ),
            SocError::Dsp(e) => write!(f, "dsp error: {e}"),
            SocError::Analog(e) => write!(f, "analog error: {e}"),
            SocError::Core(e) => write!(f, "estimation error: {e}"),
        }
    }
}

impl std::error::Error for SocError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SocError::Dsp(e) => Some(e),
            SocError::Analog(e) => Some(e),
            SocError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nfbist_dsp::DspError> for SocError {
    fn from(e: nfbist_dsp::DspError) -> Self {
        SocError::Dsp(e)
    }
}

impl From<nfbist_analog::AnalogError> for SocError {
    fn from(e: nfbist_analog::AnalogError) -> Self {
        SocError::Analog(e)
    }
}

impl From<nfbist_core::CoreError> for SocError {
    fn from(e: nfbist_core::CoreError) -> Self {
        SocError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = SocError::BudgetExceeded {
            requested_bytes: 100,
            budget_bytes: 10,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.source().is_none());
        let e = SocError::from(nfbist_core::CoreError::Degenerate { reason: "x" });
        assert!(e.source().is_some());
        let e = SocError::from(nfbist_dsp::DspError::EmptyInput { context: "x" });
        assert!(e.source().is_some());
        let e = SocError::from(nfbist_analog::AnalogError::EmptyInput { context: "x" });
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SocError>();
    }
}
