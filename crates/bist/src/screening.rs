//! Production-test screening: pass/fail decisions with guard bands.
//!
//! The paper's motivation is production test cost ("test costs must be
//! kept lower for the device to be competitive", §1). A BIST readout is
//! only useful on the line if its *uncertainty* is folded into the
//! limit: a DUT measured just under the NF limit may still be bad. This
//! module combines a measurement with the estimator's standard
//! deviation (from `nfbist_core::uncertainty`) into guard-banded
//! verdicts.

use crate::SocError;
use nfbist_core::estimator::NfMeasurement;
use nfbist_core::uncertainty;

/// A screening verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Confidently inside the limit (measured ≤ limit − guard).
    Pass,
    /// Confidently outside the limit (measured ≥ limit + guard).
    Fail,
    /// Within the guard band — re-test with a longer acquisition.
    Retest,
}

/// A guard-banded NF screening limit.
///
/// # Examples
///
/// ```
/// use nfbist_soc::screening::{Screen, Verdict};
/// use nfbist_core::estimator::NfMeasurement;
///
/// # fn main() -> Result<(), nfbist_soc::SocError> {
/// // Limit 10 dB, 3-sigma guard from a 100k-effective-sample record.
/// let screen = Screen::new(10.0, 3.0)?;
/// let m = NfMeasurement::from_y(3.0, 2_900.0, 290.0).expect("measurement");
/// let verdict = screen.judge(&m, 100_000)?;
/// assert!(matches!(verdict, Verdict::Pass | Verdict::Retest | Verdict::Fail));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Screen {
    limit_db: f64,
    sigma_multiple: f64,
}

impl Screen {
    /// Creates a screen at `limit_db` with a guard band of
    /// `sigma_multiple` estimator standard deviations.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidParameter`] for a negative limit or
    /// non-positive sigma multiple.
    pub fn new(limit_db: f64, sigma_multiple: f64) -> Result<Self, SocError> {
        if !(limit_db >= 0.0) || !limit_db.is_finite() {
            return Err(SocError::InvalidParameter {
                name: "limit_db",
                reason: "must be non-negative and finite",
            });
        }
        if !(sigma_multiple > 0.0) || !sigma_multiple.is_finite() {
            return Err(SocError::InvalidParameter {
                name: "sigma_multiple",
                reason: "must be positive and finite",
            });
        }
        Ok(Screen {
            limit_db,
            sigma_multiple,
        })
    }

    /// The NF limit in dB.
    pub fn limit_db(&self) -> f64 {
        self.limit_db
    }

    /// Guard band width in dB for a measurement taken with
    /// `n_effective` independent samples per record.
    ///
    /// # Errors
    ///
    /// Propagates uncertainty-model errors.
    pub fn guard_db(&self, m: &NfMeasurement, n_effective: usize) -> Result<f64, SocError> {
        let sigma = uncertainty::nf_std_from_record_length(m.factor, 2_900.0, 290.0, n_effective)?;
        Ok(self.sigma_multiple * sigma)
    }

    /// Judges a measurement against the limit with the guard band.
    ///
    /// # Errors
    ///
    /// Propagates uncertainty-model errors.
    pub fn judge(&self, m: &NfMeasurement, n_effective: usize) -> Result<Verdict, SocError> {
        let guard = self.guard_db(m, n_effective)?;
        let nf = m.figure.db();
        if nf <= self.limit_db - guard {
            Ok(Verdict::Pass)
        } else if nf >= self.limit_db + guard {
            Ok(Verdict::Fail)
        } else {
            Ok(Verdict::Retest)
        }
    }

    /// The smallest effective record length for which a DUT measured at
    /// `measured_db` would leave the retest band (in either direction),
    /// or `None` if it sits exactly on the limit (no record length
    /// resolves it).
    ///
    /// # Errors
    ///
    /// Propagates uncertainty-model errors.
    pub fn record_length_to_resolve(
        &self,
        m: &NfMeasurement,
        max_n: usize,
    ) -> Result<Option<usize>, SocError> {
        let mut n = 1_000usize;
        while n <= max_n {
            if self.judge(m, n)? != Verdict::Retest {
                return Ok(Some(n));
            }
            n *= 2;
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measurement(nf_db: f64) -> NfMeasurement {
        // Invert eq. 8 to find the Y that produces the requested NF.
        let f = nfbist_core::figure::NoiseFigure::from_db(nf_db)
            .unwrap()
            .to_factor();
        let y = nfbist_core::yfactor::expected_y(f, 2_900.0, 290.0).unwrap();
        NfMeasurement::from_y(y, 2_900.0, 290.0).unwrap()
    }

    #[test]
    fn validation() {
        assert!(Screen::new(-1.0, 3.0).is_err());
        assert!(Screen::new(10.0, 0.0).is_err());
        assert!(Screen::new(10.0, f64::NAN).is_err());
        assert!(Screen::new(10.0, 3.0).is_ok());
        assert_eq!(Screen::new(10.0, 3.0).unwrap().limit_db(), 10.0);
    }

    #[test]
    fn clear_pass_and_fail() {
        let screen = Screen::new(10.0, 3.0).unwrap();
        let quiet = measurement(5.0);
        let noisy = measurement(15.0);
        assert_eq!(screen.judge(&quiet, 100_000).unwrap(), Verdict::Pass);
        assert_eq!(screen.judge(&noisy, 100_000).unwrap(), Verdict::Fail);
    }

    #[test]
    fn marginal_dut_lands_in_retest_with_short_records() {
        let screen = Screen::new(10.0, 3.0).unwrap();
        let marginal = measurement(9.98);
        // Very short record → wide guard → retest.
        assert_eq!(screen.judge(&marginal, 200).unwrap(), Verdict::Retest);
    }

    #[test]
    fn longer_records_shrink_the_guard() {
        let screen = Screen::new(10.0, 3.0).unwrap();
        let m = measurement(9.5);
        let wide = screen.guard_db(&m, 1_000).unwrap();
        let narrow = screen.guard_db(&m, 1_000_000).unwrap();
        assert!(narrow < wide / 10.0, "{narrow} vs {wide}");
    }

    #[test]
    fn resolution_search_finds_a_length() {
        let screen = Screen::new(10.0, 3.0).unwrap();
        let m = measurement(9.7);
        let n = screen
            .record_length_to_resolve(&m, 1 << 30)
            .unwrap()
            .expect("0.3 dB margin is resolvable");
        // And the verdict at that length is indeed decisive.
        assert_ne!(screen.judge(&m, n).unwrap(), Verdict::Retest);
        // A DUT on the limit never resolves within the cap.
        let on_limit = measurement(10.0);
        assert_eq!(
            screen.record_length_to_resolve(&on_limit, 1 << 22).unwrap(),
            None
        );
    }
}
