//! Production-test screening: pass/fail decisions with guard bands.
//!
//! The paper's motivation is production test cost ("test costs must be
//! kept lower for the device to be competitive", §1). A BIST readout is
//! only useful on the line if its *uncertainty* is folded into the
//! limit: a DUT measured just under the NF limit may still be bad. This
//! module combines a measurement with the estimator's standard
//! deviation (from `nfbist_core::uncertainty`) into guard-banded
//! verdicts.

use crate::session::{derive_seed, MeasurementSession};
use crate::setup::BistSetup;
use crate::SocError;
use nfbist_analog::circuits::NonInvertingAmplifier;
use nfbist_analog::converter::OneBitDigitizer;
use nfbist_analog::dut::Dut;
use nfbist_analog::fault::{AnalogFault, BitFault, FaultyDigitizer, FaultyDut};
use nfbist_analog::opamp::OpampModel;
use nfbist_analog::units::Ohms;
use nfbist_core::estimator::NfMeasurement;
use nfbist_core::uncertainty;

/// A screening verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Confidently inside the limit (measured ≤ limit − guard).
    Pass,
    /// Confidently outside the limit (measured ≥ limit + guard).
    Fail,
    /// Within the guard band — re-test with a longer acquisition.
    Retest,
}

/// A guard-banded NF screening limit.
///
/// # Examples
///
/// ```
/// use nfbist_soc::screening::{Screen, Verdict};
/// use nfbist_core::estimator::NfMeasurement;
///
/// # fn main() -> Result<(), nfbist_soc::SocError> {
/// // Limit 10 dB, 3-sigma guard from a 100k-effective-sample record.
/// let screen = Screen::new(10.0, 3.0)?;
/// let m = NfMeasurement::from_y(3.0, 2_900.0, 290.0).expect("measurement");
/// let verdict = screen.judge(&m, 100_000)?;
/// assert!(matches!(verdict, Verdict::Pass | Verdict::Retest | Verdict::Fail));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Screen {
    limit_db: f64,
    sigma_multiple: f64,
}

impl Screen {
    /// Creates a screen at `limit_db` with a guard band of
    /// `sigma_multiple` estimator standard deviations.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidParameter`] for a negative limit or
    /// non-positive sigma multiple.
    pub fn new(limit_db: f64, sigma_multiple: f64) -> Result<Self, SocError> {
        if !(limit_db >= 0.0) || !limit_db.is_finite() {
            return Err(SocError::InvalidParameter {
                name: "limit_db",
                reason: "must be non-negative and finite",
            });
        }
        if !(sigma_multiple > 0.0) || !sigma_multiple.is_finite() {
            return Err(SocError::InvalidParameter {
                name: "sigma_multiple",
                reason: "must be positive and finite",
            });
        }
        Ok(Screen {
            limit_db,
            sigma_multiple,
        })
    }

    /// The NF limit in dB.
    pub fn limit_db(&self) -> f64 {
        self.limit_db
    }

    /// Guard band width in dB for a measurement taken with
    /// `n_effective` independent samples per record.
    ///
    /// # Errors
    ///
    /// Propagates uncertainty-model errors.
    pub fn guard_db(&self, m: &NfMeasurement, n_effective: usize) -> Result<f64, SocError> {
        let sigma = uncertainty::nf_std_from_record_length(m.factor, 2_900.0, 290.0, n_effective)?;
        Ok(self.sigma_multiple * sigma)
    }

    /// Judges a measurement against the limit with the guard band.
    ///
    /// # Errors
    ///
    /// Propagates uncertainty-model errors.
    pub fn judge(&self, m: &NfMeasurement, n_effective: usize) -> Result<Verdict, SocError> {
        let guard = self.guard_db(m, n_effective)?;
        let nf = m.figure.db();
        if nf <= self.limit_db - guard {
            Ok(Verdict::Pass)
        } else if nf >= self.limit_db + guard {
            Ok(Verdict::Fail)
        } else {
            Ok(Verdict::Retest)
        }
    }

    /// The smallest effective record length for which a DUT measured at
    /// `measured_db` would leave the retest band (in either direction),
    /// or `None` if it sits exactly on the limit (no record length
    /// resolves it).
    ///
    /// # Errors
    ///
    /// Propagates uncertainty-model errors.
    pub fn record_length_to_resolve(
        &self,
        m: &NfMeasurement,
        max_n: usize,
    ) -> Result<Option<usize>, SocError> {
        let mut n = 1_000usize;
        while n <= max_n {
            if self.judge(m, n)? != Verdict::Retest {
                return Ok(Some(n));
            }
            n *= 2;
        }
        Ok(None)
    }
}

/// How a [`Verdict::Retest`] escalates: up to `max_rounds` total
/// measurement rounds, growing the record length by `growth`× per
/// round (longer records shrink the guard band until the DUT resolves
/// to [`Verdict::Pass`] or [`Verdict::Fail`]).
///
/// # Examples
///
/// ```
/// use nfbist_soc::screening::RetestPolicy;
///
/// let policy = RetestPolicy::new(3, 4)?;
/// assert_eq!(policy.max_rounds(), 3);
/// assert_eq!(policy.growth(), 4);
/// // A single-round policy never retests.
/// assert_eq!(RetestPolicy::single().max_rounds(), 1);
/// assert!(RetestPolicy::new(0, 2).is_err());
/// # Ok::<(), nfbist_soc::SocError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetestPolicy {
    max_rounds: usize,
    growth: usize,
}

impl RetestPolicy {
    /// Creates a policy with `max_rounds` total rounds (≥ 1) and a
    /// per-retest record-length multiplier `growth` (≥ 2).
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidParameter`] for zero rounds or a
    /// growth factor below 2.
    pub fn new(max_rounds: usize, growth: usize) -> Result<Self, SocError> {
        if max_rounds == 0 {
            return Err(SocError::InvalidParameter {
                name: "max_rounds",
                reason: "at least one measurement round is required",
            });
        }
        if growth < 2 {
            return Err(SocError::InvalidParameter {
                name: "growth",
                reason: "the record length must at least double per retest",
            });
        }
        Ok(RetestPolicy { max_rounds, growth })
    }

    /// A one-round policy: judge once, never escalate (the final
    /// verdict may then be [`Verdict::Retest`]).
    pub fn single() -> Self {
        RetestPolicy {
            max_rounds: 1,
            growth: 2,
        }
    }

    /// Total measurement rounds allowed.
    pub fn max_rounds(&self) -> usize {
        self.max_rounds
    }

    /// Record-length multiplier applied per retest.
    pub fn growth(&self) -> usize {
        self.growth
    }
}

/// One measurement round within [`screen_with_retest`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetestRound {
    /// Record length this round acquired.
    pub samples: usize,
    /// Measured NF in dB (`f64::INFINITY` for an unmeasurable DUT —
    /// see [`screen_with_retest`]).
    pub nf_db: f64,
    /// This round's verdict.
    pub verdict: Verdict,
}

/// The outcome of a guard-banded screening with retest escalation.
#[derive(Debug, Clone, PartialEq)]
pub struct ScreeningOutcome {
    /// The final verdict ([`Verdict::Retest`] only when the policy's
    /// round budget ran out with the DUT still inside the guard band).
    pub verdict: Verdict,
    /// Every round, in execution order (never empty).
    pub rounds: Vec<RetestRound>,
}

impl ScreeningOutcome {
    /// Number of retests performed (rounds beyond the first).
    pub fn retests(&self) -> usize {
        self.rounds.len().saturating_sub(1)
    }

    /// Total samples acquired per source state across all rounds — the
    /// test-time currency of a coverage campaign.
    pub fn total_samples(&self) -> u64 {
        self.rounds.iter().map(|r| r.samples as u64).sum()
    }
}

/// Runs the documented screening flow end to end: measure, judge
/// against the guard-banded limit, and on [`Verdict::Retest`] re-test
/// with a `growth`× longer acquisition, up to the policy's round
/// budget.
///
/// `build` constructs the round's [`MeasurementSession`] from the
/// round's setup (record length grown per round; the seed is
/// re-derived per round so retests draw fresh noise). This closure
/// indirection is what makes the loop expressible at all: a session's
/// record length is fixed at construction, so every escalation needs a
/// freshly built session.
///
/// The guard band is evaluated at the session's full averaging depth:
/// `2·B·T` effective samples per acquisition
/// ([`BistSetup::effective_samples`]) × the session's repeat count,
/// since the judged NF comes from the mean Y over the repeats and the
/// Y variance shrinks accordingly.
///
/// A DUT whose measurement is *degenerate* (estimated Y ≤ 1, or a
/// noise factor below the physical limit — gross faults can do both)
/// is an unambiguous production reject, not a tester failure: it is
/// reported as [`Verdict::Fail`] with `nf_db = f64::INFINITY` rather
/// than as an error. Configuration errors still propagate.
///
/// # Examples
///
/// ```
/// use nfbist_soc::screening::{screen_with_retest, RetestPolicy, Screen, Verdict};
/// use nfbist_soc::session::MeasurementSession;
/// use nfbist_soc::setup::BistSetup;
///
/// # fn main() -> Result<(), nfbist_soc::SocError> {
/// let mut setup = BistSetup::quick(11);
/// setup.samples = 1 << 13;
/// setup.nfft = 1_024;
/// // OP27 default DUT (≈3.7 dB) against a 10 dB limit: passes, and
/// // within the round budget.
/// let screen = Screen::new(10.0, 3.0)?;
/// let policy = RetestPolicy::new(3, 4)?;
/// let outcome = screen_with_retest(&screen, &setup, &policy, MeasurementSession::new)?;
/// assert_eq!(outcome.verdict, Verdict::Pass);
/// assert!(outcome.rounds.len() <= 3);
/// assert!(outcome.total_samples() >= (1 << 13) as u64);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates session construction errors and non-degenerate
/// measurement errors.
pub fn screen_with_retest<F>(
    screen: &Screen,
    setup: &BistSetup,
    policy: &RetestPolicy,
    build: F,
) -> Result<ScreeningOutcome, SocError>
where
    F: Fn(BistSetup) -> Result<MeasurementSession, SocError>,
{
    let mut samples = setup.samples;
    let mut rounds: Vec<RetestRound> = Vec::new();
    loop {
        let mut round_setup = setup.clone();
        round_setup.samples = samples;
        if !rounds.is_empty() {
            // Retests draw fresh noise: a marginal verdict must not be
            // re-judged on the very record that produced it.
            round_setup.seed = derive_seed(setup.seed, rounds.len() as u64);
        }
        let session = build(round_setup.clone())?;
        // The session averages Y over its repeats, so the estimator
        // variance — and with it the guard band — shrinks by the
        // repeat count.
        let n_effective = round_setup
            .effective_samples()
            .saturating_mul(session.repeat_count());
        let (nf_db, verdict) = match session.run() {
            Ok(m) => (m.nf.figure.db(), screen.judge(&m.nf, n_effective)?),
            // Unmeasurable ⇒ gross reject (see the function docs).
            Err(SocError::Core(e)) if e.indicates_unmeasurable_estimate() => {
                (f64::INFINITY, Verdict::Fail)
            }
            Err(e) => return Err(e),
        };
        rounds.push(RetestRound {
            samples,
            nf_db,
            verdict,
        });
        if verdict != Verdict::Retest || rounds.len() >= policy.max_rounds {
            return Ok(ScreeningOutcome { verdict, rounds });
        }
        samples = samples.saturating_mul(policy.growth);
    }
}

/// An observer a fault-injecting runtime hands to the sequential
/// screening loop: called once per checkpoint with the checkpoint
/// index, **after** that checkpoint's samples were acquired but before
/// the stop rule is consulted. A chaos harness panics or stalls inside
/// it to simulate a die failing mid-acquisition; the unwinding drops
/// the partially-filled accumulators on the floor, which is what keeps
/// a quarantined die from ever contributing partial chunks to a lot's
/// float folds.
pub type CheckpointProbe<'a> = &'a (dyn Fn(usize) + Send + Sync);

/// The stop rule's three-way answer at a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SequentialDecision {
    /// The whole confidence interval clears the guard-banded limit
    /// from below: stop now, the DUT passes.
    Pass,
    /// The whole confidence interval clears the limit from above:
    /// stop now, the DUT fails.
    Fail,
    /// The interval straddles the guard band (or the estimate is not
    /// yet trustworthy): keep acquiring.
    Continue,
}

/// An SPRT-style sequential screen: drives the streaming pipeline
/// checkpoint by checkpoint and stops the moment the running NF
/// estimate clears the guard-banded limit with the configured
/// confidence — clearly-good and clearly-bad dies stop after the first
/// checkpoint instead of paying the full fixed-schedule record.
///
/// At each checkpoint the running estimate's model standard deviation
/// σ(n) (`nfbist_core::uncertainty`, the Welch variance-vs-record-length
/// trade) forms a one-sided test in each direction:
///
/// * **Pass** iff `nf + z_β·σ(n) ≤ limit − guard` — the probability a
///   truly-bad DUT looks this good is at most β (the escape budget);
/// * **Fail** iff `nf − z_α·σ(n) ≥ limit` — the probability a DUT that
///   actually meets the limit looks this bad is at most α (the
///   overkill budget);
/// * **Continue** otherwise.
///
/// The rule is deliberately asymmetric. `guard` is the underlying
/// [`Screen`]'s guard band evaluated at the **cap's** record length, so
/// an early *Pass* can never clear a DUT the full fixed-schedule
/// judgement would flag — escapes are the expensive error, and the
/// guard exists to bound them. An early *Fail* is judged against the
/// bare limit: a DUT confidently above the limit is one the fixed
/// schedule would at best send to retest purgatory, and delaying its
/// reject by the guard band only burns test time (the α budget alone
/// bounds the overkill risk). At the hard cap (the setup's configured
/// record length) the screen falls back to the fixed-schedule verdict
/// [`Screen::judge`] — a DUT the sequential rule never resolved gets
/// exactly the decision a single-round [`screen_with_retest`] would
/// give it, including the unmeasurable-DUT gross-reject convention.
///
/// # Examples
///
/// ```
/// use nfbist_soc::screening::{Screen, SequentialDecision, SequentialScreen};
///
/// # fn main() -> Result<(), nfbist_soc::SocError> {
/// let seq = SequentialScreen::new(Screen::new(10.0, 3.0)?, 0.05, 0.05)?;
/// // 2 dB under the limit with a tight interval: early Pass.
/// assert_eq!(seq.decide(8.0, 0.1, 0.5), SequentialDecision::Pass);
/// // Straddling the guard band: keep acquiring.
/// assert_eq!(seq.decide(9.8, 0.5, 0.5), SequentialDecision::Continue);
/// // Far above with confidence: early Fail.
/// assert_eq!(seq.decide(13.0, 0.3, 0.5), SequentialDecision::Fail);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequentialScreen {
    screen: Screen,
    alpha: f64,
    beta: f64,
    z_alpha: f64,
    z_beta: f64,
    min_samples: usize,
    growth: usize,
}

impl SequentialScreen {
    /// Wraps a guard-banded [`Screen`] into a sequential stop rule with
    /// error budgets `alpha` (failing a good DUT early) and `beta`
    /// (passing a bad DUT early). The one-sided normal quantiles
    /// z₁₋α / z₁₋β are precomputed here.
    ///
    /// Defaults: first checkpoint at 4096 samples, record doubling per
    /// checkpoint ([`SequentialScreen::min_samples`],
    /// [`SequentialScreen::growth`]).
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidParameter`] unless both budgets lie
    /// in `(0, 0.5)`.
    pub fn new(screen: Screen, alpha: f64, beta: f64) -> Result<Self, SocError> {
        if !(alpha > 0.0 && alpha < 0.5) {
            return Err(SocError::InvalidParameter {
                name: "alpha",
                reason: "the overkill error budget must lie in (0, 0.5)",
            });
        }
        if !(beta > 0.0 && beta < 0.5) {
            return Err(SocError::InvalidParameter {
                name: "beta",
                reason: "the escape error budget must lie in (0, 0.5)",
            });
        }
        let z_alpha = uncertainty::normal_quantile(1.0 - alpha)?;
        let z_beta = uncertainty::normal_quantile(1.0 - beta)?;
        Ok(SequentialScreen {
            screen,
            alpha,
            beta,
            z_alpha,
            z_beta,
            min_samples: 1 << 12,
            growth: 2,
        })
    }

    /// Sets the record length of the first checkpoint (clamped to ≥ 1;
    /// additionally raised to the setup's FFT length at screening time,
    /// below which no estimator can form a ratio).
    pub fn min_samples(mut self, samples: usize) -> Self {
        self.min_samples = samples.max(1);
        self
    }

    /// Sets the record-length multiplier between checkpoints (clamped
    /// to ≥ 2 — geometric growth keeps the checkpoint count, and with
    /// it the sequential test's multiplicity, logarithmic).
    pub fn growth(mut self, growth: usize) -> Self {
        self.growth = growth.max(2);
        self
    }

    /// The underlying guard-banded screen.
    pub fn screen(&self) -> &Screen {
        &self.screen
    }

    /// The overkill error budget α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The escape error budget β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The first checkpoint's record length.
    pub fn min_sample_count(&self) -> usize {
        self.min_samples
    }

    /// The per-checkpoint record-length multiplier.
    pub fn growth_factor(&self) -> usize {
        self.growth
    }

    /// The pure stop rule: given the running NF estimate `nf_db`, its
    /// model standard deviation `sigma_db` at the *current* record
    /// length, and the guard band `guard_db` at the *cap's* record
    /// length (applied on the Pass side only — see the type docs for
    /// why the rule is asymmetric), answers Pass / Fail / Continue.
    ///
    /// Degenerate inputs — a non-finite NF (the `f64::INFINITY`
    /// unmeasurable sentinel included), a zero, negative or non-finite
    /// σ (a zero-variance accumulator cannot be trusted, only
    /// distrusted), or a non-finite/negative guard — always answer
    /// [`SequentialDecision::Continue`]: the rule never converts a
    /// broken estimate into a spurious Pass (or Fail). Such a DUT runs
    /// to the cap, where the fixed-schedule fallback applies its own
    /// conventions.
    pub fn decide(&self, nf_db: f64, sigma_db: f64, guard_db: f64) -> SequentialDecision {
        if !nf_db.is_finite()
            || !sigma_db.is_finite()
            || !(sigma_db > 0.0)
            || !guard_db.is_finite()
            || guard_db < 0.0
        {
            return SequentialDecision::Continue;
        }
        let limit = self.screen.limit_db();
        if nf_db + self.z_beta * sigma_db <= limit - guard_db {
            SequentialDecision::Pass
        } else if nf_db - self.z_alpha * sigma_db >= limit {
            SequentialDecision::Fail
        } else {
            SequentialDecision::Continue
        }
    }
}

/// The outcome of one sequential (early-stopping) screening.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequentialOutcome {
    /// The final verdict. [`Verdict::Retest`] is only possible at the
    /// cap, where the fixed-schedule fallback may leave the DUT inside
    /// the guard band (exactly like a single-round
    /// [`screen_with_retest`]).
    pub verdict: Verdict,
    /// Measured NF in dB from the flushed estimate at the stopping
    /// point (`f64::INFINITY` for an unmeasurable DUT).
    pub nf_db: f64,
    /// Record length acquired per source state — the stopping point.
    pub samples: usize,
    /// Checkpoints evaluated (≥ 1).
    pub checkpoints: usize,
    /// `true` when the stop rule fired before the cap.
    pub stopped_early: bool,
}

impl SequentialOutcome {
    /// Samples acquired per source state — the test-time currency,
    /// directly comparable to [`ScreeningOutcome::total_samples`].
    pub fn total_samples(&self) -> u64 {
        self.samples as u64
    }
}

/// Runs a sequential (early-stopping) screening end to end: open the
/// streaming pipeline, advance every repeat to geometric checkpoints,
/// consult the stop rule on the interim estimate, and on Pass / Fail /
/// cap flush the pipeline tails and report.
///
/// The setup's configured record length is the **hard cap**; the first
/// checkpoint sits at [`SequentialScreen::min_samples`] (raised to the
/// FFT length). The stopping decision — like everything downstream of
/// it — is a pure function of `(setup seed, recipe)`: independent of
/// worker scheduling, memory budgets and streaming chunk sizes, which
/// is what lets a fleet fan adaptive screens out bit-identically.
///
/// The reported `nf_db` comes from the **flushed** estimate at the
/// stopping point and is bit-identical to a batch measurement of that
/// record length; at the cap the whole outcome matches what a
/// single-round fixed schedule would report for the same setup.
///
/// An unmeasurable DUT (estimated Y ≤ 1 at the stopping point) is a
/// gross reject — [`Verdict::Fail`] with `nf_db = f64::INFINITY` —
/// mirroring [`screen_with_retest`]. Grossly faulted DUTs also stop
/// *early*: two consecutive checkpoints whose interim estimate is
/// unmeasurable confirm the fault on independent data and reject
/// immediately, without paying the rest of the record.
///
/// A Pass needs **confirmation across checkpoints**: the rule only
/// releases a DUT early when the interim estimate agrees with the
/// previous checkpoint's measurable estimate to within the escape-risk
/// quantile of that estimate's uncertainty. The very first checkpoint
/// — and any checkpoint right after an unmeasurable one — can
/// therefore never Pass by itself. This blocks the one failure mode
/// the model-σ stop rule cannot see: a grossly faulted DUT whose
/// reference-line detector latches onto a noise peak at shallow
/// averaging, aliasing a plausible low NF that would otherwise convert
/// into a spurious early Pass before the false line collapses.
///
/// # Examples
///
/// ```
/// use nfbist_soc::screening::{screen_sequential, Screen, ScreeningRecipe, SequentialScreen, Verdict};
/// use nfbist_soc::setup::BistSetup;
///
/// # fn main() -> Result<(), nfbist_soc::SocError> {
/// let mut setup = BistSetup::quick(13);
/// setup.samples = 1 << 14;
/// setup.nfft = 1_024;
/// // The healthy TL081 prototype (≈12.8 dB) against an 18 dB limit: a
/// // clear pass, confirmed after two checkpoints instead of paying the
/// // full record.
/// let seq = SequentialScreen::new(Screen::new(18.0, 3.0)?, 0.05, 0.05)?
///     .min_samples(1 << 12);
/// let outcome = screen_sequential(&seq, &setup, |s| ScreeningRecipe::new().session(s))?;
/// assert_eq!(outcome.verdict, Verdict::Pass);
/// assert!(outcome.stopped_early);
/// assert!(outcome.samples < 1 << 14);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates session construction errors (including an estimator
/// without streaming support) and non-degenerate measurement errors.
pub fn screen_sequential<F>(
    seq: &SequentialScreen,
    setup: &BistSetup,
    build: F,
) -> Result<SequentialOutcome, SocError>
where
    F: Fn(BistSetup) -> Result<MeasurementSession, SocError>,
{
    screen_sequential_impl(seq, setup, build, None)
}

/// [`screen_sequential`] with a per-checkpoint [`CheckpointProbe`] —
/// the hook a fault-injecting runtime uses to kill or stall a die
/// *mid-acquisition* (see the probe type's docs).
///
/// # Errors
///
/// As [`screen_sequential`].
pub fn screen_sequential_probed<F>(
    seq: &SequentialScreen,
    setup: &BistSetup,
    build: F,
    probe: CheckpointProbe<'_>,
) -> Result<SequentialOutcome, SocError>
where
    F: Fn(BistSetup) -> Result<MeasurementSession, SocError>,
{
    screen_sequential_impl(seq, setup, build, Some(probe))
}

/// Minimum number of Welch segments a checkpoint must average before an
/// unmeasurable interim estimate counts toward the gross-reject streak.
/// Below this depth, reference-line detection is noisy enough that even
/// healthy DUTs occasionally fail to resolve the line; from four
/// averaged segments on, a missing line on two consecutive checkpoints
/// is reliable evidence of a gross fault rather than estimator
/// variance.
const GROSS_CONFIRM_SEGMENTS: usize = 4;

fn screen_sequential_impl<F>(
    seq: &SequentialScreen,
    setup: &BistSetup,
    build: F,
    probe: Option<CheckpointProbe<'_>>,
) -> Result<SequentialOutcome, SocError>
where
    F: Fn(BistSetup) -> Result<MeasurementSession, SocError>,
{
    let session = build(setup.clone())?;
    let cap = setup.samples;
    let repeats = session.repeat_count();
    // Guard band at the cap's averaging depth: early stops are judged
    // against the *final* guard, never a wider interim one.
    let n_eff_cap = setup.effective_samples().saturating_mul(repeats);
    let gain = session.frontend_gain()?;
    let mut chains = Vec::with_capacity(repeats);
    for r in 0..repeats {
        chains.push(session.begin_sequential(r, gain)?);
    }
    // No estimator forms a ratio below one FFT segment.
    let mut n_c = seq.min_samples.max(setup.nfft).min(cap);
    let mut checkpoints = 0usize;
    let mut decision = SequentialDecision::Continue;
    let mut unmeasurable_streak = 0usize;
    let mut prior_estimate: Option<(f64, f64)> = None;
    loop {
        for chain in chains.iter_mut() {
            chain.advance_to(n_c)?;
        }
        if let Some(probe) = probe {
            probe(checkpoints);
        }
        checkpoints += 1;
        if n_c >= cap {
            break;
        }
        let mut call = checkpoint_decision(seq, &chains, setup, n_c, n_eff_cap);
        // Two *consecutive* checkpoints whose interim estimate is
        // unmeasurable (Y ≤ 1, or the reference line buried below the
        // noise floor) is a gross fault confirmed on independent
        // additional data: reject now instead of riding the degenerate
        // estimate all the way to the cap. Two protections keep this
        // from overkilling measurable DUTs: a single unmeasurable
        // checkpoint never stops (a short-record fluke must not fail a
        // die the fixed schedule would have measured), and checkpoints
        // below [`GROSS_CONFIRM_SEGMENTS`] Welch segments do not count
        // at all — reference-line detection is only trustworthy once a
        // few segments have been averaged.
        if call.unmeasurable {
            if n_c >= setup.nfft.saturating_mul(GROSS_CONFIRM_SEGMENTS) {
                unmeasurable_streak += 1;
                if unmeasurable_streak >= 2 {
                    return Ok(SequentialOutcome {
                        verdict: Verdict::Fail,
                        nf_db: f64::INFINITY,
                        samples: n_c,
                        checkpoints,
                        stopped_early: true,
                    });
                }
            }
        } else {
            unmeasurable_streak = 0;
        }
        // A Pass must be *confirmed*: the interim estimate has to agree
        // with the previous checkpoint's measurable estimate within the
        // escape-risk quantile of that estimate's uncertainty. The model
        // σ is a function of the estimate itself, not of the data, so it
        // cannot see a false reference-line detection — a grossly
        // faulted DUT can alias a plausible low NF at one shallow
        // checkpoint before the line collapses at deeper averaging. A
        // bogus line does not survive a doubling of the record
        // consistently, while a true line's nested estimates move well
        // inside σ. The first checkpoint, or one right after an
        // unmeasurable checkpoint, therefore never Passes outright; Fail
        // needs no confirmation (the α risk is already bounded and the
        // fixed schedule gross-rejects such DUTs anyway).
        if call.decision == SequentialDecision::Pass {
            let confirmed = match (prior_estimate, call.estimate) {
                (Some((prev_nf, prev_sigma)), Some((nf, _))) => {
                    (nf - prev_nf).abs() <= seq.z_beta * prev_sigma
                }
                _ => false,
            };
            if !confirmed {
                call.decision = SequentialDecision::Continue;
            }
        }
        prior_estimate = call.estimate;
        decision = call.decision;
        if decision != SequentialDecision::Continue {
            break;
        }
        n_c = n_c.saturating_mul(seq.growth).min(cap);
    }
    let stopped_early = n_c < cap;
    let mut y_sum = 0.0;
    for chain in chains {
        match chain.finish() {
            Ok(r) => y_sum += r.ratio.ratio,
            // A repeat whose flushed estimate cannot even be formed
            // (e.g. the reference line swamped by a gross fault) is
            // the same gross reject the fixed schedule reports.
            Err(SocError::Core(e)) if e.indicates_unmeasurable_estimate() => {
                return Ok(SequentialOutcome {
                    verdict: Verdict::Fail,
                    nf_db: f64::INFINITY,
                    samples: n_c,
                    checkpoints,
                    stopped_early,
                });
            }
            Err(e) => return Err(e),
        }
    }
    let mean_y = y_sum / repeats as f64;
    match NfMeasurement::from_y(mean_y, setup.hot_kelvin, setup.cold_kelvin) {
        Ok(nf) => {
            let verdict = match decision {
                SequentialDecision::Pass => Verdict::Pass,
                SequentialDecision::Fail => Verdict::Fail,
                // Cap reached with the rule still undecided: the
                // fixed-schedule verdict at full depth.
                SequentialDecision::Continue => seq.screen.judge(&nf, n_eff_cap)?,
            };
            Ok(SequentialOutcome {
                verdict,
                nf_db: nf.figure.db(),
                samples: n_c,
                checkpoints,
                stopped_early,
            })
        }
        // Unmeasurable ⇒ gross reject, mirroring screen_with_retest.
        Err(e) if e.indicates_unmeasurable_estimate() => Ok(SequentialOutcome {
            verdict: Verdict::Fail,
            nf_db: f64::INFINITY,
            samples: n_c,
            checkpoints,
            stopped_early,
        }),
        Err(e) => Err(e.into()),
    }
}

/// What one checkpoint evaluation tells the sequential loop: the stop
/// rule's answer, plus whether the interim estimate was *unmeasurable*
/// (as opposed to merely undecided) — the loop counts consecutive
/// unmeasurable checkpoints towards an early gross reject.
struct CheckpointCall {
    decision: SequentialDecision,
    unmeasurable: bool,
    /// `(nf_db, sigma_db)` when a measurable interim estimate and its
    /// uncertainty were both formed — the evidence a later Pass must be
    /// confirmed against.
    estimate: Option<(f64, f64)>,
}

impl CheckpointCall {
    fn undecided(unmeasurable: bool) -> Self {
        CheckpointCall {
            decision: SequentialDecision::Continue,
            unmeasurable,
            estimate: None,
        }
    }
}

/// Evaluates the stop rule on the interim (unflushed) estimates at
/// record length `n_c`. Every failure mode — a snapshot the estimator
/// cannot form yet, a degenerate mean Y, an uncertainty-model error —
/// answers Continue: acquiring more is always safe, stopping is not.
/// Failures that specifically indicate an unmeasurable DUT (estimated
/// Y ≤ 1, reference line lost in the noise) are flagged as such so the
/// loop can confirm a gross fault across checkpoints.
fn checkpoint_decision(
    seq: &SequentialScreen,
    chains: &[crate::session::SequentialRepeat<'_>],
    setup: &BistSetup,
    n_c: usize,
    n_eff_cap: usize,
) -> CheckpointCall {
    let mut y_sum = 0.0;
    for chain in chains {
        match chain.snapshot() {
            Ok(r) => y_sum += r.ratio,
            Err(SocError::Core(e)) if e.indicates_unmeasurable_estimate() => {
                return CheckpointCall::undecided(true);
            }
            Err(_) => return CheckpointCall::undecided(false),
        }
    }
    let mean_y = y_sum / chains.len() as f64;
    let m = match NfMeasurement::from_y(mean_y, setup.hot_kelvin, setup.cold_kelvin) {
        Ok(m) => m,
        Err(e) => return CheckpointCall::undecided(e.indicates_unmeasurable_estimate()),
    };
    let n_eff_now = setup
        .effective_samples_for(n_c)
        .saturating_mul(chains.len());
    let sigma = match uncertainty::nf_std_from_record_length(m.factor, 2_900.0, 290.0, n_eff_now) {
        Ok(s) => s,
        Err(_) => return CheckpointCall::undecided(false),
    };
    let guard = match seq.screen.guard_db(&m, n_eff_cap) {
        Ok(g) => g,
        Err(_) => return CheckpointCall::undecided(false),
    };
    CheckpointCall {
        decision: seq.decide(m.figure.db(), sigma, guard),
        unmeasurable: false,
        estimate: Some((m.figure.db(), sigma)),
    }
}

/// A reusable per-DUT screening configuration: which healthy design to
/// build, which faults to compose onto it, how many repeats to
/// average, and an optional per-session memory budget.
///
/// [`screen_with_retest`] needs its session rebuilt from scratch every
/// round (a session's record length is fixed at construction), so
/// every call-site used to re-implement the same closure: build the
/// healthy DUT, wrap it in [`FaultyDut`], wrap the ideal comparator in
/// [`FaultyDigitizer`], set repeats, maybe set a budget. A recipe
/// captures that dance once; [`ScreeningRecipe::screen`] runs the full
/// retest flow and [`ScreeningRecipe::screen_indexed`] additionally
/// derives the per-DUT seed from an index — the seed-stable form a
/// coverage campaign or a wafer-lot screen fans across workers.
///
/// # Examples
///
/// ```
/// use nfbist_soc::screening::{RetestPolicy, Screen, ScreeningRecipe, Verdict};
/// use nfbist_soc::setup::BistSetup;
/// use nfbist_analog::fault::AnalogFault;
///
/// # fn main() -> Result<(), nfbist_soc::SocError> {
/// let mut setup = BistSetup::quick(3);
/// setup.samples = 1 << 13;
/// setup.nfft = 1_024;
/// let screen = Screen::new(12.0, 3.0)?;
/// let policy = RetestPolicy::new(3, 4)?;
/// // The default TL081 prototype with an 8× noise defect: caught.
/// let recipe = ScreeningRecipe::new().analog_fault(AnalogFault::ExcessNoise { factor: 8.0 })?;
/// let outcome = recipe.screen(&screen, &setup, &policy)?;
/// assert_eq!(outcome.verdict, Verdict::Fail);
/// // The same recipe screens DUT after DUT, each seeded by its index.
/// let a = recipe.screen_indexed(&screen, &setup, &policy, 7)?;
/// assert_eq!(a, recipe.screen_indexed(&screen, &setup, &policy, 7)?);
/// # Ok(())
/// # }
/// ```
pub struct ScreeningRecipe<'a> {
    build_dut: Option<&'a (dyn Fn() -> Result<Box<dyn Dut>, SocError> + Send + Sync)>,
    analog: Vec<AnalogFault>,
    bit: Vec<BitFault>,
    repeats: usize,
    memory_budget: Option<usize>,
    streaming_chunk: Option<usize>,
}

impl std::fmt::Debug for ScreeningRecipe<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScreeningRecipe")
            .field("custom_dut", &self.build_dut.is_some())
            .field("analog", &self.analog)
            .field("bit", &self.bit)
            .field("repeats", &self.repeats)
            .field("memory_budget", &self.memory_budget)
            .field("streaming_chunk", &self.streaming_chunk)
            .finish()
    }
}

impl Default for ScreeningRecipe<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> ScreeningRecipe<'a> {
    /// A fault-free recipe around the paper's TL081 non-inverting
    /// prototype, 1 repeat, unbudgeted.
    pub fn new() -> Self {
        ScreeningRecipe {
            build_dut: None,
            analog: Vec::new(),
            bit: Vec::new(),
            repeats: 1,
            memory_budget: None,
            streaming_chunk: None,
        }
    }

    /// Overrides the healthy-DUT builder (called once per measurement
    /// round — every round measures a freshly built DUT).
    pub fn dut_builder(
        mut self,
        build: &'a (dyn Fn() -> Result<Box<dyn Dut>, SocError> + Send + Sync),
    ) -> Self {
        self.build_dut = Some(build);
        self
    }

    /// Composes an analog fault onto the DUT (builder style).
    ///
    /// # Errors
    ///
    /// Returns [`SocError::Analog`] for out-of-domain fault parameters.
    pub fn analog_fault(mut self, fault: AnalogFault) -> Result<Self, SocError> {
        fault.validate()?;
        self.analog.push(fault);
        Ok(self)
    }

    /// Composes every analog fault of an iterator onto the DUT.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::Analog`] for out-of-domain fault parameters.
    pub fn analog_faults(
        mut self,
        faults: impl IntoIterator<Item = AnalogFault>,
    ) -> Result<Self, SocError> {
        for fault in faults {
            self = self.analog_fault(fault)?;
        }
        Ok(self)
    }

    /// Composes a 1-bit stream fault onto the front-end (builder
    /// style).
    ///
    /// # Errors
    ///
    /// Returns [`SocError::Analog`] for out-of-domain fault parameters.
    pub fn bit_fault(mut self, fault: BitFault) -> Result<Self, SocError> {
        fault.validate()?;
        self.bit.push(fault);
        Ok(self)
    }

    /// Composes every bit fault of an iterator onto the front-end.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::Analog`] for out-of-domain fault parameters.
    pub fn bit_faults(
        mut self,
        faults: impl IntoIterator<Item = BitFault>,
    ) -> Result<Self, SocError> {
        for fault in faults {
            self = self.bit_fault(fault)?;
        }
        Ok(self)
    }

    /// Sets the hot/cold repeats averaged per measurement (clamped to
    /// ≥ 1).
    pub fn repeats(mut self, n: usize) -> Self {
        self.repeats = n.max(1);
        self
    }

    /// Caps each round's session at `bytes` of acquisition memory —
    /// rounds whose records exceed it run the streaming pipeline,
    /// bit-identical to batch (so a budget never changes a verdict,
    /// only peak RSS).
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Overrides the streaming pipeline's chunk length (in samples) —
    /// a determinism-test hook: estimates and stopping decisions are
    /// invariant under it, so varying it must never change an outcome
    /// bit.
    pub fn streaming_chunk(mut self, samples: usize) -> Self {
        self.streaming_chunk = Some(samples);
        self
    }

    /// Builds one measurement round's session from the recipe: healthy
    /// DUT → [`FaultyDut`] → [`FaultyDigitizer`] over the ideal
    /// comparator → repeats → optional budget.
    ///
    /// # Errors
    ///
    /// Propagates DUT-builder and session-construction errors.
    pub fn session(&self, setup: BistSetup) -> Result<MeasurementSession, SocError> {
        let healthy: Box<dyn Dut> = match self.build_dut {
            Some(build) => build()?,
            None => Box::new(NonInvertingAmplifier::new(
                OpampModel::tl081(),
                Ohms::new(10_000.0),
                Ohms::new(100.0),
            )?),
        };
        let dut = FaultyDut::new(healthy).with_faults(self.analog.iter().copied())?;
        let digitizer =
            FaultyDigitizer::new(OneBitDigitizer::ideal()).with_faults(self.bit.iter().copied())?;
        let mut session = MeasurementSession::new(setup)?
            .dut(dut)
            .digitizer(digitizer)
            .repeats(self.repeats);
        if let Some(budget) = self.memory_budget {
            session = session.memory_budget(budget);
        }
        if let Some(chunk) = self.streaming_chunk {
            session = session.streaming_chunk_len(chunk);
        }
        Ok(session)
    }

    /// Runs the full guard-banded retest flow on this recipe's DUT:
    /// [`screen_with_retest`] with [`ScreeningRecipe::session`] as the
    /// per-round builder.
    ///
    /// # Errors
    ///
    /// Propagates construction and non-degenerate measurement errors
    /// (an *unmeasurable* DUT is a [`Verdict::Fail`], not an error).
    pub fn screen(
        &self,
        screen: &Screen,
        setup: &BistSetup,
        policy: &RetestPolicy,
    ) -> Result<ScreeningOutcome, SocError> {
        screen_with_retest(screen, setup, policy, |round_setup| {
            self.session(round_setup)
        })
    }

    /// [`ScreeningRecipe::screen`] with the per-DUT seed derived from
    /// `index`: the screened setup's seed is
    /// `derive_seed(setup.seed, index)`, making the outcome a pure
    /// function of `(recipe, setup, index)` — the property that lets a
    /// campaign or lot screen fan DUTs across workers bit-identically.
    ///
    /// # Errors
    ///
    /// As [`ScreeningRecipe::screen`].
    pub fn screen_indexed(
        &self,
        screen: &Screen,
        setup: &BistSetup,
        policy: &RetestPolicy,
        index: u64,
    ) -> Result<ScreeningOutcome, SocError> {
        let mut indexed = setup.clone();
        indexed.seed = derive_seed(setup.seed, index);
        self.screen(screen, &indexed, policy)
    }

    /// Runs the sequential (early-stopping) flow on this recipe's DUT:
    /// [`screen_sequential`] with [`ScreeningRecipe::session`] as the
    /// builder. The setup's record length is the hard cap; the retest
    /// policy plays no role (escalation is replaced by the checkpoint
    /// schedule).
    ///
    /// # Errors
    ///
    /// As [`screen_sequential`].
    pub fn screen_sequential(
        &self,
        seq: &SequentialScreen,
        setup: &BistSetup,
    ) -> Result<SequentialOutcome, SocError> {
        screen_sequential(seq, setup, |s| self.session(s))
    }

    /// [`ScreeningRecipe::screen_sequential`] with the per-DUT seed
    /// derived from `index` — the exact derivation
    /// [`ScreeningRecipe::screen_indexed`] uses, so adaptive and fixed
    /// screens of the same die draw the same noise.
    ///
    /// # Errors
    ///
    /// As [`screen_sequential`].
    pub fn screen_sequential_indexed(
        &self,
        seq: &SequentialScreen,
        setup: &BistSetup,
        index: u64,
    ) -> Result<SequentialOutcome, SocError> {
        let mut indexed = setup.clone();
        indexed.seed = derive_seed(setup.seed, index);
        self.screen_sequential(seq, &indexed)
    }

    /// [`ScreeningRecipe::screen_sequential_indexed`] with a
    /// per-checkpoint [`CheckpointProbe`] (see
    /// [`screen_sequential_probed`]).
    ///
    /// # Errors
    ///
    /// As [`screen_sequential`].
    pub fn screen_sequential_indexed_probed(
        &self,
        seq: &SequentialScreen,
        setup: &BistSetup,
        index: u64,
        probe: CheckpointProbe<'_>,
    ) -> Result<SequentialOutcome, SocError> {
        let mut indexed = setup.clone();
        indexed.seed = derive_seed(setup.seed, index);
        screen_sequential_probed(seq, &indexed, |s| self.session(s), probe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measurement(nf_db: f64) -> NfMeasurement {
        // Invert eq. 8 to find the Y that produces the requested NF.
        let f = nfbist_core::figure::NoiseFigure::from_db(nf_db)
            .unwrap()
            .to_factor();
        let y = nfbist_core::yfactor::expected_y(f, 2_900.0, 290.0).unwrap();
        NfMeasurement::from_y(y, 2_900.0, 290.0).unwrap()
    }

    #[test]
    fn validation() {
        assert!(Screen::new(-1.0, 3.0).is_err());
        assert!(Screen::new(10.0, 0.0).is_err());
        assert!(Screen::new(10.0, f64::NAN).is_err());
        assert!(Screen::new(10.0, 3.0).is_ok());
        assert_eq!(Screen::new(10.0, 3.0).unwrap().limit_db(), 10.0);
    }

    #[test]
    fn clear_pass_and_fail() {
        let screen = Screen::new(10.0, 3.0).unwrap();
        let quiet = measurement(5.0);
        let noisy = measurement(15.0);
        assert_eq!(screen.judge(&quiet, 100_000).unwrap(), Verdict::Pass);
        assert_eq!(screen.judge(&noisy, 100_000).unwrap(), Verdict::Fail);
    }

    #[test]
    fn marginal_dut_lands_in_retest_with_short_records() {
        let screen = Screen::new(10.0, 3.0).unwrap();
        let marginal = measurement(9.98);
        // Very short record → wide guard → retest.
        assert_eq!(screen.judge(&marginal, 200).unwrap(), Verdict::Retest);
    }

    #[test]
    fn longer_records_shrink_the_guard() {
        let screen = Screen::new(10.0, 3.0).unwrap();
        let m = measurement(9.5);
        let wide = screen.guard_db(&m, 1_000).unwrap();
        let narrow = screen.guard_db(&m, 1_000_000).unwrap();
        assert!(narrow < wide / 10.0, "{narrow} vs {wide}");
    }

    #[test]
    fn retest_escalation_grows_the_record() {
        // Measure once to learn where this seed's NF lands, then put
        // the limit exactly on top of it: round 1 must land in the
        // guard band and escalate with a doubled record.
        let mut setup = BistSetup::quick(31);
        setup.samples = 1 << 13;
        setup.nfft = 1_024;
        let probe = MeasurementSession::new(setup.clone())
            .unwrap()
            .run()
            .unwrap();
        let screen = Screen::new(probe.nf.figure.db(), 3.0).unwrap();
        let policy = RetestPolicy::new(2, 2).unwrap();
        let outcome =
            screen_with_retest(&screen, &setup, &policy, MeasurementSession::new).unwrap();
        assert_eq!(outcome.rounds.len(), 2, "on-limit DUT must retest");
        assert_eq!(outcome.retests(), 1);
        assert_eq!(outcome.rounds[0].verdict, Verdict::Retest);
        assert_eq!(outcome.rounds[0].samples, 1 << 13);
        assert_eq!(outcome.rounds[1].samples, 1 << 14);
        assert_eq!(outcome.total_samples(), (1 << 13) + (1 << 14));
        // Round 2 drew fresh noise, so its NF is not a copy of round 1.
        assert_ne!(outcome.rounds[0].nf_db, outcome.rounds[1].nf_db);
    }

    #[test]
    fn budgeted_retest_growth_is_bitwise_identical_to_unbudgeted() {
        // The documented payoff of streaming mode: retest escalation
        // grows the record 4× per round, but a memory-budgeted builder
        // keeps every round's allocation bounded — and the screening
        // outcome (NF per round, verdicts, sample counts) is
        // bit-identical to the unbudgeted flow.
        let mut setup = BistSetup::quick(31);
        setup.samples = 1 << 13;
        setup.nfft = 1_024;
        let probe = MeasurementSession::new(setup.clone())
            .unwrap()
            .run()
            .unwrap();
        // Limit on top of the measured NF → round 1 lands in the guard
        // band and escalates.
        let screen = Screen::new(probe.nf.figure.db(), 3.0).unwrap();
        let policy = RetestPolicy::new(3, 4).unwrap();
        let plain = screen_with_retest(&screen, &setup, &policy, MeasurementSession::new).unwrap();
        let budget = 16 * 1024; // well under round 1's 64 KiB record
        let budgeted = screen_with_retest(&screen, &setup, &policy, |round_setup| {
            let session = MeasurementSession::new(round_setup)?.memory_budget(budget);
            assert!(
                session.streaming_active(),
                "every round must exceed the budget and stream"
            );
            Ok(session)
        })
        .unwrap();
        assert_eq!(plain, budgeted, "ScreeningOutcome must match bitwise");
        assert!(plain.retests() >= 1, "the probe-limit setup must escalate");
    }

    #[test]
    fn unmeasurable_dut_is_a_gross_reject_not_an_error() {
        use nfbist_analog::fault::{AnalogFault, FaultyDut};

        // An interference tone 50× the reference noise RMS swamps both
        // source states: Y collapses to ≈1 and the Y-factor equation
        // degenerates. The screen must report Fail, not abort.
        let mut setup = BistSetup::quick(5);
        setup.samples = 1 << 13;
        setup.nfft = 1_024;
        let screen = Screen::new(10.0, 3.0).unwrap();
        let outcome = screen_with_retest(&screen, &setup, &RetestPolicy::single(), |round_setup| {
            let dut = FaultyDut::new(nfbist_analog::circuits::NonInvertingAmplifier::new(
                nfbist_analog::opamp::OpampModel::op27(),
                nfbist_analog::units::Ohms::new(10_000.0),
                nfbist_analog::units::Ohms::new(100.0),
            )?)
            .with_fault(AnalogFault::InterferenceTone {
                frequency: 500.0,
                amplitude_fraction: 50.0,
            })?;
            Ok(MeasurementSession::new(round_setup)?.dut(dut))
        })
        .unwrap();
        assert_eq!(outcome.verdict, Verdict::Fail);
        assert_eq!(outcome.rounds[0].nf_db, f64::INFINITY);
    }

    #[test]
    fn recipe_matches_the_handwritten_closure_bitwise() {
        // The recipe is sugar, not new behavior: its outcome must be
        // bit-identical to the closure dance it replaces.
        let mut setup = BistSetup::quick(21);
        setup.samples = 1 << 13;
        setup.nfft = 1_024;
        let screen = Screen::new(12.0, 3.0).unwrap();
        let policy = RetestPolicy::new(2, 2).unwrap();
        let noise = AnalogFault::ExcessNoise { factor: 4.0 };
        let stuck = BitFault::StuckBits {
            period: 16,
            value: true,
        };
        let recipe = ScreeningRecipe::new()
            .analog_fault(noise)
            .unwrap()
            .bit_fault(stuck)
            .unwrap()
            .repeats(2);
        let by_recipe = recipe.screen(&screen, &setup, &policy).unwrap();
        let by_hand = screen_with_retest(&screen, &setup, &policy, |round_setup| {
            let dut = FaultyDut::new(NonInvertingAmplifier::new(
                OpampModel::tl081(),
                Ohms::new(10_000.0),
                Ohms::new(100.0),
            )?)
            .with_faults([noise])?;
            let digitizer = FaultyDigitizer::new(OneBitDigitizer::ideal()).with_faults([stuck])?;
            Ok(MeasurementSession::new(round_setup)?
                .dut(dut)
                .digitizer(digitizer)
                .repeats(2))
        })
        .unwrap();
        assert_eq!(by_recipe, by_hand);
    }

    #[test]
    fn recipe_validation_budget_and_indexing() {
        // Out-of-domain faults are rejected at recipe-build time.
        assert!(ScreeningRecipe::new()
            .analog_fault(AnalogFault::ExcessNoise { factor: 0.5 })
            .is_err());
        assert!(ScreeningRecipe::new()
            .bit_fault(BitFault::StuckBits {
                period: 0,
                value: true,
            })
            .is_err());
        assert!(format!("{:?}", ScreeningRecipe::default()).contains("ScreeningRecipe"));

        let mut setup = BistSetup::quick(23);
        setup.samples = 1 << 13;
        setup.nfft = 1_024;
        let screen = Screen::new(12.0, 3.0).unwrap();
        let policy = RetestPolicy::single();
        let recipe = ScreeningRecipe::new().repeats(0); // clamps to 1
                                                        // A budget small enough to force streaming changes nothing.
        let budgeted = ScreeningRecipe::new().memory_budget(16 * 1024);
        assert!(budgeted.session(setup.clone()).unwrap().streaming_active());
        assert_eq!(
            recipe.screen(&screen, &setup, &policy).unwrap(),
            budgeted.screen(&screen, &setup, &policy).unwrap(),
            "a memory budget must never change a screening outcome"
        );
        // Indexed screening derives the documented seed.
        let direct = {
            let mut indexed = setup.clone();
            indexed.seed = derive_seed(setup.seed, 5);
            recipe.screen(&screen, &indexed, &policy).unwrap()
        };
        assert_eq!(
            recipe.screen_indexed(&screen, &setup, &policy, 5).unwrap(),
            direct
        );
        // A custom builder is honored.
        let build: &(dyn Fn() -> Result<Box<dyn Dut>, SocError> + Send + Sync) = &|| {
            Ok(Box::new(NonInvertingAmplifier::new(
                OpampModel::op27(),
                Ohms::new(10_000.0),
                Ohms::new(100.0),
            )?))
        };
        let quiet = ScreeningRecipe::new().dut_builder(build);
        let loud = ScreeningRecipe::new();
        let q = quiet.screen(&screen, &setup, &policy).unwrap();
        let l = loud.screen(&screen, &setup, &policy).unwrap();
        assert!(
            q.rounds[0].nf_db < l.rounds[0].nf_db,
            "the OP27 build must measure quieter than the TL081 default \
             ({} vs {})",
            q.rounds[0].nf_db,
            l.rounds[0].nf_db
        );
    }

    #[test]
    fn sequential_screen_validation_and_accessors() {
        let screen = Screen::new(10.0, 3.0).unwrap();
        assert!(SequentialScreen::new(screen, 0.0, 0.05).is_err());
        assert!(SequentialScreen::new(screen, 0.5, 0.05).is_err());
        assert!(SequentialScreen::new(screen, 0.05, -0.1).is_err());
        assert!(SequentialScreen::new(screen, 0.05, 0.6).is_err());
        let seq = SequentialScreen::new(screen, 0.05, 0.01)
            .unwrap()
            .min_samples(0)
            .growth(1);
        assert_eq!(seq.min_sample_count(), 1, "min samples clamps to 1");
        assert_eq!(seq.growth_factor(), 2, "growth clamps to 2");
        assert_eq!(seq.alpha(), 0.05);
        assert_eq!(seq.beta(), 0.01);
        assert_eq!(seq.screen().limit_db(), 10.0);
    }

    #[test]
    fn degenerate_stop_rule_inputs_always_continue() {
        // Satellite invariant: broken estimates must never convert
        // into a spurious early Pass (or Fail) — they Continue, and
        // the cap fallback applies its own conventions.
        let seq = SequentialScreen::new(Screen::new(10.0, 3.0).unwrap(), 0.05, 0.05).unwrap();
        // The unmeasurable-DUT sentinel.
        assert_eq!(
            seq.decide(f64::INFINITY, 0.1, 0.2),
            SequentialDecision::Continue
        );
        assert_eq!(
            seq.decide(f64::NEG_INFINITY, 0.1, 0.2),
            SequentialDecision::Continue
        );
        assert_eq!(seq.decide(f64::NAN, 0.1, 0.2), SequentialDecision::Continue);
        // A zero-variance accumulator cannot be trusted with a stop.
        assert_eq!(seq.decide(1.0, 0.0, 0.2), SequentialDecision::Continue);
        assert_eq!(seq.decide(1.0, -0.5, 0.2), SequentialDecision::Continue);
        assert_eq!(seq.decide(1.0, f64::NAN, 0.2), SequentialDecision::Continue);
        assert_eq!(
            seq.decide(1.0, f64::INFINITY, 0.2),
            SequentialDecision::Continue
        );
        // Broken guard bands likewise.
        assert_eq!(seq.decide(1.0, 0.1, f64::NAN), SequentialDecision::Continue);
        assert_eq!(seq.decide(1.0, 0.1, -0.1), SequentialDecision::Continue);
    }

    #[test]
    fn intervals_straddling_the_guard_band_continue() {
        let seq = SequentialScreen::new(Screen::new(10.0, 3.0).unwrap(), 0.05, 0.05).unwrap();
        let guard = 0.5;
        // Just under the pass threshold but with an interval reaching
        // into the band: Continue, never Pass.
        assert_eq!(seq.decide(9.4, 0.5, guard), SequentialDecision::Continue);
        // At or below the limit, no σ can stop the test: Pass is
        // blocked by the guard band, Fail by the limit itself.
        for sigma in [1e-6, 0.01, 0.1, 1.0, 10.0] {
            for nf in [9.51, 9.9, 10.0] {
                assert_eq!(
                    seq.decide(nf, sigma, guard),
                    SequentialDecision::Continue,
                    "nf {nf}, sigma {sigma}"
                );
            }
        }
        // Above the limit with the interval still reaching below it:
        // Continue, the evidence is not confident yet.
        for (nf, sigma) in [(10.1, 0.1), (10.49, 0.5), (12.0, 2.0)] {
            assert_eq!(
                seq.decide(nf, sigma, guard),
                SequentialDecision::Continue,
                "nf {nf}, sigma {sigma}"
            );
        }
        // The rule is asymmetric: a confident estimate above the limit
        // fails even inside the guard band (the fixed schedule would
        // only ever send such a DUT to retest purgatory) …
        assert_eq!(seq.decide(10.49, 0.01, guard), SequentialDecision::Fail);
        // … but any NF at or above limit − guard can never Pass, for
        // any positive σ — the "no spurious Pass" half of the
        // invariant is absolute.
        for sigma in [1e-9, 0.3, 5.0] {
            for nf in [9.5, 10.0, 12.0, 50.0] {
                assert_ne!(
                    seq.decide(nf, sigma, guard),
                    SequentialDecision::Pass,
                    "nf {nf}, sigma {sigma}"
                );
            }
        }
        // Tight intervals clear of the band do stop.
        assert_eq!(seq.decide(8.0, 0.05, guard), SequentialDecision::Pass);
        assert_eq!(seq.decide(12.0, 0.05, guard), SequentialDecision::Fail);
    }

    #[test]
    fn clear_duts_stop_early_and_match_a_short_fixed_run() {
        // The healthy TL081 prototype against a generous limit stops
        // as soon as a Pass is confirmed by two consecutive measurable
        // checkpoints — the second one, by construction — and its
        // reported NF is bit-identical to the fixed (batch)
        // measurement of that record length.
        let mut setup = BistSetup::quick(13);
        setup.samples = 1 << 14;
        setup.nfft = 1_024;
        let seq = SequentialScreen::new(Screen::new(18.0, 3.0).unwrap(), 0.05, 0.05)
            .unwrap()
            .min_samples(1 << 12);
        let recipe = ScreeningRecipe::new();
        let outcome = recipe.screen_sequential(&seq, &setup).unwrap();
        assert_eq!(outcome.verdict, Verdict::Pass);
        assert!(outcome.stopped_early);
        assert_eq!(outcome.samples, 1 << 13);
        assert_eq!(outcome.checkpoints, 2);
        assert_eq!(outcome.total_samples(), 1 << 13);
        let mut short = setup.clone();
        short.samples = outcome.samples;
        let batch = recipe.session(short).unwrap().run().unwrap();
        assert_eq!(outcome.nf_db.to_bits(), batch.nf.figure.db().to_bits());

        // A gross fault (excess noise burying the reference line, so
        // the interim estimate is unmeasurable) is confirmed across
        // two consecutive checkpoints and rejected early.
        let noisy = ScreeningRecipe::new()
            .analog_fault(AnalogFault::ExcessNoise { factor: 8.0 })
            .unwrap();
        let bad = noisy.screen_sequential(&seq, &setup).unwrap();
        assert_eq!(bad.verdict, Verdict::Fail);
        assert_eq!(bad.nf_db, f64::INFINITY);
        assert!(bad.stopped_early);
        assert_eq!(bad.samples, 1 << 13, "second checkpoint of 2·min");
        assert_eq!(bad.checkpoints, 2);
    }

    #[test]
    fn on_limit_dut_runs_to_the_cap_and_takes_the_fixed_verdict() {
        let mut setup = BistSetup::quick(31);
        setup.samples = 1 << 13;
        setup.nfft = 1_024;
        let probe = MeasurementSession::new(setup.clone())
            .unwrap()
            .run()
            .unwrap();
        // Limit exactly on the measured NF: the interval always
        // straddles, so the screen must run to the cap and fall back
        // to the fixed-schedule verdict for the full record.
        let screen = Screen::new(probe.nf.figure.db(), 3.0).unwrap();
        let seq = SequentialScreen::new(screen, 0.05, 0.05)
            .unwrap()
            .min_samples(1 << 11);
        let outcome = screen_sequential(&seq, &setup, MeasurementSession::new).unwrap();
        assert!(!outcome.stopped_early);
        assert_eq!(outcome.samples, 1 << 13);
        // min 2048 (nfft-clamped) → 4096 → 8192: three checkpoints.
        assert_eq!(outcome.checkpoints, 3);
        let fixed = screen_with_retest(
            &screen,
            &setup,
            &RetestPolicy::single(),
            MeasurementSession::new,
        )
        .unwrap();
        assert_eq!(outcome.verdict, fixed.verdict);
        assert_eq!(outcome.nf_db.to_bits(), fixed.rounds[0].nf_db.to_bits());
    }

    #[test]
    fn sequential_outcome_is_invariant_under_budget_and_chunking() {
        let mut setup = BistSetup::quick(43);
        setup.samples = 1 << 14;
        setup.nfft = 1_024;
        let seq = SequentialScreen::new(Screen::new(10.0, 3.0).unwrap(), 0.05, 0.05)
            .unwrap()
            .min_samples(1 << 12);
        let recipe = ScreeningRecipe::new().repeats(2);
        let reference = recipe.screen_sequential_indexed(&seq, &setup, 3).unwrap();
        for (budget, chunk) in [(1usize, 1_000usize), (16 * 1024, 1_025), (1, 7_777)] {
            let varied = ScreeningRecipe::new()
                .repeats(2)
                .memory_budget(budget)
                .streaming_chunk(chunk);
            let outcome = varied.screen_sequential_indexed(&seq, &setup, 3).unwrap();
            assert_eq!(outcome.verdict, reference.verdict);
            assert_eq!(outcome.samples, reference.samples);
            assert_eq!(outcome.checkpoints, reference.checkpoints);
            assert_eq!(
                outcome.nf_db.to_bits(),
                reference.nf_db.to_bits(),
                "budget {budget}, chunk {chunk}"
            );
        }
    }

    #[test]
    fn unmeasurable_dut_is_a_gross_sequential_reject() {
        let mut setup = BistSetup::quick(5);
        setup.samples = 1 << 13;
        setup.nfft = 1_024;
        let seq = SequentialScreen::new(Screen::new(10.0, 3.0).unwrap(), 0.05, 0.05).unwrap();
        let recipe = ScreeningRecipe::new()
            .analog_fault(AnalogFault::InterferenceTone {
                frequency: 500.0,
                amplitude_fraction: 50.0,
            })
            .unwrap();
        let outcome = recipe.screen_sequential(&seq, &setup).unwrap();
        assert_eq!(outcome.verdict, Verdict::Fail);
        assert_eq!(outcome.nf_db, f64::INFINITY);
        // With only one checkpoint below the cap the two-checkpoint
        // gross-reject confirmation cannot fire: the degenerate
        // estimate rides Continue to the cap, where the flushed
        // unmeasurable estimate takes the fixed-schedule convention.
        assert!(!outcome.stopped_early);
    }

    #[test]
    fn checkpoint_probe_fires_once_per_checkpoint() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        let mut setup = BistSetup::quick(31);
        setup.samples = 1 << 13;
        setup.nfft = 1_024;
        let probe_run = MeasurementSession::new(setup.clone())
            .unwrap()
            .run()
            .unwrap();
        let screen = Screen::new(probe_run.nf.figure.db(), 3.0).unwrap();
        let seq = SequentialScreen::new(screen, 0.05, 0.05)
            .unwrap()
            .min_samples(1 << 11);
        let seen = AtomicUsize::new(0);
        let probe: CheckpointProbe<'_> = &|checkpoint| {
            assert_eq!(checkpoint, seen.fetch_add(1, Ordering::SeqCst));
        };
        let outcome = ScreeningRecipe::new()
            .screen_sequential_indexed_probed(&seq, &setup, 0, probe)
            .unwrap_or_else(|e| panic!("probed screen failed: {e:?}"));
        assert_eq!(seen.load(Ordering::SeqCst), outcome.checkpoints);
    }

    #[test]
    fn resolution_search_finds_a_length() {
        let screen = Screen::new(10.0, 3.0).unwrap();
        let m = measurement(9.7);
        let n = screen
            .record_length_to_resolve(&m, 1 << 30)
            .unwrap()
            .expect("0.3 dB margin is resolvable");
        // And the verdict at that length is indeed decisive.
        assert_ne!(screen.judge(&m, n).unwrap(), Verdict::Retest);
        // A DUT on the limit never resolves within the cap.
        let on_limit = measurement(10.0);
        assert_eq!(
            screen.record_length_to_resolve(&on_limit, 1 << 22).unwrap(),
            None
        );
    }
}
