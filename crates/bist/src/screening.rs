//! Production-test screening: pass/fail decisions with guard bands.
//!
//! The paper's motivation is production test cost ("test costs must be
//! kept lower for the device to be competitive", §1). A BIST readout is
//! only useful on the line if its *uncertainty* is folded into the
//! limit: a DUT measured just under the NF limit may still be bad. This
//! module combines a measurement with the estimator's standard
//! deviation (from `nfbist_core::uncertainty`) into guard-banded
//! verdicts.

use crate::session::{derive_seed, MeasurementSession};
use crate::setup::BistSetup;
use crate::SocError;
use nfbist_analog::circuits::NonInvertingAmplifier;
use nfbist_analog::converter::OneBitDigitizer;
use nfbist_analog::dut::Dut;
use nfbist_analog::fault::{AnalogFault, BitFault, FaultyDigitizer, FaultyDut};
use nfbist_analog::opamp::OpampModel;
use nfbist_analog::units::Ohms;
use nfbist_core::estimator::NfMeasurement;
use nfbist_core::uncertainty;

/// A screening verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Confidently inside the limit (measured ≤ limit − guard).
    Pass,
    /// Confidently outside the limit (measured ≥ limit + guard).
    Fail,
    /// Within the guard band — re-test with a longer acquisition.
    Retest,
}

/// A guard-banded NF screening limit.
///
/// # Examples
///
/// ```
/// use nfbist_soc::screening::{Screen, Verdict};
/// use nfbist_core::estimator::NfMeasurement;
///
/// # fn main() -> Result<(), nfbist_soc::SocError> {
/// // Limit 10 dB, 3-sigma guard from a 100k-effective-sample record.
/// let screen = Screen::new(10.0, 3.0)?;
/// let m = NfMeasurement::from_y(3.0, 2_900.0, 290.0).expect("measurement");
/// let verdict = screen.judge(&m, 100_000)?;
/// assert!(matches!(verdict, Verdict::Pass | Verdict::Retest | Verdict::Fail));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Screen {
    limit_db: f64,
    sigma_multiple: f64,
}

impl Screen {
    /// Creates a screen at `limit_db` with a guard band of
    /// `sigma_multiple` estimator standard deviations.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidParameter`] for a negative limit or
    /// non-positive sigma multiple.
    pub fn new(limit_db: f64, sigma_multiple: f64) -> Result<Self, SocError> {
        if !(limit_db >= 0.0) || !limit_db.is_finite() {
            return Err(SocError::InvalidParameter {
                name: "limit_db",
                reason: "must be non-negative and finite",
            });
        }
        if !(sigma_multiple > 0.0) || !sigma_multiple.is_finite() {
            return Err(SocError::InvalidParameter {
                name: "sigma_multiple",
                reason: "must be positive and finite",
            });
        }
        Ok(Screen {
            limit_db,
            sigma_multiple,
        })
    }

    /// The NF limit in dB.
    pub fn limit_db(&self) -> f64 {
        self.limit_db
    }

    /// Guard band width in dB for a measurement taken with
    /// `n_effective` independent samples per record.
    ///
    /// # Errors
    ///
    /// Propagates uncertainty-model errors.
    pub fn guard_db(&self, m: &NfMeasurement, n_effective: usize) -> Result<f64, SocError> {
        let sigma = uncertainty::nf_std_from_record_length(m.factor, 2_900.0, 290.0, n_effective)?;
        Ok(self.sigma_multiple * sigma)
    }

    /// Judges a measurement against the limit with the guard band.
    ///
    /// # Errors
    ///
    /// Propagates uncertainty-model errors.
    pub fn judge(&self, m: &NfMeasurement, n_effective: usize) -> Result<Verdict, SocError> {
        let guard = self.guard_db(m, n_effective)?;
        let nf = m.figure.db();
        if nf <= self.limit_db - guard {
            Ok(Verdict::Pass)
        } else if nf >= self.limit_db + guard {
            Ok(Verdict::Fail)
        } else {
            Ok(Verdict::Retest)
        }
    }

    /// The smallest effective record length for which a DUT measured at
    /// `measured_db` would leave the retest band (in either direction),
    /// or `None` if it sits exactly on the limit (no record length
    /// resolves it).
    ///
    /// # Errors
    ///
    /// Propagates uncertainty-model errors.
    pub fn record_length_to_resolve(
        &self,
        m: &NfMeasurement,
        max_n: usize,
    ) -> Result<Option<usize>, SocError> {
        let mut n = 1_000usize;
        while n <= max_n {
            if self.judge(m, n)? != Verdict::Retest {
                return Ok(Some(n));
            }
            n *= 2;
        }
        Ok(None)
    }
}

/// How a [`Verdict::Retest`] escalates: up to `max_rounds` total
/// measurement rounds, growing the record length by `growth`× per
/// round (longer records shrink the guard band until the DUT resolves
/// to [`Verdict::Pass`] or [`Verdict::Fail`]).
///
/// # Examples
///
/// ```
/// use nfbist_soc::screening::RetestPolicy;
///
/// let policy = RetestPolicy::new(3, 4)?;
/// assert_eq!(policy.max_rounds(), 3);
/// assert_eq!(policy.growth(), 4);
/// // A single-round policy never retests.
/// assert_eq!(RetestPolicy::single().max_rounds(), 1);
/// assert!(RetestPolicy::new(0, 2).is_err());
/// # Ok::<(), nfbist_soc::SocError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetestPolicy {
    max_rounds: usize,
    growth: usize,
}

impl RetestPolicy {
    /// Creates a policy with `max_rounds` total rounds (≥ 1) and a
    /// per-retest record-length multiplier `growth` (≥ 2).
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidParameter`] for zero rounds or a
    /// growth factor below 2.
    pub fn new(max_rounds: usize, growth: usize) -> Result<Self, SocError> {
        if max_rounds == 0 {
            return Err(SocError::InvalidParameter {
                name: "max_rounds",
                reason: "at least one measurement round is required",
            });
        }
        if growth < 2 {
            return Err(SocError::InvalidParameter {
                name: "growth",
                reason: "the record length must at least double per retest",
            });
        }
        Ok(RetestPolicy { max_rounds, growth })
    }

    /// A one-round policy: judge once, never escalate (the final
    /// verdict may then be [`Verdict::Retest`]).
    pub fn single() -> Self {
        RetestPolicy {
            max_rounds: 1,
            growth: 2,
        }
    }

    /// Total measurement rounds allowed.
    pub fn max_rounds(&self) -> usize {
        self.max_rounds
    }

    /// Record-length multiplier applied per retest.
    pub fn growth(&self) -> usize {
        self.growth
    }
}

/// One measurement round within [`screen_with_retest`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetestRound {
    /// Record length this round acquired.
    pub samples: usize,
    /// Measured NF in dB (`f64::INFINITY` for an unmeasurable DUT —
    /// see [`screen_with_retest`]).
    pub nf_db: f64,
    /// This round's verdict.
    pub verdict: Verdict,
}

/// The outcome of a guard-banded screening with retest escalation.
#[derive(Debug, Clone, PartialEq)]
pub struct ScreeningOutcome {
    /// The final verdict ([`Verdict::Retest`] only when the policy's
    /// round budget ran out with the DUT still inside the guard band).
    pub verdict: Verdict,
    /// Every round, in execution order (never empty).
    pub rounds: Vec<RetestRound>,
}

impl ScreeningOutcome {
    /// Number of retests performed (rounds beyond the first).
    pub fn retests(&self) -> usize {
        self.rounds.len().saturating_sub(1)
    }

    /// Total samples acquired per source state across all rounds — the
    /// test-time currency of a coverage campaign.
    pub fn total_samples(&self) -> u64 {
        self.rounds.iter().map(|r| r.samples as u64).sum()
    }
}

/// Runs the documented screening flow end to end: measure, judge
/// against the guard-banded limit, and on [`Verdict::Retest`] re-test
/// with a `growth`× longer acquisition, up to the policy's round
/// budget.
///
/// `build` constructs the round's [`MeasurementSession`] from the
/// round's setup (record length grown per round; the seed is
/// re-derived per round so retests draw fresh noise). This closure
/// indirection is what makes the loop expressible at all: a session's
/// record length is fixed at construction, so every escalation needs a
/// freshly built session.
///
/// The guard band is evaluated at the session's full averaging depth:
/// `2·B·T` effective samples per acquisition
/// ([`BistSetup::effective_samples`]) × the session's repeat count,
/// since the judged NF comes from the mean Y over the repeats and the
/// Y variance shrinks accordingly.
///
/// A DUT whose measurement is *degenerate* (estimated Y ≤ 1, or a
/// noise factor below the physical limit — gross faults can do both)
/// is an unambiguous production reject, not a tester failure: it is
/// reported as [`Verdict::Fail`] with `nf_db = f64::INFINITY` rather
/// than as an error. Configuration errors still propagate.
///
/// # Examples
///
/// ```
/// use nfbist_soc::screening::{screen_with_retest, RetestPolicy, Screen, Verdict};
/// use nfbist_soc::session::MeasurementSession;
/// use nfbist_soc::setup::BistSetup;
///
/// # fn main() -> Result<(), nfbist_soc::SocError> {
/// let mut setup = BistSetup::quick(11);
/// setup.samples = 1 << 13;
/// setup.nfft = 1_024;
/// // OP27 default DUT (≈3.7 dB) against a 10 dB limit: passes, and
/// // within the round budget.
/// let screen = Screen::new(10.0, 3.0)?;
/// let policy = RetestPolicy::new(3, 4)?;
/// let outcome = screen_with_retest(&screen, &setup, &policy, MeasurementSession::new)?;
/// assert_eq!(outcome.verdict, Verdict::Pass);
/// assert!(outcome.rounds.len() <= 3);
/// assert!(outcome.total_samples() >= (1 << 13) as u64);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates session construction errors and non-degenerate
/// measurement errors.
pub fn screen_with_retest<F>(
    screen: &Screen,
    setup: &BistSetup,
    policy: &RetestPolicy,
    build: F,
) -> Result<ScreeningOutcome, SocError>
where
    F: Fn(BistSetup) -> Result<MeasurementSession, SocError>,
{
    let mut samples = setup.samples;
    let mut rounds: Vec<RetestRound> = Vec::new();
    loop {
        let mut round_setup = setup.clone();
        round_setup.samples = samples;
        if !rounds.is_empty() {
            // Retests draw fresh noise: a marginal verdict must not be
            // re-judged on the very record that produced it.
            round_setup.seed = derive_seed(setup.seed, rounds.len() as u64);
        }
        let session = build(round_setup.clone())?;
        // The session averages Y over its repeats, so the estimator
        // variance — and with it the guard band — shrinks by the
        // repeat count.
        let n_effective = round_setup
            .effective_samples()
            .saturating_mul(session.repeat_count());
        let (nf_db, verdict) = match session.run() {
            Ok(m) => (m.nf.figure.db(), screen.judge(&m.nf, n_effective)?),
            // Unmeasurable ⇒ gross reject (see the function docs).
            Err(SocError::Core(e)) if e.indicates_unmeasurable_estimate() => {
                (f64::INFINITY, Verdict::Fail)
            }
            Err(e) => return Err(e),
        };
        rounds.push(RetestRound {
            samples,
            nf_db,
            verdict,
        });
        if verdict != Verdict::Retest || rounds.len() >= policy.max_rounds {
            return Ok(ScreeningOutcome { verdict, rounds });
        }
        samples = samples.saturating_mul(policy.growth);
    }
}

/// A reusable per-DUT screening configuration: which healthy design to
/// build, which faults to compose onto it, how many repeats to
/// average, and an optional per-session memory budget.
///
/// [`screen_with_retest`] needs its session rebuilt from scratch every
/// round (a session's record length is fixed at construction), so
/// every call-site used to re-implement the same closure: build the
/// healthy DUT, wrap it in [`FaultyDut`], wrap the ideal comparator in
/// [`FaultyDigitizer`], set repeats, maybe set a budget. A recipe
/// captures that dance once; [`ScreeningRecipe::screen`] runs the full
/// retest flow and [`ScreeningRecipe::screen_indexed`] additionally
/// derives the per-DUT seed from an index — the seed-stable form a
/// coverage campaign or a wafer-lot screen fans across workers.
///
/// # Examples
///
/// ```
/// use nfbist_soc::screening::{RetestPolicy, Screen, ScreeningRecipe, Verdict};
/// use nfbist_soc::setup::BistSetup;
/// use nfbist_analog::fault::AnalogFault;
///
/// # fn main() -> Result<(), nfbist_soc::SocError> {
/// let mut setup = BistSetup::quick(3);
/// setup.samples = 1 << 13;
/// setup.nfft = 1_024;
/// let screen = Screen::new(12.0, 3.0)?;
/// let policy = RetestPolicy::new(3, 4)?;
/// // The default TL081 prototype with an 8× noise defect: caught.
/// let recipe = ScreeningRecipe::new().analog_fault(AnalogFault::ExcessNoise { factor: 8.0 })?;
/// let outcome = recipe.screen(&screen, &setup, &policy)?;
/// assert_eq!(outcome.verdict, Verdict::Fail);
/// // The same recipe screens DUT after DUT, each seeded by its index.
/// let a = recipe.screen_indexed(&screen, &setup, &policy, 7)?;
/// assert_eq!(a, recipe.screen_indexed(&screen, &setup, &policy, 7)?);
/// # Ok(())
/// # }
/// ```
pub struct ScreeningRecipe<'a> {
    build_dut: Option<&'a (dyn Fn() -> Result<Box<dyn Dut>, SocError> + Send + Sync)>,
    analog: Vec<AnalogFault>,
    bit: Vec<BitFault>,
    repeats: usize,
    memory_budget: Option<usize>,
}

impl std::fmt::Debug for ScreeningRecipe<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScreeningRecipe")
            .field("custom_dut", &self.build_dut.is_some())
            .field("analog", &self.analog)
            .field("bit", &self.bit)
            .field("repeats", &self.repeats)
            .field("memory_budget", &self.memory_budget)
            .finish()
    }
}

impl Default for ScreeningRecipe<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> ScreeningRecipe<'a> {
    /// A fault-free recipe around the paper's TL081 non-inverting
    /// prototype, 1 repeat, unbudgeted.
    pub fn new() -> Self {
        ScreeningRecipe {
            build_dut: None,
            analog: Vec::new(),
            bit: Vec::new(),
            repeats: 1,
            memory_budget: None,
        }
    }

    /// Overrides the healthy-DUT builder (called once per measurement
    /// round — every round measures a freshly built DUT).
    pub fn dut_builder(
        mut self,
        build: &'a (dyn Fn() -> Result<Box<dyn Dut>, SocError> + Send + Sync),
    ) -> Self {
        self.build_dut = Some(build);
        self
    }

    /// Composes an analog fault onto the DUT (builder style).
    ///
    /// # Errors
    ///
    /// Returns [`SocError::Analog`] for out-of-domain fault parameters.
    pub fn analog_fault(mut self, fault: AnalogFault) -> Result<Self, SocError> {
        fault.validate()?;
        self.analog.push(fault);
        Ok(self)
    }

    /// Composes every analog fault of an iterator onto the DUT.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::Analog`] for out-of-domain fault parameters.
    pub fn analog_faults(
        mut self,
        faults: impl IntoIterator<Item = AnalogFault>,
    ) -> Result<Self, SocError> {
        for fault in faults {
            self = self.analog_fault(fault)?;
        }
        Ok(self)
    }

    /// Composes a 1-bit stream fault onto the front-end (builder
    /// style).
    ///
    /// # Errors
    ///
    /// Returns [`SocError::Analog`] for out-of-domain fault parameters.
    pub fn bit_fault(mut self, fault: BitFault) -> Result<Self, SocError> {
        fault.validate()?;
        self.bit.push(fault);
        Ok(self)
    }

    /// Composes every bit fault of an iterator onto the front-end.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::Analog`] for out-of-domain fault parameters.
    pub fn bit_faults(
        mut self,
        faults: impl IntoIterator<Item = BitFault>,
    ) -> Result<Self, SocError> {
        for fault in faults {
            self = self.bit_fault(fault)?;
        }
        Ok(self)
    }

    /// Sets the hot/cold repeats averaged per measurement (clamped to
    /// ≥ 1).
    pub fn repeats(mut self, n: usize) -> Self {
        self.repeats = n.max(1);
        self
    }

    /// Caps each round's session at `bytes` of acquisition memory —
    /// rounds whose records exceed it run the streaming pipeline,
    /// bit-identical to batch (so a budget never changes a verdict,
    /// only peak RSS).
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Builds one measurement round's session from the recipe: healthy
    /// DUT → [`FaultyDut`] → [`FaultyDigitizer`] over the ideal
    /// comparator → repeats → optional budget.
    ///
    /// # Errors
    ///
    /// Propagates DUT-builder and session-construction errors.
    pub fn session(&self, setup: BistSetup) -> Result<MeasurementSession, SocError> {
        let healthy: Box<dyn Dut> = match self.build_dut {
            Some(build) => build()?,
            None => Box::new(NonInvertingAmplifier::new(
                OpampModel::tl081(),
                Ohms::new(10_000.0),
                Ohms::new(100.0),
            )?),
        };
        let dut = FaultyDut::new(healthy).with_faults(self.analog.iter().copied())?;
        let digitizer =
            FaultyDigitizer::new(OneBitDigitizer::ideal()).with_faults(self.bit.iter().copied())?;
        let mut session = MeasurementSession::new(setup)?
            .dut(dut)
            .digitizer(digitizer)
            .repeats(self.repeats);
        if let Some(budget) = self.memory_budget {
            session = session.memory_budget(budget);
        }
        Ok(session)
    }

    /// Runs the full guard-banded retest flow on this recipe's DUT:
    /// [`screen_with_retest`] with [`ScreeningRecipe::session`] as the
    /// per-round builder.
    ///
    /// # Errors
    ///
    /// Propagates construction and non-degenerate measurement errors
    /// (an *unmeasurable* DUT is a [`Verdict::Fail`], not an error).
    pub fn screen(
        &self,
        screen: &Screen,
        setup: &BistSetup,
        policy: &RetestPolicy,
    ) -> Result<ScreeningOutcome, SocError> {
        screen_with_retest(screen, setup, policy, |round_setup| {
            self.session(round_setup)
        })
    }

    /// [`ScreeningRecipe::screen`] with the per-DUT seed derived from
    /// `index`: the screened setup's seed is
    /// `derive_seed(setup.seed, index)`, making the outcome a pure
    /// function of `(recipe, setup, index)` — the property that lets a
    /// campaign or lot screen fan DUTs across workers bit-identically.
    ///
    /// # Errors
    ///
    /// As [`ScreeningRecipe::screen`].
    pub fn screen_indexed(
        &self,
        screen: &Screen,
        setup: &BistSetup,
        policy: &RetestPolicy,
        index: u64,
    ) -> Result<ScreeningOutcome, SocError> {
        let mut indexed = setup.clone();
        indexed.seed = derive_seed(setup.seed, index);
        self.screen(screen, &indexed, policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measurement(nf_db: f64) -> NfMeasurement {
        // Invert eq. 8 to find the Y that produces the requested NF.
        let f = nfbist_core::figure::NoiseFigure::from_db(nf_db)
            .unwrap()
            .to_factor();
        let y = nfbist_core::yfactor::expected_y(f, 2_900.0, 290.0).unwrap();
        NfMeasurement::from_y(y, 2_900.0, 290.0).unwrap()
    }

    #[test]
    fn validation() {
        assert!(Screen::new(-1.0, 3.0).is_err());
        assert!(Screen::new(10.0, 0.0).is_err());
        assert!(Screen::new(10.0, f64::NAN).is_err());
        assert!(Screen::new(10.0, 3.0).is_ok());
        assert_eq!(Screen::new(10.0, 3.0).unwrap().limit_db(), 10.0);
    }

    #[test]
    fn clear_pass_and_fail() {
        let screen = Screen::new(10.0, 3.0).unwrap();
        let quiet = measurement(5.0);
        let noisy = measurement(15.0);
        assert_eq!(screen.judge(&quiet, 100_000).unwrap(), Verdict::Pass);
        assert_eq!(screen.judge(&noisy, 100_000).unwrap(), Verdict::Fail);
    }

    #[test]
    fn marginal_dut_lands_in_retest_with_short_records() {
        let screen = Screen::new(10.0, 3.0).unwrap();
        let marginal = measurement(9.98);
        // Very short record → wide guard → retest.
        assert_eq!(screen.judge(&marginal, 200).unwrap(), Verdict::Retest);
    }

    #[test]
    fn longer_records_shrink_the_guard() {
        let screen = Screen::new(10.0, 3.0).unwrap();
        let m = measurement(9.5);
        let wide = screen.guard_db(&m, 1_000).unwrap();
        let narrow = screen.guard_db(&m, 1_000_000).unwrap();
        assert!(narrow < wide / 10.0, "{narrow} vs {wide}");
    }

    #[test]
    fn retest_escalation_grows_the_record() {
        // Measure once to learn where this seed's NF lands, then put
        // the limit exactly on top of it: round 1 must land in the
        // guard band and escalate with a doubled record.
        let mut setup = BistSetup::quick(31);
        setup.samples = 1 << 13;
        setup.nfft = 1_024;
        let probe = MeasurementSession::new(setup.clone())
            .unwrap()
            .run()
            .unwrap();
        let screen = Screen::new(probe.nf.figure.db(), 3.0).unwrap();
        let policy = RetestPolicy::new(2, 2).unwrap();
        let outcome =
            screen_with_retest(&screen, &setup, &policy, MeasurementSession::new).unwrap();
        assert_eq!(outcome.rounds.len(), 2, "on-limit DUT must retest");
        assert_eq!(outcome.retests(), 1);
        assert_eq!(outcome.rounds[0].verdict, Verdict::Retest);
        assert_eq!(outcome.rounds[0].samples, 1 << 13);
        assert_eq!(outcome.rounds[1].samples, 1 << 14);
        assert_eq!(outcome.total_samples(), (1 << 13) + (1 << 14));
        // Round 2 drew fresh noise, so its NF is not a copy of round 1.
        assert_ne!(outcome.rounds[0].nf_db, outcome.rounds[1].nf_db);
    }

    #[test]
    fn budgeted_retest_growth_is_bitwise_identical_to_unbudgeted() {
        // The documented payoff of streaming mode: retest escalation
        // grows the record 4× per round, but a memory-budgeted builder
        // keeps every round's allocation bounded — and the screening
        // outcome (NF per round, verdicts, sample counts) is
        // bit-identical to the unbudgeted flow.
        let mut setup = BistSetup::quick(31);
        setup.samples = 1 << 13;
        setup.nfft = 1_024;
        let probe = MeasurementSession::new(setup.clone())
            .unwrap()
            .run()
            .unwrap();
        // Limit on top of the measured NF → round 1 lands in the guard
        // band and escalates.
        let screen = Screen::new(probe.nf.figure.db(), 3.0).unwrap();
        let policy = RetestPolicy::new(3, 4).unwrap();
        let plain = screen_with_retest(&screen, &setup, &policy, MeasurementSession::new).unwrap();
        let budget = 16 * 1024; // well under round 1's 64 KiB record
        let budgeted = screen_with_retest(&screen, &setup, &policy, |round_setup| {
            let session = MeasurementSession::new(round_setup)?.memory_budget(budget);
            assert!(
                session.streaming_active(),
                "every round must exceed the budget and stream"
            );
            Ok(session)
        })
        .unwrap();
        assert_eq!(plain, budgeted, "ScreeningOutcome must match bitwise");
        assert!(plain.retests() >= 1, "the probe-limit setup must escalate");
    }

    #[test]
    fn unmeasurable_dut_is_a_gross_reject_not_an_error() {
        use nfbist_analog::fault::{AnalogFault, FaultyDut};

        // An interference tone 50× the reference noise RMS swamps both
        // source states: Y collapses to ≈1 and the Y-factor equation
        // degenerates. The screen must report Fail, not abort.
        let mut setup = BistSetup::quick(5);
        setup.samples = 1 << 13;
        setup.nfft = 1_024;
        let screen = Screen::new(10.0, 3.0).unwrap();
        let outcome = screen_with_retest(&screen, &setup, &RetestPolicy::single(), |round_setup| {
            let dut = FaultyDut::new(nfbist_analog::circuits::NonInvertingAmplifier::new(
                nfbist_analog::opamp::OpampModel::op27(),
                nfbist_analog::units::Ohms::new(10_000.0),
                nfbist_analog::units::Ohms::new(100.0),
            )?)
            .with_fault(AnalogFault::InterferenceTone {
                frequency: 500.0,
                amplitude_fraction: 50.0,
            })?;
            Ok(MeasurementSession::new(round_setup)?.dut(dut))
        })
        .unwrap();
        assert_eq!(outcome.verdict, Verdict::Fail);
        assert_eq!(outcome.rounds[0].nf_db, f64::INFINITY);
    }

    #[test]
    fn recipe_matches_the_handwritten_closure_bitwise() {
        // The recipe is sugar, not new behavior: its outcome must be
        // bit-identical to the closure dance it replaces.
        let mut setup = BistSetup::quick(21);
        setup.samples = 1 << 13;
        setup.nfft = 1_024;
        let screen = Screen::new(12.0, 3.0).unwrap();
        let policy = RetestPolicy::new(2, 2).unwrap();
        let noise = AnalogFault::ExcessNoise { factor: 4.0 };
        let stuck = BitFault::StuckBits {
            period: 16,
            value: true,
        };
        let recipe = ScreeningRecipe::new()
            .analog_fault(noise)
            .unwrap()
            .bit_fault(stuck)
            .unwrap()
            .repeats(2);
        let by_recipe = recipe.screen(&screen, &setup, &policy).unwrap();
        let by_hand = screen_with_retest(&screen, &setup, &policy, |round_setup| {
            let dut = FaultyDut::new(NonInvertingAmplifier::new(
                OpampModel::tl081(),
                Ohms::new(10_000.0),
                Ohms::new(100.0),
            )?)
            .with_faults([noise])?;
            let digitizer = FaultyDigitizer::new(OneBitDigitizer::ideal()).with_faults([stuck])?;
            Ok(MeasurementSession::new(round_setup)?
                .dut(dut)
                .digitizer(digitizer)
                .repeats(2))
        })
        .unwrap();
        assert_eq!(by_recipe, by_hand);
    }

    #[test]
    fn recipe_validation_budget_and_indexing() {
        // Out-of-domain faults are rejected at recipe-build time.
        assert!(ScreeningRecipe::new()
            .analog_fault(AnalogFault::ExcessNoise { factor: 0.5 })
            .is_err());
        assert!(ScreeningRecipe::new()
            .bit_fault(BitFault::StuckBits {
                period: 0,
                value: true,
            })
            .is_err());
        assert!(format!("{:?}", ScreeningRecipe::default()).contains("ScreeningRecipe"));

        let mut setup = BistSetup::quick(23);
        setup.samples = 1 << 13;
        setup.nfft = 1_024;
        let screen = Screen::new(12.0, 3.0).unwrap();
        let policy = RetestPolicy::single();
        let recipe = ScreeningRecipe::new().repeats(0); // clamps to 1
                                                        // A budget small enough to force streaming changes nothing.
        let budgeted = ScreeningRecipe::new().memory_budget(16 * 1024);
        assert!(budgeted.session(setup.clone()).unwrap().streaming_active());
        assert_eq!(
            recipe.screen(&screen, &setup, &policy).unwrap(),
            budgeted.screen(&screen, &setup, &policy).unwrap(),
            "a memory budget must never change a screening outcome"
        );
        // Indexed screening derives the documented seed.
        let direct = {
            let mut indexed = setup.clone();
            indexed.seed = derive_seed(setup.seed, 5);
            recipe.screen(&screen, &indexed, &policy).unwrap()
        };
        assert_eq!(
            recipe.screen_indexed(&screen, &setup, &policy, 5).unwrap(),
            direct
        );
        // A custom builder is honored.
        let build: &(dyn Fn() -> Result<Box<dyn Dut>, SocError> + Send + Sync) = &|| {
            Ok(Box::new(NonInvertingAmplifier::new(
                OpampModel::op27(),
                Ohms::new(10_000.0),
                Ohms::new(100.0),
            )?))
        };
        let quiet = ScreeningRecipe::new().dut_builder(build);
        let loud = ScreeningRecipe::new();
        let q = quiet.screen(&screen, &setup, &policy).unwrap();
        let l = loud.screen(&screen, &setup, &policy).unwrap();
        assert!(
            q.rounds[0].nf_db < l.rounds[0].nf_db,
            "the OP27 build must measure quieter than the TL081 default \
             ({} vs {})",
            q.rounds[0].nf_db,
            l.rounds[0].nf_db
        );
    }

    #[test]
    fn resolution_search_finds_a_length() {
        let screen = Screen::new(10.0, 3.0).unwrap();
        let m = measurement(9.7);
        let n = screen
            .record_length_to_resolve(&m, 1 << 30)
            .unwrap()
            .expect("0.3 dB margin is resolvable");
        // And the verdict at that length is indeed decisive.
        assert_ne!(screen.judge(&m, n).unwrap(), Verdict::Retest);
        // A DUT on the limit never resolves within the cap.
        let on_limit = measurement(10.0);
        assert_eq!(
            screen.record_length_to_resolve(&on_limit, 1 << 22).unwrap(),
            None
        );
    }
}
