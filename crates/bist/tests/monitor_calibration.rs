//! Statistical calibration of the drift detector (THEORY.md §5): over
//! a population of seeded **healthy** missions the false-alarm count
//! must stay within a binomial bound on the design budget, and a
//! seeded [`DriftingDut`] must be flagged within the detection delay
//! the freshness-scaled CUSUM model predicts,
//! `delay ≈ h / (f · (δ − k))` emissions for a shift of `δ` sigmas.

use nfbist_analog::circuits::NonInvertingAmplifier;
use nfbist_analog::converter::AdcDigitizer;
use nfbist_analog::fault::{AnalogFault, DriftSchedule, DriftingDut};
use nfbist_analog::opamp::OpampModel;
use nfbist_analog::units::Ohms;
use nfbist_core::power_ratio::PsdRatioEstimator;
use nfbist_core::streaming::EstimatorWindow;
use nfbist_soc::monitor::{AlarmKind, MonitorReport, MonitorSession};
use nfbist_soc::setup::BistSetup;
use nfbist_soc::SocError;

/// Healthy missions in the false-alarm census.
const HEALTHY_RUNS: usize = 40;
/// Drifting missions in the detection-delay census.
const DRIFT_RUNS: usize = 8;
/// Design false-alarm budget per mission (the probability the CUSUM
/// crosses `h` at least once over a healthy horizon).
const FALSE_ALARM_BUDGET: f64 = 0.05;
/// Absolute sample index at which the drift defect activates.
const ONSET: usize = 8_192;

/// SplitMix64 over a golden-ratio walk — an independent per-run seed
/// stream (same construction as the runtime's `derive_seed`, inlined
/// because this crate sits below the runtime in the dependency DAG).
fn derive(base: u64, index: u64) -> u64 {
    let mut z = base.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn amp() -> NonInvertingAmplifier {
    NonInvertingAmplifier::new(OpampModel::op27(), Ohms::new(10_000.0), Ohms::new(100.0)).unwrap()
}

fn monitor(seed: u64, drifting: bool) -> Result<MonitorSession, SocError> {
    let mut setup = BistSetup::quick(seed);
    setup.samples = 1 << 15;
    setup.nfft = 1_024;
    let estimator = PsdRatioEstimator::new(setup.sample_rate, setup.nfft, setup.noise_band)?;
    let monitor = MonitorSession::new(setup)?
        .digitizer(AdcDigitizer::new(12)?)
        .estimator(estimator)
        .window(EstimatorWindow::Sliding { segments: 8 })
        .warmup(4);
    Ok(if drifting {
        monitor.dut(
            DriftingDut::new(amp(), DriftSchedule::Step { at: ONSET })?
                .with_fault(AnalogFault::ExcessNoise { factor: 8.0 })?,
        )
    } else {
        monitor.dut(amp())
    })
}

/// The estimator window's effective depth in samples, reconstructed
/// from a steady-state emission point (`n_effective` is the effective
/// sample count already scaled by the in-band fraction).
fn window_span_samples(report: &MonitorReport, fraction: f64) -> f64 {
    let point = report
        .points()
        .last()
        .expect("calibration missions emit points");
    point.n_effective as f64 / fraction
}

/// Healthy fleet: the drift-alarm count over `HEALTHY_RUNS` seeded
/// missions stays below the three-sigma binomial envelope of the
/// design budget. (A detector this size cannot *prove* the rate, but
/// a miscalibrated threshold — the unscaled-CUSUM failure mode, which
/// alarms on nearly every healthy run — lands far outside the bound.)
#[test]
fn healthy_false_alarm_rate_is_within_binomial_bounds() {
    let mut false_alarms = 0usize;
    for run in 0..HEALTHY_RUNS {
        let report = monitor(derive(0x0CA1_1B0B, run as u64), false)
            .unwrap()
            .run()
            .unwrap();
        assert!(
            report.baseline_db().is_some(),
            "healthy run {run} never completed warm-up"
        );
        if report.first_event(AlarmKind::DriftAlarm).is_some() {
            false_alarms += 1;
        }
    }
    let n = HEALTHY_RUNS as f64;
    let mean = n * FALSE_ALARM_BUDGET;
    let bound = mean + 3.0 * (mean * (1.0 - FALSE_ALARM_BUDGET)).sqrt();
    assert!(
        (false_alarms as f64) <= bound,
        "{false_alarms} false alarms over {HEALTHY_RUNS} healthy runs exceeds the \
         binomial bound {bound:.1} for a {FALSE_ALARM_BUDGET} budget"
    );
}

/// Drifting fleet: every seeded step-drift mission is flagged, and the
/// observed delay past the defect onset is within the THEORY §5
/// prediction `h / (f · (δ − k))` emissions — allowing the window
/// ramp-in (the span the sliding window needs before it fully reflects
/// the shifted NF) plus a 2x safety factor on the stochastic delay.
#[test]
fn drift_is_flagged_within_theory_predicted_delay() {
    for run in 0..DRIFT_RUNS {
        let session = monitor(derive(0xD21F7, run as u64), true).unwrap();
        let stride = session.emission_stride_samples() as f64;
        let fraction = session.effective_fraction();
        let k = session.cusum_k();
        let h = session.cusum_h();
        let report = session.run().unwrap();

        let baseline = report.baseline_db().expect("warm-up must complete");
        let alarm = report
            .first_event(AlarmKind::DriftAlarm)
            .unwrap_or_else(|| panic!("drifting run {run} was never flagged"));
        assert!(
            alarm.sample_index > ONSET,
            "run {run} alarmed at {} before its defect at {ONSET}",
            alarm.sample_index
        );

        // Shift size δ (in sigmas), measured over emissions whose
        // window lies entirely past the onset.
        let span = window_span_samples(&report, fraction);
        let drifted: Vec<&nfbist_soc::monitor::MonitorPoint> = report
            .points()
            .iter()
            .filter(|p| p.sample_index >= ONSET + span.ceil() as usize)
            .collect();
        assert!(
            !drifted.is_empty(),
            "run {run}: horizon leaves no fully drifted emissions"
        );
        let delta = drifted
            .iter()
            .map(|p| (p.nf_db - baseline) / p.sigma_db)
            .sum::<f64>()
            / drifted.len() as f64;
        assert!(
            delta > k + 1.0,
            "run {run}: step shift of {delta:.2} sigma is too small to calibrate against"
        );

        // Freshness fraction f: one stride of new samples per emission
        // against the window's effective depth.
        let freshness = (stride / span).min(1.0);
        let predicted = h / (freshness * (delta - k));
        let ramp = (span / stride).ceil();
        let observed = (alarm.sample_index - ONSET) as f64 / stride;
        let budget = ramp + 2.0 * predicted + 1.0;
        assert!(
            observed <= budget,
            "run {run}: flagged {observed:.1} emissions after onset, but THEORY \
             predicts {predicted:.1} (+{ramp:.0} ramp-in; budget {budget:.1}) \
             for a {delta:.2} sigma shift"
        );
    }
}
