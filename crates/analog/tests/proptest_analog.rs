//! Property-based tests for the analog substrate: container round
//! trips, component scaling laws and converter invariants.

use nfbist_analog::bitstream::Bitstream;
use nfbist_analog::component::{Amplifier, Attenuator, Block};
use nfbist_analog::converter::{Adc, Comparator, OneBitDigitizer};
use nfbist_analog::noise::WhiteNoise;
use nfbist_analog::opamp::OpampModel;
use nfbist_analog::source::{SineSource, SquareSource, Waveform};
use nfbist_analog::units::{Gain, Hertz, Kelvin, Ohms};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bitstream_roundtrip(bits in prop::collection::vec(any::<bool>(), 0..300)) {
        let bs: Bitstream = bits.iter().copied().collect();
        prop_assert_eq!(bs.len(), bits.len());
        let back: Vec<bool> = bs.iter().collect();
        prop_assert_eq!(&back, &bits);
        // Bipolar expansion is consistent with ones().
        let ones = bs.to_bipolar().iter().filter(|&&v| v > 0.0).count();
        prop_assert_eq!(ones, bs.ones());
        prop_assert_eq!(bs.ones() + bs.to_unipolar().iter().filter(|&&v| v == 0.0).count(), bits.len());
    }

    #[test]
    fn bitstream_memory_is_one_bit_per_sample(n in 0usize..10_000) {
        let bs: Bitstream = (0..n).map(|i| i % 2 == 0).collect();
        prop_assert_eq!(bs.memory_bytes(), n.div_ceil(64) * 8);
    }

    #[test]
    fn popcount_autocorrelation_matches_float_reference(
        // 2..300 sweeps through sub-word, word-aligned and straddling
        // lengths; the lag fraction covers lag 0 through len-1.
        bits in prop::collection::vec(any::<bool>(), 2..300),
        lag_frac in 0.0f64..1.0,
    ) {
        use nfbist_dsp::correlation::{autocorrelation, Bias};
        let bs: Bitstream = bits.iter().copied().collect();
        let max_lag = ((bits.len() - 1) as f64 * lag_frac) as usize;
        let x = bs.to_bipolar();
        for bias in [Bias::Biased, Bias::Unbiased] {
            let fast = bs.autocorrelation(max_lag, bias).unwrap();
            let reference = autocorrelation(&x, max_lag, bias).unwrap();
            // ±1 lag sums are exact integers, so the popcount kernel is
            // bitwise-identical to the float reference, not just close.
            prop_assert_eq!(&fast, &reference);
        }
    }

    #[test]
    fn bulk_bit_append_matches_per_bit_push(
        head in prop::collection::vec(any::<bool>(), 0..200),
        tail in prop::collection::vec(any::<bool>(), 0..200),
    ) {
        let mut by_push = Bitstream::new();
        for &b in head.iter().chain(&tail) {
            by_push.push(b);
        }
        let mut by_bulk: Bitstream = head.iter().copied().collect();
        by_bulk.extend_from_bits(tail.iter().copied());
        prop_assert_eq!(&by_push, &by_bulk);
        // Word-wise expansion agrees with per-bit reads.
        let mut expanded = vec![0.0; by_push.len()];
        if !by_push.is_empty() {
            by_push.expand_bipolar_into(&mut expanded).unwrap();
            for (i, v) in expanded.iter().enumerate() {
                let expect = if by_push.get(i).unwrap() { 1.0 } else { -1.0 };
                prop_assert_eq!(*v, expect);
            }
        }
        // Popcount mean agrees with the float mean of the expansion.
        if !head.is_empty() {
            let hs: Bitstream = head.iter().copied().collect();
            let float_mean: f64 = hs.to_bipolar().iter().sum::<f64>() / head.len() as f64;
            prop_assert!((hs.bipolar_mean() - float_mean).abs() < 1e-12);
        }
    }

    #[test]
    fn amplifier_is_homogeneous(gain in -100.0f64..100.0, x in -10.0f64..10.0) {
        prop_assume!(gain != 0.0 && gain.abs() > 1e-6);
        let mut a = Amplifier::ideal(gain).unwrap();
        let y = a.process(&[x]);
        prop_assert!((y[0] - gain * x).abs() < 1e-9 * (1.0 + (gain * x).abs()));
    }

    #[test]
    fn attenuator_never_amplifies(db in 0.0f64..120.0, x in -100.0f64..100.0) {
        let mut att = Attenuator::from_db(db).unwrap();
        let y = att.process(&[x]);
        prop_assert!(y[0].abs() <= x.abs() + 1e-12);
        // 20 dB per decade.
        prop_assert!((att.linear_factor() - 10f64.powf(-db / 20.0)).abs() < 1e-12);
    }

    #[test]
    fn attenuator_step_quantization_bounded(db in 0.0f64..60.0, step in 0.25f64..6.0) {
        let att = Attenuator::from_db(db).unwrap().with_step(step).unwrap();
        prop_assert!((att.attenuation_db() - db).abs() <= step / 2.0 + 1e-9);
    }

    #[test]
    fn comparator_decisions_are_antisymmetric(a in -10.0f64..10.0, b in -10.0f64..10.0) {
        prop_assume!((a - b).abs() > 1e-9);
        let mut c1 = Comparator::ideal();
        let mut c2 = Comparator::ideal();
        prop_assert_eq!(c1.compare(a, b), !c2.compare(b, a));
    }

    #[test]
    fn digitizer_output_is_sign_of_difference(
        signal in prop::collection::vec(-5.0f64..5.0, 1..100),
        reference in prop::collection::vec(-5.0f64..5.0, 1..100),
    ) {
        let n = signal.len().min(reference.len());
        let s = &signal[..n];
        let r = &reference[..n];
        let bits = OneBitDigitizer::ideal().digitize(s, r).unwrap();
        for i in 0..n {
            prop_assert_eq!(bits.get(i).unwrap(), s[i] > r[i]);
        }
    }

    #[test]
    fn adc_error_bounded_by_half_lsb(bits in 4u32..16, x in -0.999f64..0.999) {
        let adc = Adc::new(bits, 1.0).unwrap();
        let y = adc.quantize(&[x]).unwrap();
        prop_assert!((y[0] - x).abs() <= adc.lsb() / 2.0 + 1e-12);
    }

    #[test]
    fn adc_is_monotone(bits in 2u32..12, a in -1.0f64..1.0, b in -1.0f64..1.0) {
        let adc = Adc::new(bits, 1.0).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let q = adc.quantize(&[lo, hi]).unwrap();
        prop_assert!(q[0] <= q[1] + 1e-12);
    }

    #[test]
    fn gain_db_roundtrip(db in -80.0f64..80.0) {
        let g = Gain::from_db(db);
        prop_assert!((g.db() - db).abs() < 1e-9);
        prop_assert!((g.power() - g.linear() * g.linear()).abs() < 1e-9 * (1.0 + g.power()));
    }

    #[test]
    fn parallel_resistance_bounds(a in 1.0f64..1e6, b in 1.0f64..1e6) {
        let rp = Ohms::new(a).parallel(Ohms::new(b));
        prop_assert!(rp.value() <= a.min(b));
        prop_assert!(rp.value() >= a.min(b) / 2.0);
        // Symmetry.
        let rq = Ohms::new(b).parallel(Ohms::new(a));
        prop_assert!((rp.value() - rq.value()).abs() < 1e-9 * rp.value());
    }

    #[test]
    fn thermal_noise_scales_linearly_with_t_and_r(
        r in 1.0f64..1e6,
        t in 1.0f64..10_000.0,
        k in 2.0f64..10.0,
    ) {
        let base = Ohms::new(r).thermal_noise_density_sq(Kelvin::new(t));
        let scaled_t = Ohms::new(r).thermal_noise_density_sq(Kelvin::new(t * k));
        let scaled_r = Ohms::new(r * k).thermal_noise_density_sq(Kelvin::new(t));
        prop_assert!((scaled_t / base - k).abs() < 1e-9);
        prop_assert!((scaled_r / base - k).abs() < 1e-9);
    }

    #[test]
    fn sine_is_bounded_by_amplitude(f in 1.0f64..10_000.0, amp in 0.0f64..100.0, t in 0.0f64..1.0) {
        let s = SineSource::new(f, amp).unwrap();
        prop_assert!(s.value_at(t).abs() <= amp + 1e-12);
    }

    #[test]
    fn square_levels_are_exact(f in 1.0f64..1_000.0, level in 0.0f64..10.0, t in 0.0f64..1.0) {
        let sq = SquareSource::new(f, level).unwrap();
        let v = sq.value_at(t);
        prop_assert!((v - level).abs() < 1e-12 || (v + level).abs() < 1e-12);
    }

    #[test]
    fn opamp_density_decreases_with_frequency(f1 in 0.1f64..1e5, k in 1.1f64..100.0) {
        let m = OpampModel::op27();
        let lo = m.voltage_noise_density_sq(f1);
        let hi = m.voltage_noise_density_sq(f1 * k);
        prop_assert!(hi <= lo + 1e-24);
        // Never below the white floor.
        prop_assert!(hi >= m.en_white() * m.en_white() - 1e-30);
    }

    #[test]
    fn opamp_mean_density_brackets_endpoints(lo in 1.0f64..100.0, span in 2.0f64..100.0) {
        let m = OpampModel::ca3140();
        let hi = lo * span;
        let mean = m.mean_voltage_noise_density_sq(lo, hi).unwrap();
        let d_lo = m.voltage_noise_density_sq(lo);
        let d_hi = m.voltage_noise_density_sq(hi);
        prop_assert!(mean <= d_lo + 1e-24);
        prop_assert!(mean >= d_hi - 1e-24);
    }

    #[test]
    fn white_noise_determinism(sigma in 0.0f64..10.0, seed in any::<u64>()) {
        let a = WhiteNoise::new(sigma, seed).unwrap().generate(32);
        let b = WhiteNoise::new(sigma, seed).unwrap().generate(32);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn opamp_corner_form_is_exact(f in 0.1f64..1e6) {
        let m = OpampModel::new("x", 2e-9, Hertz::new(50.0), 1e-13, Hertz::new(10.0)).unwrap();
        let expected = 4e-18 * (1.0 + 50.0 / f.max(0.01));
        prop_assert!((m.voltage_noise_density_sq(f) - expected).abs() < 1e-27);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The sliding lag accumulator's contract: at any point in the
    /// stream — window partially filled, exactly full, or long since
    /// wrapped — every retained-window statistic (lag products, both
    /// autocorrelation biases, ones count) is exact against the batch
    /// popcount kernel run over **exactly the retained bits**, for any
    /// chunking of the stream.
    #[test]
    fn sliding_lag_accumulator_matches_batch_over_retained_bits(
        bits in prop::collection::vec(any::<bool>(), 1..400),
        window_bits in 2usize..120,
        lag_frac in 0.0f64..1.0,
        chunk in 1usize..50,
    ) {
        use nfbist_analog::bitstream::SlidingLagAccumulator;
        use nfbist_dsp::correlation::Bias;

        let max_lag = ((window_bits - 1) as f64 * lag_frac) as usize;
        let mut acc = SlidingLagAccumulator::new(max_lag, window_bits).unwrap();
        for piece in bits.chunks(chunk) {
            let bs: Bitstream = piece.iter().copied().collect();
            acc.push(&bs);
        }

        prop_assert_eq!(acc.bits_seen(), bits.len());
        prop_assert_eq!(acc.len(), bits.len().min(window_bits));
        let (start, end) = acc.retained_range().unwrap();
        prop_assert_eq!(end, bits.len());
        prop_assert_eq!(end - start, acc.len());

        let window: Bitstream = bits[start..end].iter().copied().collect();
        prop_assert_eq!(&acc.window_contents(), &window);
        prop_assert_eq!(acc.ones(), window.ones());
        prop_assert_eq!(acc.bipolar_sum(), window.bipolar_sum());
        for lag in 0..=max_lag {
            prop_assert_eq!(acc.lag_product(lag), window.lag_product(lag));
        }
        // The ±1 lag sums are exact integers, so the full normalized
        // curves match bitwise, not just approximately.
        if acc.len() > max_lag {
            for bias in [Bias::Biased, Bias::Unbiased] {
                let windowed = acc.autocorrelation(bias).unwrap();
                let batch = window.autocorrelation(max_lag, bias).unwrap();
                prop_assert_eq!(&windowed, &batch);
            }
        }
    }

    /// The forgetting lag accumulator is a pure function of the pushed
    /// bits (chunking invisible to the last bit), its first completed
    /// block reproduces the batch autocorrelation exactly, and its
    /// effective depth stays within `[1, (1+λ)/(1-λ)]`.
    #[test]
    fn forgetting_lag_accumulator_is_chunk_invariant_and_starts_at_batch(
        bits in prop::collection::vec(any::<bool>(), 8..400),
        block_pow in 3u32..7,
        lambda in 0.05f64..0.95,
        lag_frac in 0.0f64..1.0,
        chunk in 1usize..50,
    ) {
        use nfbist_analog::bitstream::ForgettingLagAccumulator;
        use nfbist_dsp::correlation::Bias;

        // 8..=64, clamped so at least one block always completes.
        let block_bits = (1usize << block_pow).min(bits.len());
        let max_lag = ((block_bits - 1) as f64 * lag_frac) as usize;

        let mut chunked = ForgettingLagAccumulator::new(max_lag, block_bits, lambda).unwrap();
        for piece in bits.chunks(chunk) {
            let bs: Bitstream = piece.iter().copied().collect();
            chunked.push(&bs);
        }
        let mut whole = ForgettingLagAccumulator::new(max_lag, block_bits, lambda).unwrap();
        whole.push(&bits.iter().copied().collect());

        prop_assert_eq!(chunked.blocks_seen(), whole.blocks_seen());
        prop_assert_eq!(chunked.blocks_seen(), bits.len() / block_bits);
        for lag in 0..=max_lag {
            prop_assert_eq!(
                chunked.lag_product(lag).map(f64::to_bits),
                whole.lag_product(lag).map(f64::to_bits)
            );
        }
        for bias in [Bias::Biased, Bias::Unbiased] {
            let a = chunked.autocorrelation(bias).unwrap();
            let b = whole.autocorrelation(bias).unwrap();
            for (p, q) in a.iter().zip(&b) {
                prop_assert_eq!(p.to_bits(), q.to_bits());
            }
        }

        let limit = (1.0 + lambda) / (1.0 - lambda);
        prop_assert!(chunked.effective_blocks() >= 1.0 - 1e-12);
        prop_assert!(chunked.effective_blocks() <= limit + 1e-9);

        // One completed block: the decayed fold degenerates to the
        // batch autocorrelation of that block, bit for bit.
        let first_block: Bitstream = bits[..block_bits].iter().copied().collect();
        let mut first = ForgettingLagAccumulator::new(max_lag, block_bits, lambda).unwrap();
        first.push(&first_block);
        prop_assert_eq!(first.blocks_seen(), 1);
        for bias in [Bias::Biased, Bias::Unbiased] {
            let decayed = first.autocorrelation(bias).unwrap();
            let batch = first_block.autocorrelation(max_lag, bias).unwrap();
            for (p, q) in decayed.iter().zip(&batch) {
                prop_assert_eq!(p.to_bits(), q.to_bits());
            }
        }
    }
}
