//! Parametric fault injection: defective variants of any [`Dut`] and
//! any [`Digitizer`], for defect-coverage campaigns.
//!
//! The paper's argument is production test — a BIST earns its silicon
//! only if it *catches* defective parts. This module turns every
//! circuit in [`crate::circuits`] / [`crate::component`] and every
//! acquisition front-end in [`crate::converter`] into a fault target:
//!
//! * [`AnalogFault`] — parametric analog defects (input-path loss,
//!   gain drift, degraded op-amp noise, lost bandwidth, injected
//!   interference), composed onto any DUT by [`FaultyDut`];
//! * [`BitFault`] — digital defects on the stored 1-bit stream (stuck
//!   and flipped latch/memory cells), composed onto any front-end by
//!   [`FaultyDigitizer`].
//!
//! ## Production-test semantics
//!
//! A [`FaultyDut`] reports the **healthy** analytic model (`gain`,
//! `added_noise_density_sq`, expected NF) and injects faults only into
//! the signal path (`process`). This mirrors the production line: the
//! test plan — conditioning gains, screening limits, expected values —
//! is derived from the healthy design, while the physical part on the
//! socket may be defective. A session measuring a `FaultyDut`
//! therefore conditions and judges exactly as a real tester would.
//! [`FaultyDut::faulty_expected_noise_factor`] gives the analytic NF
//! the *defective* part should measure, for the fault classes that
//! shift it.
//!
//! Not every defect shifts the noise figure the same way. Input-path
//! loss and excess noise change the in-band hot/cold power ratio
//! directly. A pure output-gain deviation
//! ([`AnalogFault::GainDeviation`]) or a bandwidth loss
//! ([`AnalogFault::ReducedBandwidth`]) cancels out of the Y ratio
//! itself — but the 1-bit bench's reference amplitude is calibrated
//! for the *healthy* signal level, so such faults still move the
//! effective reference fraction off the paper's Fig. 10 working
//! point: mild deviations escape the NF screen, while gross ones
//! bias the normalization into detection or lose the reference line
//! outright (a gross reject). Fully characterizing those classes
//! needs the frequency-response BIST mode (paper §7); coverage
//! campaigns exist to quantify exactly this boundary.

use crate::bitstream::Bitstream;
use crate::converter::{CaptureStream, Digitizer, Record};
use crate::dut::{Dut, DutStream};
use crate::noise::ShapedNoise;
use crate::units::{Kelvin, Ohms};
use crate::AnalogError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Salt mixed into the per-fault noise-synthesis seeds so injected
/// fault noise never aliases the DUT's own synthesized noise stream.
const FAULT_SEED_SALT: u64 = 0xD1B5_4A32_D192_ED03;

/// A parametric analog defect, applied to a [`Dut`] by [`FaultyDut`].
///
/// # Examples
///
/// ```
/// use nfbist_analog::fault::AnalogFault;
///
/// let fault = AnalogFault::InputAttenuation { factor: 2.0 };
/// assert!(fault.validate().is_ok());
/// assert_eq!(fault.class(), "input_attenuation");
/// assert!(fault.to_string().contains("2.00"));
/// // Out-of-domain parameters are rejected.
/// assert!(AnalogFault::ExcessNoise { factor: 0.5 }.validate().is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnalogFault {
    /// Loss in the input path (cracked trace, drifted series
    /// resistance): the voltage reaching the DUT input is divided by
    /// `factor` (≥ 1) while the DUT's own noise is unchanged — so the
    /// measured NF **rises** by up to `factor²` in the added-noise
    /// term.
    InputAttenuation {
        /// Voltage attenuation factor (2.0 = the signal is halved,
        /// ≈ 6 dB of loss).
        factor: f64,
    },
    /// Output-gain drift (out-of-tolerance feedback network): the DUT
    /// output is multiplied by `factor`. The scale itself cancels in
    /// the Y ratio; what remains visible is the shifted
    /// signal-to-reference working point of the 1-bit bench (gain-down
    /// raises the effective reference fraction, gain-up sinks the
    /// reference toward the noise floor). Mild deviations therefore
    /// **escape** an NF screen; gross ones are caught indirectly.
    GainDeviation {
        /// Multiplicative gain error (0.5 = output 6 dB low).
        factor: f64,
    },
    /// Degraded op-amp noise (damaged input stage, ESD event): the
    /// input-referred added-noise *power* of the DUT is multiplied by
    /// `factor` (≥ 1). The excess is synthesized with the same
    /// spectral shape as the healthy added noise.
    ExcessNoise {
        /// Input-referred added-noise power multiplier.
        factor: f64,
    },
    /// Lost bandwidth (degraded GBW, drifted compensation): a
    /// one-pole low-pass at `corner_hz` is applied to the DUT output.
    /// Hot and cold records are filtered identically, so the in-band Y
    /// ratio barely moves; only the shifted reference working point
    /// (the filtered noise RMS drops while the reference stays put)
    /// leaks into the NF verdict. Proper detection needs the
    /// frequency-response mode.
    ReducedBandwidth {
        /// Corner frequency of the defect pole, in hertz.
        corner_hz: f64,
    },
    /// Injected interference (coupling from a neighbouring block): a
    /// deterministic sine at `frequency` is added to the DUT output.
    /// The amplitude is `amplitude_fraction` of the healthy DUT's
    /// analytic output noise RMS with the source at the 290 K
    /// reference temperature — an *absolute* level, identical in the
    /// hot and cold acquisitions, so an in-band tone compresses the Y
    /// ratio toward 1 and inflates the measured NF.
    InterferenceTone {
        /// Tone frequency in hertz.
        frequency: f64,
        /// Amplitude as a fraction of the cold-reference output noise
        /// RMS.
        amplitude_fraction: f64,
    },
}

impl AnalogFault {
    /// Checks the fault parameters.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] describing the
    /// violated constraint.
    pub fn validate(&self) -> Result<(), AnalogError> {
        match *self {
            AnalogFault::InputAttenuation { factor } => {
                if !(factor >= 1.0) || !factor.is_finite() {
                    return Err(AnalogError::InvalidParameter {
                        name: "factor",
                        reason: "input attenuation must be at least 1 and finite",
                    });
                }
            }
            AnalogFault::GainDeviation { factor } => {
                if !(factor > 0.0) || !factor.is_finite() {
                    return Err(AnalogError::InvalidParameter {
                        name: "factor",
                        reason: "gain deviation must be positive and finite",
                    });
                }
            }
            AnalogFault::ExcessNoise { factor } => {
                if !(factor >= 1.0) || !factor.is_finite() {
                    return Err(AnalogError::InvalidParameter {
                        name: "factor",
                        reason: "excess noise factor must be at least 1 and finite",
                    });
                }
            }
            AnalogFault::ReducedBandwidth { corner_hz } => {
                if !(corner_hz > 0.0) || !corner_hz.is_finite() {
                    return Err(AnalogError::InvalidParameter {
                        name: "corner_hz",
                        reason: "corner frequency must be positive and finite",
                    });
                }
            }
            AnalogFault::InterferenceTone {
                frequency,
                amplitude_fraction,
            } => {
                if !(frequency > 0.0) || !frequency.is_finite() {
                    return Err(AnalogError::InvalidParameter {
                        name: "frequency",
                        reason: "tone frequency must be positive and finite",
                    });
                }
                if !(amplitude_fraction > 0.0) || !amplitude_fraction.is_finite() {
                    return Err(AnalogError::InvalidParameter {
                        name: "amplitude_fraction",
                        reason: "tone amplitude fraction must be positive and finite",
                    });
                }
            }
        }
        Ok(())
    }

    /// The fault class this defect belongs to (stable snake_case key,
    /// used for grouping in coverage reports).
    pub fn class(&self) -> &'static str {
        match self {
            AnalogFault::InputAttenuation { .. } => "input_attenuation",
            AnalogFault::GainDeviation { .. } => "gain_deviation",
            AnalogFault::ExcessNoise { .. } => "excess_noise",
            AnalogFault::ReducedBandwidth { .. } => "reduced_bandwidth",
            AnalogFault::InterferenceTone { .. } => "interference",
        }
    }
}

impl std::fmt::Display for AnalogFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            AnalogFault::InputAttenuation { factor } => {
                write!(f, "input attenuation ÷{factor:.2}")
            }
            AnalogFault::GainDeviation { factor } => write!(f, "gain ×{factor:.2}"),
            AnalogFault::ExcessNoise { factor } => write!(f, "noise ×{factor:.2}"),
            AnalogFault::ReducedBandwidth { corner_hz } => {
                write!(f, "bandwidth {corner_hz:.0} Hz")
            }
            AnalogFault::InterferenceTone {
                frequency,
                amplitude_fraction,
            } => write!(f, "tone {frequency:.0} Hz @{amplitude_fraction:.2}·RMS"),
        }
    }
}

/// A defective variant of any [`Dut`]: the healthy analytic model with
/// a faulted signal path (see the [module docs](self) for why the
/// analytic side stays healthy).
///
/// Faults compose — the wrapper applies every injected fault, in
/// insertion order for the output-stage effects.
///
/// # Examples
///
/// ```
/// use nfbist_analog::circuits::NonInvertingAmplifier;
/// use nfbist_analog::dut::Dut;
/// use nfbist_analog::fault::{AnalogFault, FaultyDut};
/// use nfbist_analog::opamp::OpampModel;
/// use nfbist_analog::units::Ohms;
///
/// # fn main() -> Result<(), nfbist_analog::AnalogError> {
/// let healthy = NonInvertingAmplifier::new(
///     OpampModel::tl081(),
///     Ohms::new(10_000.0),
///     Ohms::new(100.0),
/// )?;
/// let rs = Ohms::new(2_000.0);
/// let expected = healthy.expected_noise_figure_db(rs, 100.0, 1_000.0)?;
///
/// let faulty = FaultyDut::new(healthy)
///     .with_fault(AnalogFault::InputAttenuation { factor: 2.0 })?;
/// // The analytic (test-plan) side stays healthy …
/// assert_eq!(faulty.expected_noise_figure_db(rs, 100.0, 1_000.0)?, expected);
/// // … while the defective part should *measure* several dB worse.
/// let defective = faulty.faulty_expected_noise_figure_db(rs, 100.0, 1_000.0)?;
/// assert!(defective > expected + 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FaultyDut<D> {
    inner: D,
    faults: Vec<AnalogFault>,
}

impl<D: Dut> FaultyDut<D> {
    /// Wraps a healthy DUT with no faults yet (an identity wrapper).
    pub fn new(inner: D) -> Self {
        FaultyDut {
            inner,
            faults: Vec::new(),
        }
    }

    /// Adds one fault (builder style).
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for out-of-domain
    /// fault parameters.
    pub fn with_fault(mut self, fault: AnalogFault) -> Result<Self, AnalogError> {
        fault.validate()?;
        self.faults.push(fault);
        Ok(self)
    }

    /// Adds every fault in `faults`, in order.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for the first
    /// out-of-domain fault.
    pub fn with_faults(
        mut self,
        faults: impl IntoIterator<Item = AnalogFault>,
    ) -> Result<Self, AnalogError> {
        for fault in faults {
            self = self.with_fault(fault)?;
        }
        Ok(self)
    }

    /// The wrapped healthy DUT.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// The injected faults, in application order.
    pub fn faults(&self) -> &[AnalogFault] {
        &self.faults
    }

    /// The noise factor the *defective* part should measure over the
    /// band, accounting for the fault classes that shift it
    /// analytically: [`AnalogFault::ExcessNoise`] multiplies the
    /// added-noise term and [`AnalogFault::InputAttenuation`] divides
    /// the source power seen by the DUT (`F' = 1 + k·a²·(F−1)` for
    /// noise factor `k` and attenuation `a`). Gain, bandwidth,
    /// interference and bit faults leave the analytic NF unchanged
    /// (their signatures are signal-level, not density-level).
    ///
    /// # Errors
    ///
    /// Propagates the healthy model's errors.
    pub fn faulty_expected_noise_factor(
        &self,
        rs: Ohms,
        f_lo: f64,
        f_hi: f64,
    ) -> Result<f64, AnalogError> {
        let healthy = self.inner.expected_noise_factor(rs, f_lo, f_hi)?;
        let mut scale = 1.0;
        for fault in &self.faults {
            match *fault {
                AnalogFault::ExcessNoise { factor } => scale *= factor,
                AnalogFault::InputAttenuation { factor } => scale *= factor * factor,
                _ => {}
            }
        }
        Ok(1.0 + scale * (healthy - 1.0))
    }

    /// [`FaultyDut::faulty_expected_noise_factor`] in dB.
    ///
    /// # Errors
    ///
    /// Propagates the healthy model's errors.
    pub fn faulty_expected_noise_figure_db(
        &self,
        rs: Ohms,
        f_lo: f64,
        f_hi: f64,
    ) -> Result<f64, AnalogError> {
        Ok(10.0 * self.faulty_expected_noise_factor(rs, f_lo, f_hi)?.log10())
    }

    /// Analytic output noise RMS of the healthy DUT with the source at
    /// the 290 K reference — the absolute level interference
    /// amplitudes are specified against.
    fn reference_output_rms(&self, rs: Ohms, sample_rate: f64) -> Result<f64, AnalogError> {
        let nyquist = sample_rate / 2.0;
        let source = rs.thermal_noise_density_sq(Kelvin::REFERENCE);
        let added = self.inner.mean_added_noise_density_sq(rs, 1.0, nyquist)?;
        Ok(self.inner.gain() * ((source + added) * nyquist).sqrt())
    }
}

impl<D: Dut> Dut for FaultyDut<D> {
    fn label(&self) -> String {
        if self.faults.is_empty() {
            self.inner.label()
        } else {
            let list: Vec<String> = self.faults.iter().map(|f| f.to_string()).collect();
            format!("{} [faults: {}]", self.inner.label(), list.join(", "))
        }
    }

    fn gain(&self) -> f64 {
        self.inner.gain()
    }

    fn added_noise_density_sq(&self, rs: Ohms, f: f64) -> f64 {
        self.inner.added_noise_density_sq(rs, f)
    }

    fn mean_added_noise_density_sq(
        &self,
        rs: Ohms,
        f_lo: f64,
        f_hi: f64,
    ) -> Result<f64, AnalogError> {
        self.inner.mean_added_noise_density_sq(rs, f_lo, f_hi)
    }

    fn process(
        &self,
        input: &[f64],
        rs: Ohms,
        sample_rate: f64,
        seed: u64,
    ) -> Result<Vec<f64>, AnalogError> {
        // Input-path faults first: the DUT sees the attenuated signal.
        let mut attenuation = 1.0;
        for fault in &self.faults {
            if let AnalogFault::InputAttenuation { factor } = fault {
                attenuation *= factor;
            }
        }
        let mut out = if attenuation != 1.0 {
            let scaled: Vec<f64> = input.iter().map(|v| v / attenuation).collect();
            self.inner.process(&scaled, rs, sample_rate, seed)?
        } else {
            self.inner.process(input, rs, sample_rate, seed)?
        };

        // Output-stage faults, in insertion order.
        for (i, fault) in self.faults.iter().enumerate() {
            match *fault {
                AnalogFault::InputAttenuation { .. } => {}
                AnalogFault::GainDeviation { factor } => {
                    for v in &mut out {
                        *v *= factor;
                    }
                }
                AnalogFault::ExcessNoise { factor } => {
                    // Excess with the healthy spectral shape, at the
                    // output: (k−1)·added(f)·G².
                    let g = self.inner.gain();
                    let fault_seed =
                        seed.wrapping_add((i as u64 + 1).wrapping_mul(FAULT_SEED_SALT));
                    let mut noise = ShapedNoise::new(
                        |f| {
                            if f == 0.0 {
                                0.0
                            } else {
                                (factor - 1.0) * self.inner.added_noise_density_sq(rs, f) * g * g
                            }
                        },
                        sample_rate,
                        1 << 15,
                        fault_seed,
                    )?;
                    let extra = noise.generate(out.len())?;
                    for (v, n) in out.iter_mut().zip(&extra) {
                        *v += n;
                    }
                }
                AnalogFault::ReducedBandwidth { corner_hz } => {
                    let alpha = 1.0 - (-std::f64::consts::TAU * corner_hz / sample_rate).exp();
                    let mut y = 0.0;
                    for v in &mut out {
                        y += alpha * (*v - y);
                        *v = y;
                    }
                }
                AnalogFault::InterferenceTone {
                    frequency,
                    amplitude_fraction,
                } => {
                    let amplitude =
                        amplitude_fraction * self.reference_output_rms(rs, sample_rate)?;
                    let w = std::f64::consts::TAU * frequency / sample_rate;
                    for (idx, v) in out.iter_mut().enumerate() {
                        *v += amplitude * (w * idx as f64).sin();
                    }
                }
            }
        }
        Ok(out)
    }

    fn process_stream<'a>(
        &'a self,
        rs: Ohms,
        sample_rate: f64,
        seed: u64,
    ) -> Result<Box<dyn DutStream + 'a>, AnalogError> {
        // Input-path loss folds into a per-chunk input scale; every
        // output-stage fault becomes a stateful stage applied to the
        // inner stream's output as it emerges. Per-element arithmetic
        // and state evolution are exactly the batch `process`'s, so
        // chunked output concatenates bit-identically — which is what
        // lets a sequential screen snapshot a *faulty* DUT mid-record.
        let mut attenuation = 1.0;
        for fault in &self.faults {
            if let AnalogFault::InputAttenuation { factor } = fault {
                attenuation *= factor;
            }
        }
        let mut stages = Vec::new();
        for (i, fault) in self.faults.iter().enumerate() {
            match *fault {
                AnalogFault::InputAttenuation { .. } => {}
                AnalogFault::GainDeviation { factor } => {
                    stages.push(OutputFaultStage::Gain { factor });
                }
                AnalogFault::ExcessNoise { factor } => {
                    let g = self.inner.gain();
                    let fault_seed =
                        seed.wrapping_add((i as u64 + 1).wrapping_mul(FAULT_SEED_SALT));
                    let noise = ShapedNoise::new(
                        |f| {
                            if f == 0.0 {
                                0.0
                            } else {
                                (factor - 1.0) * self.inner.added_noise_density_sq(rs, f) * g * g
                            }
                        },
                        sample_rate,
                        1 << 15,
                        fault_seed,
                    )?;
                    stages.push(OutputFaultStage::ExcessNoise { noise });
                }
                AnalogFault::ReducedBandwidth { corner_hz } => {
                    let alpha = 1.0 - (-std::f64::consts::TAU * corner_hz / sample_rate).exp();
                    stages.push(OutputFaultStage::ReducedBandwidth { alpha, y: 0.0 });
                }
                AnalogFault::InterferenceTone {
                    frequency,
                    amplitude_fraction,
                } => {
                    let amplitude =
                        amplitude_fraction * self.reference_output_rms(rs, sample_rate)?;
                    let w = std::f64::consts::TAU * frequency / sample_rate;
                    stages.push(OutputFaultStage::InterferenceTone { amplitude, w });
                }
            }
        }
        Ok(Box::new(FaultyDutStream {
            inner: self.inner.process_stream(rs, sample_rate, seed)?,
            attenuation,
            stages,
            scaled: Vec::new(),
            produced: Vec::new(),
            emitted: 0,
        }))
    }
}

/// One output-stage fault as carried streaming state. Stages apply in
/// insertion order per chunk; each one's state (noise generator
/// position, filter memory, tone phase) evolves exactly as the batch
/// pass over the whole record would evolve it.
enum OutputFaultStage {
    /// Memoryless output scale.
    Gain { factor: f64 },
    /// Sequential synthesis of the excess-noise overlay — the same
    /// generator the batch path runs once over the full record.
    ExcessNoise { noise: ShapedNoise },
    /// One-pole low-pass with its output state carried across chunks.
    ReducedBandwidth { alpha: f64, y: f64 },
    /// Additive tone phased by the global output-sample index.
    InterferenceTone { amplitude: f64, w: f64 },
}

/// Streaming counterpart of [`FaultyDut::process`]: the healthy inner
/// stream with the fault stages applied to its output as it emerges.
struct FaultyDutStream<'a> {
    inner: Box<dyn DutStream + 'a>,
    attenuation: f64,
    stages: Vec<OutputFaultStage>,
    /// Reusable input-scaling buffer (input-attenuation faults).
    scaled: Vec<f64>,
    /// Reusable inner-output buffer the stages mutate in place.
    produced: Vec<f64>,
    /// Global output-sample index (tone phase anchor).
    emitted: usize,
}

impl FaultyDutStream<'_> {
    /// Runs every fault stage over `self.produced` in place, then
    /// appends it to `out` and advances the global sample index.
    fn apply_stages(&mut self, out: &mut Vec<f64>) -> Result<(), AnalogError> {
        if self.produced.is_empty() {
            return Ok(());
        }
        let len = self.produced.len();
        let base = self.emitted;
        for stage in &mut self.stages {
            match stage {
                OutputFaultStage::Gain { factor } => {
                    for v in &mut self.produced {
                        *v *= *factor;
                    }
                }
                OutputFaultStage::ExcessNoise { noise } => {
                    let extra = noise.generate(len)?;
                    for (v, n) in self.produced.iter_mut().zip(&extra) {
                        *v += n;
                    }
                }
                OutputFaultStage::ReducedBandwidth { alpha, y } => {
                    for v in &mut self.produced {
                        *y += *alpha * (*v - *y);
                        *v = *y;
                    }
                }
                OutputFaultStage::InterferenceTone { amplitude, w } => {
                    for (k, v) in self.produced.iter_mut().enumerate() {
                        *v += *amplitude * (*w * (base + k) as f64).sin();
                    }
                }
            }
        }
        out.extend_from_slice(&self.produced);
        self.emitted += len;
        Ok(())
    }
}

impl DutStream for FaultyDutStream<'_> {
    fn push(&mut self, input: &[f64], out: &mut Vec<f64>) -> Result<(), AnalogError> {
        if input.is_empty() {
            return Ok(());
        }
        self.produced.clear();
        if self.attenuation != 1.0 {
            self.scaled.clear();
            let a = self.attenuation;
            self.scaled.extend(input.iter().map(|v| v / a));
            self.inner.push(&self.scaled, &mut self.produced)?;
        } else {
            self.inner.push(input, &mut self.produced)?;
        }
        self.apply_stages(out)
    }

    fn finish(&mut self, out: &mut Vec<f64>) -> Result<(), AnalogError> {
        self.produced.clear();
        self.inner.finish(&mut self.produced)?;
        self.apply_stages(out)
    }

    fn is_incremental(&self) -> bool {
        self.inner.is_incremental()
    }
}

/// The time profile of a drifting defect's severity: 0 (healthy) to 1
/// (the composed faults at full strength), as a function of the
/// absolute sample index — the synthesizable models of aging and
/// temperature excursions a continuous monitor exists to catch.
///
/// # Examples
///
/// ```
/// use nfbist_analog::fault::DriftSchedule;
///
/// let ramp = DriftSchedule::Linear { onset: 100, ramp: 100 };
/// assert_eq!(ramp.severity(0), 0.0);
/// assert_eq!(ramp.severity(150), 0.5);
/// assert_eq!(ramp.severity(400), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriftSchedule {
    /// Severity ramps linearly from 0 at `onset` to 1 at
    /// `onset + ramp` (a temperature ramp, a slow parametric drift).
    Linear {
        /// Sample index where the drift begins.
        onset: usize,
        /// Samples taken to reach full severity (≥ 1).
        ramp: usize,
    },
    /// Severity steps from 0 to 1 at `at` (a latent defect activating).
    Step {
        /// Sample index of the step.
        at: usize,
    },
    /// Severity approaches 1 exponentially after `onset` with time
    /// constant `tau` samples: `1 − exp(−(t − onset)/τ)` (classic
    /// aging saturation).
    Exponential {
        /// Sample index where the drift begins.
        onset: usize,
        /// Time constant in samples (≥ 1).
        tau: usize,
    },
}

impl DriftSchedule {
    /// Checks the schedule parameters.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for a zero ramp or
    /// time constant.
    pub fn validate(&self) -> Result<(), AnalogError> {
        match *self {
            DriftSchedule::Linear { ramp, .. } => {
                if ramp == 0 {
                    return Err(AnalogError::InvalidParameter {
                        name: "ramp",
                        reason: "linear drift ramp must span at least one sample",
                    });
                }
            }
            DriftSchedule::Step { .. } => {}
            DriftSchedule::Exponential { tau, .. } => {
                if tau == 0 {
                    return Err(AnalogError::InvalidParameter {
                        name: "tau",
                        reason: "exponential drift time constant must be at least one sample",
                    });
                }
            }
        }
        Ok(())
    }

    /// Severity in `[0, 1]` at absolute sample index `t`.
    pub fn severity(&self, t: usize) -> f64 {
        match *self {
            DriftSchedule::Linear { onset, ramp } => {
                if t < onset {
                    0.0
                } else {
                    (((t - onset) as f64) / ramp as f64).min(1.0)
                }
            }
            DriftSchedule::Step { at } => {
                if t >= at {
                    1.0
                } else {
                    0.0
                }
            }
            DriftSchedule::Exponential { onset, tau } => {
                if t < onset {
                    0.0
                } else {
                    1.0 - (-((t - onset) as f64) / tau as f64).exp()
                }
            }
        }
    }
}

impl std::fmt::Display for DriftSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            DriftSchedule::Linear { onset, ramp } => {
                write!(f, "linear drift @{onset}+{ramp}")
            }
            DriftSchedule::Step { at } => write!(f, "step drift @{at}"),
            DriftSchedule::Exponential { onset, tau } => {
                write!(f, "exp drift @{onset} τ={tau}")
            }
        }
    }
}

/// Memoized severity lookup: severity is piecewise-constant over
/// `stride`-sample blocks (evaluated at each block's first sample), so
/// per-sample reads cost one division plus a cached compare. Both the
/// batch and streaming passes read severities through this cursor —
/// a pure function of the absolute sample index — which is what makes
/// the drifting output bit-identical across chunkings.
struct SeverityCursor {
    schedule: DriftSchedule,
    stride: usize,
    block: Option<usize>,
    s: f64,
}

impl SeverityCursor {
    fn new(schedule: DriftSchedule, stride: usize) -> Self {
        SeverityCursor {
            schedule,
            stride,
            block: None,
            s: 0.0,
        }
    }

    fn at(&mut self, t: usize) -> f64 {
        let b = t / self.stride;
        if self.block != Some(b) {
            self.block = Some(b);
            self.s = self.schedule.severity(b * self.stride);
        }
        self.s
    }
}

/// A [`Dut`] whose defect grows over the mission: the composed
/// [`AnalogFault`]s are applied at a time-varying severity following a
/// [`DriftSchedule`] over the absolute sample index. At severity 0 every
/// stage is the identity; at severity 1 the signal path matches
/// [`FaultyDut`] with the same faults.
///
/// Severity is quantized to `update_stride`-sample blocks (default
/// 1024), evaluated at each block's first sample — so the drifting
/// output, like every other streaming path, is **bit-identical across
/// chunk sizes**, and [`DriftingDut::process_stream`] concatenates to
/// exactly [`DriftingDut::process`].
///
/// Parameter interpolation per fault class at severity `s`:
/// input attenuation and gain deviate as `1 + s·(factor − 1)`, excess
/// noise adds `√s` of the full-severity overlay (excess *power* grows
/// as `s·(k − 1)`), the bandwidth pole's smoothing coefficient slides
/// from pass-through to the full-severity corner, and interference
/// amplitude scales linearly with `s`.
///
/// Like [`FaultyDut`], the analytic (test-plan) side stays healthy;
/// [`DriftingDut::drifting_expected_noise_factor_at`] predicts what the
/// degraded part should measure at a given mission point.
///
/// # Examples
///
/// ```
/// use nfbist_analog::circuits::NonInvertingAmplifier;
/// use nfbist_analog::fault::{AnalogFault, DriftSchedule, DriftingDut};
/// use nfbist_analog::opamp::OpampModel;
/// use nfbist_analog::units::Ohms;
///
/// # fn main() -> Result<(), nfbist_analog::AnalogError> {
/// let healthy = NonInvertingAmplifier::new(
///     OpampModel::tl081(),
///     Ohms::new(10_000.0),
///     Ohms::new(100.0),
/// )?;
/// let aging = DriftingDut::new(healthy, DriftSchedule::Linear { onset: 10_000, ramp: 50_000 })?
///     .with_fault(AnalogFault::ExcessNoise { factor: 4.0 })?;
/// assert_eq!(aging.severity_at(0), 0.0);
/// assert_eq!(aging.severity_at(100_000), 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DriftingDut<D> {
    inner: D,
    faults: Vec<AnalogFault>,
    schedule: DriftSchedule,
    update_stride: usize,
}

impl<D: Dut> DriftingDut<D> {
    /// Wraps a healthy DUT with a drift schedule and no faults yet.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for an out-of-domain
    /// schedule.
    pub fn new(inner: D, schedule: DriftSchedule) -> Result<Self, AnalogError> {
        schedule.validate()?;
        Ok(DriftingDut {
            inner,
            faults: Vec::new(),
            schedule,
            update_stride: 1024,
        })
    }

    /// Adds one full-severity target fault (builder style).
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for out-of-domain
    /// fault parameters.
    pub fn with_fault(mut self, fault: AnalogFault) -> Result<Self, AnalogError> {
        fault.validate()?;
        self.faults.push(fault);
        Ok(self)
    }

    /// Adds every fault in `faults`, in order.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for the first
    /// out-of-domain fault.
    pub fn with_faults(
        mut self,
        faults: impl IntoIterator<Item = AnalogFault>,
    ) -> Result<Self, AnalogError> {
        for fault in faults {
            self = self.with_fault(fault)?;
        }
        Ok(self)
    }

    /// Sets the severity quantization stride in samples (builder
    /// style; default 1024).
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for a zero stride.
    pub fn update_stride(mut self, stride: usize) -> Result<Self, AnalogError> {
        if stride == 0 {
            return Err(AnalogError::InvalidParameter {
                name: "update_stride",
                reason: "severity update stride must be at least one sample",
            });
        }
        self.update_stride = stride;
        Ok(self)
    }

    /// The wrapped healthy DUT.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// The full-severity target faults, in application order.
    pub fn faults(&self) -> &[AnalogFault] {
        &self.faults
    }

    /// The drift schedule.
    pub fn schedule(&self) -> DriftSchedule {
        self.schedule
    }

    /// The severity quantization stride in samples.
    pub fn update_stride_samples(&self) -> usize {
        self.update_stride
    }

    /// The severity actually applied at absolute sample `t` (quantized
    /// to the update stride).
    pub fn severity_at(&self, t: usize) -> f64 {
        self.schedule.severity(t - t % self.update_stride)
    }

    /// The noise factor the degraded part should measure at mission
    /// point `t`: the [`FaultyDut::faulty_expected_noise_factor`]
    /// composition with each fault's parameters interpolated to the
    /// severity at `t` — `F'(t) = 1 + a(t)²·k(t)·(F − 1)`.
    ///
    /// # Errors
    ///
    /// Propagates the healthy model's errors.
    pub fn drifting_expected_noise_factor_at(
        &self,
        t: usize,
        rs: Ohms,
        f_lo: f64,
        f_hi: f64,
    ) -> Result<f64, AnalogError> {
        let healthy = self.inner.expected_noise_factor(rs, f_lo, f_hi)?;
        let s = self.severity_at(t);
        let mut scale = 1.0;
        for fault in &self.faults {
            match *fault {
                AnalogFault::ExcessNoise { factor } => scale *= 1.0 + s * (factor - 1.0),
                AnalogFault::InputAttenuation { factor } => {
                    let a = 1.0 + s * (factor - 1.0);
                    scale *= a * a;
                }
                _ => {}
            }
        }
        Ok(1.0 + scale * (healthy - 1.0))
    }

    /// [`DriftingDut::drifting_expected_noise_factor_at`] in dB.
    ///
    /// # Errors
    ///
    /// Propagates the healthy model's errors.
    pub fn drifting_expected_noise_figure_db_at(
        &self,
        t: usize,
        rs: Ohms,
        f_lo: f64,
        f_hi: f64,
    ) -> Result<f64, AnalogError> {
        Ok(10.0
            * self
                .drifting_expected_noise_factor_at(t, rs, f_lo, f_hi)?
                .log10())
    }

    fn cursor(&self) -> SeverityCursor {
        SeverityCursor::new(self.schedule, self.update_stride)
    }

    fn has_input_attenuation(&self) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, AnalogFault::InputAttenuation { .. }))
    }

    /// Per-sample input divisor at severity `s`: the product of every
    /// input-attenuation fault interpolated to `1 + s·(a − 1)`.
    fn input_divisor(&self, s: f64) -> f64 {
        let mut div = 1.0;
        for fault in &self.faults {
            if let AnalogFault::InputAttenuation { factor } = *fault {
                div *= 1.0 + s * (factor - 1.0);
            }
        }
        div
    }

    /// Analytic output noise RMS of the healthy DUT with the source at
    /// the 290 K reference (interference amplitudes are absolute, as in
    /// [`FaultyDut`]).
    fn reference_output_rms(&self, rs: Ohms, sample_rate: f64) -> Result<f64, AnalogError> {
        let nyquist = sample_rate / 2.0;
        let source = rs.thermal_noise_density_sq(Kelvin::REFERENCE);
        let added = self.inner.mean_added_noise_density_sq(rs, 1.0, nyquist)?;
        Ok(self.inner.gain() * ((source + added) * nyquist).sqrt())
    }

    /// Builds the output-stage list shared by the batch and streaming
    /// passes (full-severity parameters; severity interpolation happens
    /// per sample at application time).
    fn build_stages(
        &self,
        rs: Ohms,
        sample_rate: f64,
        seed: u64,
    ) -> Result<Vec<DriftStage>, AnalogError> {
        let mut stages = Vec::new();
        for (i, fault) in self.faults.iter().enumerate() {
            match *fault {
                AnalogFault::InputAttenuation { .. } => {}
                AnalogFault::GainDeviation { factor } => {
                    stages.push(DriftStage::Gain { factor });
                }
                AnalogFault::ExcessNoise { factor } => {
                    let g = self.inner.gain();
                    let fault_seed =
                        seed.wrapping_add((i as u64 + 1).wrapping_mul(FAULT_SEED_SALT));
                    let noise = ShapedNoise::new(
                        |f| {
                            if f == 0.0 {
                                0.0
                            } else {
                                (factor - 1.0) * self.inner.added_noise_density_sq(rs, f) * g * g
                            }
                        },
                        sample_rate,
                        1 << 15,
                        fault_seed,
                    )?;
                    stages.push(DriftStage::ExcessNoise { noise });
                }
                AnalogFault::ReducedBandwidth { corner_hz } => {
                    let alpha = 1.0 - (-std::f64::consts::TAU * corner_hz / sample_rate).exp();
                    stages.push(DriftStage::ReducedBandwidth { alpha, y: 0.0 });
                }
                AnalogFault::InterferenceTone {
                    frequency,
                    amplitude_fraction,
                } => {
                    let amplitude =
                        amplitude_fraction * self.reference_output_rms(rs, sample_rate)?;
                    let w = std::f64::consts::TAU * frequency / sample_rate;
                    stages.push(DriftStage::InterferenceTone { amplitude, w });
                }
            }
        }
        Ok(stages)
    }
}

/// One drifting output stage: the full-severity parameters of the
/// matching [`OutputFaultStage`], applied per sample at the severity of
/// that sample's stride block.
enum DriftStage {
    /// `v *= 1 + s·(factor − 1)`.
    Gain { factor: f64 },
    /// `v += √s · n` with `n` from the full-severity overlay generator
    /// (which advances one draw per sample regardless of severity, so
    /// the sequence is chunking- and severity-independent).
    ExcessNoise { noise: ShapedNoise },
    /// One-pole smoother with `α_eff = 1 + s·(α − 1)` (pass-through at
    /// severity 0), output state carried across samples.
    ReducedBandwidth { alpha: f64, y: f64 },
    /// `v += s · amplitude · sin(w·t)`, phased by the absolute index.
    InterferenceTone { amplitude: f64, w: f64 },
}

impl DriftStage {
    /// Applies this stage to `chunk`, whose first sample sits at
    /// absolute output index `base`. Exactly this routine runs in both
    /// the batch and streaming passes, so their per-sample arithmetic
    /// cannot diverge.
    fn apply(
        &mut self,
        chunk: &mut [f64],
        base: usize,
        mut cursor: SeverityCursor,
    ) -> Result<(), AnalogError> {
        match self {
            DriftStage::Gain { factor } => {
                for (k, v) in chunk.iter_mut().enumerate() {
                    let s = cursor.at(base + k);
                    *v *= 1.0 + s * (*factor - 1.0);
                }
            }
            DriftStage::ExcessNoise { noise } => {
                let extra = noise.generate(chunk.len())?;
                for (k, (v, n)) in chunk.iter_mut().zip(&extra).enumerate() {
                    let s = cursor.at(base + k);
                    *v += s.sqrt() * n;
                }
            }
            DriftStage::ReducedBandwidth { alpha, y } => {
                for (k, v) in chunk.iter_mut().enumerate() {
                    let s = cursor.at(base + k);
                    let a = 1.0 + s * (*alpha - 1.0);
                    *y += a * (*v - *y);
                    *v = *y;
                }
            }
            DriftStage::InterferenceTone { amplitude, w } => {
                for (k, v) in chunk.iter_mut().enumerate() {
                    let s = cursor.at(base + k);
                    *v += s * *amplitude * (*w * (base + k) as f64).sin();
                }
            }
        }
        Ok(())
    }
}

impl<D: Dut> Dut for DriftingDut<D> {
    fn label(&self) -> String {
        if self.faults.is_empty() {
            self.inner.label()
        } else {
            let list: Vec<String> = self.faults.iter().map(|f| f.to_string()).collect();
            format!(
                "{} [{}: {}]",
                self.inner.label(),
                self.schedule,
                list.join(", ")
            )
        }
    }

    fn gain(&self) -> f64 {
        self.inner.gain()
    }

    fn added_noise_density_sq(&self, rs: Ohms, f: f64) -> f64 {
        self.inner.added_noise_density_sq(rs, f)
    }

    fn mean_added_noise_density_sq(
        &self,
        rs: Ohms,
        f_lo: f64,
        f_hi: f64,
    ) -> Result<f64, AnalogError> {
        self.inner.mean_added_noise_density_sq(rs, f_lo, f_hi)
    }

    fn process(
        &self,
        input: &[f64],
        rs: Ohms,
        sample_rate: f64,
        seed: u64,
    ) -> Result<Vec<f64>, AnalogError> {
        let mut out = if self.has_input_attenuation() {
            let mut cursor = self.cursor();
            let scaled: Vec<f64> = input
                .iter()
                .enumerate()
                .map(|(t, v)| v / self.input_divisor(cursor.at(t)))
                .collect();
            self.inner.process(&scaled, rs, sample_rate, seed)?
        } else {
            self.inner.process(input, rs, sample_rate, seed)?
        };
        let mut stages = self.build_stages(rs, sample_rate, seed)?;
        for stage in &mut stages {
            stage.apply(&mut out, 0, self.cursor())?;
        }
        Ok(out)
    }

    fn process_stream<'a>(
        &'a self,
        rs: Ohms,
        sample_rate: f64,
        seed: u64,
    ) -> Result<Box<dyn DutStream + 'a>, AnalogError> {
        Ok(Box::new(DriftingDutStream {
            dut: self,
            inner: self.inner.process_stream(rs, sample_rate, seed)?,
            stages: self.build_stages(rs, sample_rate, seed)?,
            scaled: Vec::new(),
            produced: Vec::new(),
            fed: 0,
            emitted: 0,
        }))
    }
}

/// Streaming counterpart of [`DriftingDut::process`]: the healthy inner
/// stream with the drifting stages applied to its output as it emerges,
/// severities read off the absolute input/output indices.
struct DriftingDutStream<'a, D> {
    dut: &'a DriftingDut<D>,
    inner: Box<dyn DutStream + 'a>,
    stages: Vec<DriftStage>,
    /// Reusable input-scaling buffer (input-attenuation faults).
    scaled: Vec<f64>,
    /// Reusable inner-output buffer the stages mutate in place.
    produced: Vec<f64>,
    /// Global input-sample index (attenuation severity anchor).
    fed: usize,
    /// Global output-sample index (stage severity/phase anchor).
    emitted: usize,
}

impl<D: Dut> DriftingDutStream<'_, D> {
    fn apply_stages(&mut self, out: &mut Vec<f64>) -> Result<(), AnalogError> {
        if self.produced.is_empty() {
            return Ok(());
        }
        let base = self.emitted;
        for stage in &mut self.stages {
            stage.apply(&mut self.produced, base, self.dut.cursor())?;
        }
        out.extend_from_slice(&self.produced);
        self.emitted += self.produced.len();
        Ok(())
    }
}

impl<D: Dut> DutStream for DriftingDutStream<'_, D> {
    fn push(&mut self, input: &[f64], out: &mut Vec<f64>) -> Result<(), AnalogError> {
        if input.is_empty() {
            return Ok(());
        }
        self.produced.clear();
        if self.dut.has_input_attenuation() {
            self.scaled.clear();
            let mut cursor = self.dut.cursor();
            let base = self.fed;
            self.scaled.extend(
                input
                    .iter()
                    .enumerate()
                    .map(|(k, v)| v / self.dut.input_divisor(cursor.at(base + k))),
            );
            self.inner.push(&self.scaled, &mut self.produced)?;
        } else {
            self.inner.push(input, &mut self.produced)?;
        }
        self.fed += input.len();
        self.apply_stages(out)
    }

    fn finish(&mut self, out: &mut Vec<f64>) -> Result<(), AnalogError> {
        self.produced.clear();
        self.inner.finish(&mut self.produced)?;
        self.apply_stages(out)
    }

    fn is_incremental(&self) -> bool {
        self.inner.is_incremental()
    }
}

/// A digital defect on the stored 1-bit stream, applied by
/// [`FaultyDigitizer`]. Defect positions are fixed per wrapper — the
/// semantics of bad latch/memory *cells*, which sit at fixed addresses
/// — so records stay deterministic per seed.
///
/// # Examples
///
/// ```
/// use nfbist_analog::bitstream::Bitstream;
/// use nfbist_analog::fault::BitFault;
///
/// let bits: Bitstream = [true, false, true, false].into_iter().collect();
/// let fault = BitFault::StuckBits { period: 2, value: false };
/// let broken = fault.apply(&bits);
/// // Every 2nd cell (positions 0, 2, …) reads back stuck-at-0.
/// assert_eq!(broken.to_bipolar(), vec![-1.0, -1.0, -1.0, -1.0]);
/// assert_eq!(fault.class(), "stuck_bits");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BitFault {
    /// Every `period`-th stored bit (positions `0, period, 2·period,
    /// …`) reads back as `value` regardless of the comparator
    /// decision — a stuck latch or memory column.
    StuckBits {
        /// Defect spacing in samples (1 sticks every bit).
        period: usize,
        /// The value the defective cells are stuck at.
        value: bool,
    },
    /// A random-but-fixed subset of positions reads back inverted —
    /// scattered single-cell defects. Each position is defective with
    /// `probability`, drawn deterministically from `seed`.
    FlippedBits {
        /// Per-position defect probability, in `(0, 1]`.
        probability: f64,
        /// Seed fixing the defective positions.
        seed: u64,
    },
}

impl BitFault {
    /// Checks the fault parameters.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] describing the
    /// violated constraint.
    pub fn validate(&self) -> Result<(), AnalogError> {
        match *self {
            BitFault::StuckBits { period, .. } => {
                if period == 0 {
                    return Err(AnalogError::InvalidParameter {
                        name: "period",
                        reason: "stuck-bit period must be at least 1",
                    });
                }
            }
            BitFault::FlippedBits { probability, .. } => {
                if !(probability > 0.0) || !(probability <= 1.0) {
                    return Err(AnalogError::InvalidParameter {
                        name: "probability",
                        reason: "flip probability must be in (0, 1]",
                    });
                }
            }
        }
        Ok(())
    }

    /// The fault class this defect belongs to (stable snake_case key).
    pub fn class(&self) -> &'static str {
        match self {
            BitFault::StuckBits { .. } => "stuck_bits",
            BitFault::FlippedBits { .. } => "flipped_bits",
        }
    }

    /// Applies the defect to a stored record, returning the corrupted
    /// stream (same length).
    pub fn apply(&self, bits: &Bitstream) -> Bitstream {
        match *self {
            BitFault::StuckBits { period, value } => bits
                .iter()
                .enumerate()
                .map(|(i, b)| if i.is_multiple_of(period) { value } else { b })
                .collect(),
            BitFault::FlippedBits { probability, seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                bits.iter()
                    .map(|b| {
                        if rng.gen::<f64>() < probability {
                            !b
                        } else {
                            b
                        }
                    })
                    .collect()
            }
        }
    }
}

impl std::fmt::Display for BitFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            BitFault::StuckBits { period, value } => {
                write!(f, "stuck@{} every {period}", u8::from(value))
            }
            BitFault::FlippedBits { probability, .. } => {
                write!(f, "flips p={probability:.3}")
            }
        }
    }
}

/// A defective variant of any [`Digitizer`]: the acquisition contract
/// (reference use, conditioning gain, bits per sample) is untouched,
/// but stored **1-bit** records pass through the injected
/// [`BitFault`]s in insertion order. Multi-bit sample records are
/// returned unchanged — these faults model the comparator cell's
/// latch/memory path (paper Fig. 6), which the ADC bench does not
/// share.
///
/// # Examples
///
/// ```
/// use nfbist_analog::converter::{Digitizer, OneBitDigitizer};
/// use nfbist_analog::fault::{BitFault, FaultyDigitizer};
///
/// # fn main() -> Result<(), nfbist_analog::AnalogError> {
/// let cell = FaultyDigitizer::new(OneBitDigitizer::ideal())
///     .with_fault(BitFault::StuckBits { period: 2, value: true })?;
/// let record = cell.acquire(&[-1.0, -1.0, -1.0, -1.0], &[0.0; 4])?;
/// // A healthy cell would store all zeros; the stuck cells read 1.
/// assert_eq!(record.to_samples(), vec![1.0, -1.0, 1.0, -1.0]);
/// assert!(cell.label().contains("stuck"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FaultyDigitizer<D> {
    inner: D,
    faults: Vec<BitFault>,
}

impl<D: Digitizer> FaultyDigitizer<D> {
    /// Wraps a healthy front-end with no faults yet.
    pub fn new(inner: D) -> Self {
        FaultyDigitizer {
            inner,
            faults: Vec::new(),
        }
    }

    /// Adds one bit fault (builder style).
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for out-of-domain
    /// fault parameters.
    pub fn with_fault(mut self, fault: BitFault) -> Result<Self, AnalogError> {
        fault.validate()?;
        self.faults.push(fault);
        Ok(self)
    }

    /// Adds every fault in `faults`, in order.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for the first
    /// out-of-domain fault.
    pub fn with_faults(
        mut self,
        faults: impl IntoIterator<Item = BitFault>,
    ) -> Result<Self, AnalogError> {
        for fault in faults {
            self = self.with_fault(fault)?;
        }
        Ok(self)
    }

    /// The wrapped healthy front-end.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// The injected faults, in application order.
    pub fn faults(&self) -> &[BitFault] {
        &self.faults
    }
}

impl<D: Digitizer> Digitizer for FaultyDigitizer<D> {
    fn label(&self) -> String {
        if self.faults.is_empty() {
            self.inner.label()
        } else {
            let list: Vec<String> = self.faults.iter().map(|f| f.to_string()).collect();
            format!("{} [faults: {}]", self.inner.label(), list.join(", "))
        }
    }

    fn bits_per_sample(&self) -> u32 {
        self.inner.bits_per_sample()
    }

    fn uses_reference(&self) -> bool {
        self.inner.uses_reference()
    }

    fn frontend_gain(&self, hot_rms: f64, post_gain: f64) -> Result<f64, AnalogError> {
        self.inner.frontend_gain(hot_rms, post_gain)
    }

    fn acquire(&self, signal: &[f64], reference: &[f64]) -> Result<Record, AnalogError> {
        match self.inner.acquire(signal, reference)? {
            Record::Bits(mut bits) => {
                for fault in &self.faults {
                    bits = fault.apply(&bits);
                }
                Ok(Record::Bits(bits))
            }
            samples @ Record::Samples(_) => Ok(samples),
        }
    }

    fn begin_capture<'a>(&'a self) -> Box<dyn CaptureStream + 'a> {
        // Bit faults only apply to stored 1-bit records (the batch
        // `acquire` leaves multi-bit sample records untouched), so a
        // multi-bit inner front-end — or a fault-free wrapper — streams
        // straight through.
        if self.faults.is_empty() || self.inner.bits_per_sample() != 1 {
            return self.inner.begin_capture();
        }
        let stages = self
            .faults
            .iter()
            .map(|fault| match *fault {
                BitFault::StuckBits { period, value } => BitFaultStage::Stuck { period, value },
                BitFault::FlippedBits { probability, seed } => BitFaultStage::Flipped {
                    probability,
                    rng: StdRng::seed_from_u64(seed),
                },
            })
            .collect();
        Box::new(FaultyCapture {
            inner: self.inner.begin_capture(),
            stages,
            produced: Vec::new(),
            emitted: 0,
        })
    }
}

/// One [`BitFault`] as carried streaming state: defect positions are
/// functions of the global stored-bit index (and, for flips, of a
/// per-position RNG draw), so each stage carries exactly what lets the
/// chunked pass visit the same positions as the batch pass.
enum BitFaultStage {
    /// Positions `0, period, 2·period, …` stuck at `value`.
    Stuck { period: usize, value: bool },
    /// One Bernoulli draw per position from the carried RNG — the same
    /// draw sequence [`BitFault::apply`] makes over the whole record.
    Flipped { probability: f64, rng: StdRng },
}

/// Streaming counterpart of the faulted [`FaultyDigitizer::acquire`]:
/// the inner front-end's capture with the bit faults applied to the
/// expanded `±1` samples as they emerge, indexed globally.
struct FaultyCapture<'a> {
    inner: Box<dyn CaptureStream + 'a>,
    stages: Vec<BitFaultStage>,
    /// Reusable buffer of freshly expanded inner samples.
    produced: Vec<f64>,
    /// Global stored-bit index of the next sample to corrupt.
    emitted: usize,
}

impl FaultyCapture<'_> {
    /// Corrupts `self.produced` in place (each `±1` sample is a stored
    /// bit), then appends it to `out` and advances the global index.
    fn apply_stages(&mut self, out: &mut Vec<f64>) {
        let base = self.emitted;
        for (k, v) in self.produced.iter_mut().enumerate() {
            let index = base + k;
            let mut bit = *v > 0.0;
            for stage in &mut self.stages {
                match stage {
                    BitFaultStage::Stuck { period, value } => {
                        if index.is_multiple_of(*period) {
                            bit = *value;
                        }
                    }
                    BitFaultStage::Flipped { probability, rng } => {
                        // Drawn unconditionally: `BitFault::apply`
                        // advances its RNG once per position whether
                        // or not the position flips.
                        if rng.gen::<f64>() < *probability {
                            bit = !bit;
                        }
                    }
                }
            }
            *v = if bit { 1.0 } else { -1.0 };
        }
        out.extend_from_slice(&self.produced);
        self.emitted += self.produced.len();
    }
}

impl CaptureStream for FaultyCapture<'_> {
    fn push(
        &mut self,
        signal: &[f64],
        reference: &[f64],
        out: &mut Vec<f64>,
    ) -> Result<(), AnalogError> {
        self.produced.clear();
        self.inner.push(signal, reference, &mut self.produced)?;
        self.apply_stages(out);
        Ok(())
    }

    fn finish(&mut self, out: &mut Vec<f64>) -> Result<(), AnalogError> {
        self.produced.clear();
        self.inner.finish(&mut self.produced)?;
        self.apply_stages(out);
        Ok(())
    }

    fn is_incremental(&self) -> bool {
        self.inner.is_incremental()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits::NonInvertingAmplifier;
    use crate::component::Amplifier;
    use crate::converter::{AdcDigitizer, OneBitDigitizer};
    use crate::opamp::OpampModel;

    fn paper_dut() -> NonInvertingAmplifier {
        NonInvertingAmplifier::new(OpampModel::tl081(), Ohms::new(10_000.0), Ohms::new(100.0))
            .unwrap()
    }

    #[test]
    fn fault_validation() {
        assert!(AnalogFault::InputAttenuation { factor: 0.5 }
            .validate()
            .is_err());
        assert!(AnalogFault::GainDeviation { factor: 0.0 }
            .validate()
            .is_err());
        assert!(AnalogFault::ExcessNoise { factor: 0.99 }
            .validate()
            .is_err());
        assert!(AnalogFault::ReducedBandwidth { corner_hz: -1.0 }
            .validate()
            .is_err());
        assert!(AnalogFault::InterferenceTone {
            frequency: 0.0,
            amplitude_fraction: 0.5
        }
        .validate()
        .is_err());
        assert!(AnalogFault::InterferenceTone {
            frequency: 500.0,
            amplitude_fraction: f64::NAN
        }
        .validate()
        .is_err());
        assert!(BitFault::StuckBits {
            period: 0,
            value: true
        }
        .validate()
        .is_err());
        assert!(BitFault::FlippedBits {
            probability: 0.0,
            seed: 1
        }
        .validate()
        .is_err());
        assert!(BitFault::FlippedBits {
            probability: 1.5,
            seed: 1
        }
        .validate()
        .is_err());
        // Builder surfaces the validation.
        assert!(FaultyDut::new(paper_dut())
            .with_fault(AnalogFault::ExcessNoise { factor: 0.1 })
            .is_err());
        assert!(FaultyDigitizer::new(OneBitDigitizer::ideal())
            .with_fault(BitFault::StuckBits {
                period: 0,
                value: false
            })
            .is_err());
    }

    #[test]
    fn analytic_model_stays_healthy() {
        let rs = Ohms::new(2_000.0);
        let healthy = paper_dut();
        let faulty = FaultyDut::new(paper_dut())
            .with_faults([
                AnalogFault::InputAttenuation { factor: 2.0 },
                AnalogFault::ExcessNoise { factor: 4.0 },
                AnalogFault::GainDeviation { factor: 0.5 },
            ])
            .unwrap();
        assert_eq!(Dut::gain(&faulty), Dut::gain(&healthy));
        assert_eq!(
            faulty.added_noise_density_sq(rs, 500.0),
            Dut::added_noise_density_sq(&healthy, rs, 500.0)
        );
        assert_eq!(
            faulty.expected_noise_figure_db(rs, 100.0, 1_000.0).unwrap(),
            healthy
                .expected_noise_figure_db(rs, 100.0, 1_000.0)
                .unwrap()
        );
        assert_eq!(faulty.faults().len(), 3);
        assert!(faulty.label().contains("faults:"));
        // No faults → identity wrapper with the inner label.
        let identity = FaultyDut::new(paper_dut());
        assert_eq!(identity.label(), paper_dut().label());
    }

    #[test]
    fn faulty_expectation_composes_noise_and_attenuation() {
        let rs = Ohms::new(2_000.0);
        let dut = FaultyDut::new(paper_dut())
            .with_faults([
                AnalogFault::InputAttenuation { factor: 2.0 },
                AnalogFault::ExcessNoise { factor: 3.0 },
                // NF-invisible classes must not shift the expectation.
                AnalogFault::GainDeviation { factor: 0.5 },
                AnalogFault::ReducedBandwidth { corner_hz: 500.0 },
            ])
            .unwrap();
        let healthy = paper_dut()
            .expected_noise_factor(rs, 100.0, 1_000.0)
            .unwrap();
        let faulty = dut
            .faulty_expected_noise_factor(rs, 100.0, 1_000.0)
            .unwrap();
        // F' = 1 + a²·k·(F−1) with a = 2, k = 3.
        assert!((faulty - (1.0 + 12.0 * (healthy - 1.0))).abs() < 1e-12);
        // And the healthy wrapper is the identity.
        let identity = FaultyDut::new(paper_dut());
        let same = identity
            .faulty_expected_noise_factor(rs, 100.0, 1_000.0)
            .unwrap();
        assert!((same - healthy).abs() < 1e-12);
    }

    #[test]
    fn gain_deviation_scales_the_output_exactly() {
        let fs = 20_000.0;
        let rs = Ohms::new(2_000.0);
        let tone: Vec<f64> = (0..4_096)
            .map(|i| 0.01 * (std::f64::consts::TAU * 500.0 * i as f64 / fs).sin())
            .collect();
        let healthy = Dut::process(&paper_dut(), &tone, rs, fs, 9).unwrap();
        let faulty = FaultyDut::new(paper_dut())
            .with_fault(AnalogFault::GainDeviation { factor: 0.5 })
            .unwrap();
        let broken = faulty.process(&tone, rs, fs, 9).unwrap();
        for (h, b) in healthy.iter().zip(&broken) {
            assert!((b - 0.5 * h).abs() < 1e-12);
        }
    }

    #[test]
    fn input_attenuation_halves_the_signal_but_not_the_noise() {
        let fs = 20_000.0;
        let rs = Ohms::new(2_000.0);
        // A noiseless behavioural stage isolates the signal path.
        let faulty = FaultyDut::new(Amplifier::ideal(10.0).unwrap())
            .with_fault(AnalogFault::InputAttenuation { factor: 2.0 })
            .unwrap();
        let out = faulty.process(&[1.0, -2.0], rs, fs, 0).unwrap();
        assert!((out[0] - 5.0).abs() < 1e-12);
        assert!((out[1] + 10.0).abs() < 1e-12);
        // On a noisy DUT, silence in → the DUT's own noise out,
        // unattenuated: same output power as healthy.
        let silence = vec![0.0; 65_536];
        let healthy_out = Dut::process(&paper_dut(), &silence, rs, fs, 5).unwrap();
        let faulty_dut = FaultyDut::new(paper_dut())
            .with_fault(AnalogFault::InputAttenuation { factor: 2.0 })
            .unwrap();
        let faulty_out = faulty_dut.process(&silence, rs, fs, 5).unwrap();
        let ph = nfbist_dsp::stats::mean_square(&healthy_out).unwrap();
        let pf = nfbist_dsp::stats::mean_square(&faulty_out).unwrap();
        assert!((ph - pf).abs() / ph < 1e-9, "{ph} vs {pf}");
    }

    #[test]
    fn excess_noise_raises_output_power_by_the_factor() {
        let fs = 20_000.0;
        let rs = Ohms::new(2_000.0);
        let silence = vec![0.0; 1 << 17];
        let healthy = Dut::process(&paper_dut(), &silence, rs, fs, 21).unwrap();
        let faulty = FaultyDut::new(paper_dut())
            .with_fault(AnalogFault::ExcessNoise { factor: 4.0 })
            .unwrap();
        let broken = faulty.process(&silence, rs, fs, 21).unwrap();
        let ph = nfbist_dsp::stats::mean_square(&healthy).unwrap();
        let pf = nfbist_dsp::stats::mean_square(&broken).unwrap();
        // Independent excess of (k−1)× the healthy power ⇒ total ≈ k×.
        assert!(
            (pf / ph - 4.0).abs() < 0.4,
            "power ratio {} (expected ≈4)",
            pf / ph
        );
    }

    #[test]
    fn reduced_bandwidth_attenuates_high_frequencies_more() {
        let fs = 20_000.0;
        let rs = Ohms::new(1_000.0);
        let faulty = FaultyDut::new(Amplifier::ideal(1.0).unwrap())
            .with_fault(AnalogFault::ReducedBandwidth { corner_hz: 200.0 })
            .unwrap();
        let n = 8_192;
        let tone = |f: f64| -> Vec<f64> {
            (0..n)
                .map(|i| (std::f64::consts::TAU * f * i as f64 / fs).sin())
                .collect()
        };
        let lo = faulty.process(&tone(100.0), rs, fs, 0).unwrap();
        let hi = faulty.process(&tone(2_000.0), rs, fs, 0).unwrap();
        let p_lo = nfbist_dsp::stats::mean_square(&lo[n / 2..]).unwrap();
        let p_hi = nfbist_dsp::stats::mean_square(&hi[n / 2..]).unwrap();
        assert!(p_lo > 4.0 * p_hi, "lo {p_lo} vs hi {p_hi}");
    }

    #[test]
    fn interference_tone_is_absolute_and_detectable() {
        let fs = 20_000.0;
        let rs = Ohms::new(2_000.0);
        let faulty = FaultyDut::new(paper_dut())
            .with_fault(AnalogFault::InterferenceTone {
                frequency: 500.0,
                amplitude_fraction: 1.0,
            })
            .unwrap();
        let silence = vec![0.0; 1 << 15];
        let out = faulty.process(&silence, rs, fs, 3).unwrap();
        // The tone stands out of the noise floor on a Goertzel line.
        let g = nfbist_dsp::goertzel::Goertzel::new(500.0, fs).unwrap();
        let line = g.power_iter(out.iter().copied()).unwrap();
        let total = nfbist_dsp::stats::mean_square(&out).unwrap();
        assert!(
            line / total > 0.3,
            "tone fraction {} of total power",
            line / total
        );
        // Identical absolute amplitude regardless of the input level:
        // the tone must NOT scale with a hot acquisition.
        let healthy_rms = faulty.reference_output_rms(rs, fs).unwrap();
        assert!(healthy_rms > 0.0);
    }

    #[test]
    fn stuck_and_flipped_bits_are_deterministic() {
        let bits: Bitstream = (0..1_000).map(|i| i % 3 == 0).collect();
        let stuck = BitFault::StuckBits {
            period: 4,
            value: true,
        };
        let broken = stuck.apply(&bits);
        assert_eq!(broken.len(), bits.len());
        for i in (0..1_000).step_by(4) {
            assert_eq!(broken.get(i), Some(true));
        }
        // Un-stuck positions are untouched.
        assert_eq!(broken.get(1), bits.get(1));

        let flip = BitFault::FlippedBits {
            probability: 1.0,
            seed: 5,
        };
        let inverted = flip.apply(&bits);
        for i in 0..1_000 {
            assert_eq!(inverted.get(i), bits.get(i).map(|b| !b));
        }
        // Fixed defect positions: two applications agree.
        let flip = BitFault::FlippedBits {
            probability: 0.2,
            seed: 5,
        };
        assert_eq!(flip.apply(&bits), flip.apply(&bits));
        let differing = (0..1_000)
            .filter(|&i| flip.apply(&bits).get(i) != bits.get(i))
            .count();
        assert!(
            (100..350).contains(&differing),
            "flip count {differing} for p = 0.2"
        );
    }

    #[test]
    fn faulty_digitizer_corrupts_bits_but_not_samples() {
        let signal = vec![-1.0; 64];
        let reference = vec![0.0; 64];
        let faulty = FaultyDigitizer::new(OneBitDigitizer::ideal())
            .with_fault(BitFault::StuckBits {
                period: 2,
                value: true,
            })
            .unwrap();
        assert_eq!(faulty.bits_per_sample(), 1);
        assert!(faulty.uses_reference());
        assert_eq!(faulty.frontend_gain(0.1, 100.0).unwrap(), 100.0);
        let record = faulty.acquire(&signal, &reference).unwrap();
        let bits = record.as_bits().unwrap();
        assert_eq!(bits.ones(), 32, "half the cells are stuck at 1");

        // The ADC path stores samples; bit faults do not apply.
        let adc = FaultyDigitizer::new(AdcDigitizer::new(12).unwrap())
            .with_fault(BitFault::StuckBits {
                period: 2,
                value: true,
            })
            .unwrap();
        let clean = AdcDigitizer::new(12)
            .unwrap()
            .acquire(&signal, &reference)
            .unwrap();
        let faulted = adc.acquire(&signal, &reference).unwrap();
        assert_eq!(clean.to_samples(), faulted.to_samples());
        assert!(!adc.uses_reference());
        // Identity wrapper keeps the inner label.
        assert_eq!(
            FaultyDigitizer::new(OneBitDigitizer::ideal()).label(),
            OneBitDigitizer::ideal().label()
        );
    }

    #[test]
    fn faults_compose_in_order() {
        let bits: Bitstream = (0..100).map(|_| false).collect();
        let d = FaultyDigitizer::new(OneBitDigitizer::ideal())
            .with_faults([
                BitFault::StuckBits {
                    period: 2,
                    value: true,
                },
                BitFault::FlippedBits {
                    probability: 1.0,
                    seed: 0,
                },
            ])
            .unwrap();
        assert_eq!(d.faults().len(), 2);
        // stuck-at-1 every 2, then invert all: even positions 0, odd 1.
        let record = d.acquire(&vec![-1.0; 100], &vec![0.0; 100]).unwrap();
        let out = record.as_bits().unwrap();
        for i in 0..100 {
            assert_eq!(out.get(i), Some(i % 2 == 1), "position {i}");
        }
        let _ = bits;
    }

    /// A deterministic pseudo-signal long enough to exercise chunk
    /// carries in every fault stage.
    fn test_input(n: usize) -> Vec<f64> {
        let mut state = 0x1234_5678_9abc_def0u64;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 1e-5
            })
            .collect()
    }

    #[test]
    fn faulty_dut_stream_is_bit_identical_to_batch_for_every_fault_class() {
        let rs = Ohms::new(2_000.0);
        let fs = 2.0e4;
        let seed = 77;
        let input = test_input(10_000);
        // Every fault class at once, so the stream exercises input
        // scaling and all four output stages with their carried state.
        let dut = FaultyDut::new(paper_dut())
            .with_faults([
                AnalogFault::InputAttenuation { factor: 1.5 },
                AnalogFault::GainDeviation { factor: 0.8 },
                AnalogFault::ExcessNoise { factor: 3.0 },
                AnalogFault::ReducedBandwidth { corner_hz: 700.0 },
                AnalogFault::InterferenceTone {
                    frequency: 500.0,
                    amplitude_fraction: 0.4,
                },
            ])
            .unwrap();
        let batch = dut.process(&input, rs, fs, seed).unwrap();
        for chunk_len in [1usize, 997, 4_096] {
            let mut stream = dut.process_stream(rs, fs, seed).unwrap();
            assert!(stream.is_incremental(), "faulted stream stays incremental");
            let mut out = Vec::new();
            for chunk in input.chunks(chunk_len) {
                stream.push(chunk, &mut out).unwrap();
            }
            stream.finish(&mut out).unwrap();
            assert_eq!(out.len(), batch.len(), "chunk {chunk_len}");
            for (i, (s, b)) in out.iter().zip(&batch).enumerate() {
                assert_eq!(s.to_bits(), b.to_bits(), "chunk {chunk_len}, sample {i}");
            }
        }
    }

    #[test]
    fn drift_schedule_shapes_and_validation() {
        assert!(DriftSchedule::Linear { onset: 0, ramp: 0 }
            .validate()
            .is_err());
        assert!(DriftSchedule::Exponential { onset: 0, tau: 0 }
            .validate()
            .is_err());
        assert!(DriftSchedule::Step { at: 0 }.validate().is_ok());

        let lin = DriftSchedule::Linear {
            onset: 100,
            ramp: 200,
        };
        assert_eq!(lin.severity(99), 0.0);
        assert_eq!(lin.severity(200), 0.5);
        assert_eq!(lin.severity(300), 1.0);
        assert_eq!(lin.severity(10_000), 1.0);

        let step = DriftSchedule::Step { at: 50 };
        assert_eq!(step.severity(49), 0.0);
        assert_eq!(step.severity(50), 1.0);

        let exp = DriftSchedule::Exponential { onset: 10, tau: 20 };
        assert_eq!(exp.severity(9), 0.0);
        assert!((exp.severity(30) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        // Monotone non-decreasing.
        let mut prev = 0.0;
        for t in 0..200 {
            let s = exp.severity(t);
            assert!(s >= prev);
            prev = s;
        }
    }

    #[test]
    fn drifting_dut_builder_and_analytics() {
        let rs = Ohms::new(2_000.0);
        let schedule = DriftSchedule::Linear {
            onset: 0,
            ramp: 1 << 16,
        };
        assert!(
            DriftingDut::new(paper_dut(), DriftSchedule::Linear { onset: 0, ramp: 0 }).is_err()
        );
        let dut = DriftingDut::new(paper_dut(), schedule)
            .unwrap()
            .with_faults([
                AnalogFault::ExcessNoise { factor: 4.0 },
                AnalogFault::InputAttenuation { factor: 2.0 },
            ])
            .unwrap()
            .update_stride(512)
            .unwrap();
        assert!(dut.clone().update_stride(0).is_err());
        assert!(dut
            .clone()
            .with_fault(AnalogFault::ExcessNoise { factor: 0.5 })
            .is_err());
        assert_eq!(dut.update_stride_samples(), 512);
        assert_eq!(dut.schedule(), schedule);
        assert_eq!(dut.faults().len(), 2);
        assert!(dut.label().contains("drift"));
        // Severity is quantized to the stride.
        assert_eq!(dut.severity_at(511), 0.0);
        assert_eq!(dut.severity_at(513), dut.severity_at(1023));
        // Analytic model stays healthy; the drifting expectation spans
        // healthy → FaultyDut's full-severity value.
        let healthy = paper_dut()
            .expected_noise_factor(rs, 100.0, 1_000.0)
            .unwrap();
        assert_eq!(
            dut.expected_noise_factor(rs, 100.0, 1_000.0).unwrap(),
            healthy
        );
        let at_zero = dut
            .drifting_expected_noise_factor_at(0, rs, 100.0, 1_000.0)
            .unwrap();
        assert!((at_zero - healthy).abs() < 1e-12);
        let full = FaultyDut::new(paper_dut())
            .with_faults([
                AnalogFault::ExcessNoise { factor: 4.0 },
                AnalogFault::InputAttenuation { factor: 2.0 },
            ])
            .unwrap()
            .faulty_expected_noise_factor(rs, 100.0, 1_000.0)
            .unwrap();
        let at_end = dut
            .drifting_expected_noise_factor_at(1 << 20, rs, 100.0, 1_000.0)
            .unwrap();
        assert!((at_end - full).abs() < 1e-12);
        let mid = dut
            .drifting_expected_noise_factor_at(1 << 15, rs, 100.0, 1_000.0)
            .unwrap();
        assert!(mid > at_zero && mid < at_end);
    }

    #[test]
    fn drifting_dut_stream_is_bit_identical_to_batch_for_every_fault_class() {
        let rs = Ohms::new(2_000.0);
        let fs = 2.0e4;
        let seed = 91;
        let input = test_input(10_000);
        let dut = DriftingDut::new(
            paper_dut(),
            DriftSchedule::Exponential {
                onset: 1_500,
                tau: 2_000,
            },
        )
        .unwrap()
        .with_faults([
            AnalogFault::InputAttenuation { factor: 1.5 },
            AnalogFault::GainDeviation { factor: 0.8 },
            AnalogFault::ExcessNoise { factor: 3.0 },
            AnalogFault::ReducedBandwidth { corner_hz: 700.0 },
            AnalogFault::InterferenceTone {
                frequency: 500.0,
                amplitude_fraction: 0.4,
            },
        ])
        .unwrap()
        .update_stride(512)
        .unwrap();
        let batch = dut.process(&input, rs, fs, seed).unwrap();
        for chunk_len in [1usize, 997, 4_096] {
            let mut stream = dut.process_stream(rs, fs, seed).unwrap();
            assert!(stream.is_incremental());
            let mut out = Vec::new();
            for chunk in input.chunks(chunk_len) {
                stream.push(chunk, &mut out).unwrap();
            }
            stream.finish(&mut out).unwrap();
            assert_eq!(out.len(), batch.len(), "chunk {chunk_len}");
            for (i, (s, b)) in out.iter().zip(&batch).enumerate() {
                assert_eq!(s.to_bits(), b.to_bits(), "chunk {chunk_len}, sample {i}");
            }
        }
    }

    #[test]
    fn drifting_dut_is_healthy_before_the_step_and_louder_after() {
        let rs = Ohms::new(2_000.0);
        let fs = 2.0e4;
        let seed = 13;
        let n = 1 << 15;
        let at = n / 2;
        let silence = vec![0.0; n];
        let healthy = Dut::process(&paper_dut(), &silence, rs, fs, seed).unwrap();
        // Memoryless stages only (no bandwidth pole), so severity 0 is
        // the exact identity per sample.
        let dut = DriftingDut::new(paper_dut(), DriftSchedule::Step { at })
            .unwrap()
            .with_faults([
                AnalogFault::GainDeviation { factor: 2.0 },
                AnalogFault::ExcessNoise { factor: 8.0 },
            ])
            .unwrap()
            .update_stride(256)
            .unwrap();
        let out = dut.process(&silence, rs, fs, seed).unwrap();
        for i in 0..at {
            assert_eq!(out[i].to_bits(), healthy[i].to_bits(), "sample {i}");
        }
        let before = nfbist_dsp::stats::mean_square(&out[..at]).unwrap();
        let after = nfbist_dsp::stats::mean_square(&out[at..]).unwrap();
        // Gain ×2 (power ×4) and noise ×8 ⇒ roughly 32× the power.
        assert!(after / before > 10.0, "ratio {}", after / before);
    }

    #[test]
    fn faulty_capture_stream_is_bit_identical_to_batch_acquire() {
        let d = FaultyDigitizer::new(OneBitDigitizer::ideal())
            .with_faults([
                BitFault::StuckBits {
                    period: 7,
                    value: true,
                },
                BitFault::FlippedBits {
                    probability: 0.05,
                    seed: 3,
                },
            ])
            .unwrap();
        let signal = test_input(5_000);
        let reference = vec![0.0; signal.len()];
        let batch = d.acquire(&signal, &reference).unwrap().to_samples();
        for chunk_len in [1usize, 333, 2_048] {
            let mut capture = d.begin_capture();
            assert!(capture.is_incremental());
            let mut out = Vec::new();
            for (s, r) in signal.chunks(chunk_len).zip(reference.chunks(chunk_len)) {
                capture.push(s, r, &mut out).unwrap();
            }
            capture.finish(&mut out).unwrap();
            assert_eq!(out, batch, "chunk {chunk_len}");
        }
    }

    #[test]
    fn fault_free_and_multibit_captures_pass_straight_through() {
        // No faults: the wrapper must not pay the corruption pass.
        let clean = FaultyDigitizer::new(OneBitDigitizer::ideal());
        let signal = test_input(512);
        let zeros = vec![0.0; signal.len()];
        let mut capture = clean.begin_capture();
        let mut out = Vec::new();
        capture.push(&signal, &zeros, &mut out).unwrap();
        capture.finish(&mut out).unwrap();
        assert_eq!(out, clean.acquire(&signal, &zeros).unwrap().to_samples());
        // Multi-bit records are untouched by bit faults, streamed or not.
        let adc = FaultyDigitizer::new(AdcDigitizer::new(8).unwrap())
            .with_fault(BitFault::StuckBits {
                period: 2,
                value: true,
            })
            .unwrap();
        let mut capture = adc.begin_capture();
        let mut out = Vec::new();
        capture.push(&signal, &zeros, &mut out).unwrap();
        capture.finish(&mut out).unwrap();
        assert_eq!(out, adc.acquire(&signal, &zeros).unwrap().to_samples());
    }
}
