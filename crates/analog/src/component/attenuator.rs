//! Programmable attenuator.

use crate::component::Block;
use crate::AnalogError;

/// A programmable attenuator with optional discrete steps.
///
/// The Y-factor setup (paper Fig. 4/5) uses a programmable attenuator to
/// derive the two noise levels from one generator. Real parts attenuate
/// in fixed steps (e.g. 1 dB); [`Attenuator::with_step`] snaps requested
/// values to the nearest step so experiments can model that
/// quantization.
///
/// # Examples
///
/// ```
/// use nfbist_analog::component::{Attenuator, Block};
///
/// # fn main() -> Result<(), nfbist_analog::AnalogError> {
/// let mut att = Attenuator::from_db(20.0)?;
/// let y = att.process(&[1.0]);
/// assert!((y[0] - 0.1).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Attenuator {
    attenuation_db: f64,
    step_db: Option<f64>,
}

impl Attenuator {
    /// Creates an attenuator with the given attenuation in dB
    /// (non-negative; 0 dB is a through connection).
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for negative or
    /// non-finite attenuation.
    pub fn from_db(attenuation_db: f64) -> Result<Self, AnalogError> {
        if !(attenuation_db >= 0.0) || !attenuation_db.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "attenuation_db",
                reason: "must be non-negative and finite",
            });
        }
        Ok(Attenuator {
            attenuation_db,
            step_db: None,
        })
    }

    /// Quantizes programmed values to multiples of `step_db` (applied to
    /// the current setting immediately and to future settings).
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for a non-positive step.
    pub fn with_step(mut self, step_db: f64) -> Result<Self, AnalogError> {
        if !(step_db > 0.0) || !step_db.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "step_db",
                reason: "must be positive and finite",
            });
        }
        self.step_db = Some(step_db);
        self.attenuation_db = Self::quantize(self.attenuation_db, step_db);
        Ok(self)
    }

    /// Programs a new attenuation (snapped to the step grid if any).
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for negative values.
    pub fn set_db(&mut self, attenuation_db: f64) -> Result<(), AnalogError> {
        if !(attenuation_db >= 0.0) || !attenuation_db.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "attenuation_db",
                reason: "must be non-negative and finite",
            });
        }
        self.attenuation_db = match self.step_db {
            Some(step) => Self::quantize(attenuation_db, step),
            None => attenuation_db,
        };
        Ok(())
    }

    fn quantize(value: f64, step: f64) -> f64 {
        (value / step).round() * step
    }

    /// The effective attenuation in dB (after step quantization).
    pub fn attenuation_db(&self) -> f64 {
        self.attenuation_db
    }

    /// Linear voltage factor `10^(-dB/20)`.
    pub fn linear_factor(&self) -> f64 {
        10f64.powf(-self.attenuation_db / 20.0)
    }
}

impl Block for Attenuator {
    fn process(&mut self, input: &[f64]) -> Vec<f64> {
        let k = self.linear_factor();
        input.iter().map(|v| v * k).collect()
    }

    fn nominal_gain(&self) -> f64 {
        self.linear_factor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Attenuator::from_db(-1.0).is_err());
        assert!(Attenuator::from_db(f64::INFINITY).is_err());
        assert!(Attenuator::from_db(6.0).unwrap().with_step(0.0).is_err());
    }

    #[test]
    fn zero_db_is_identity() {
        let mut a = Attenuator::from_db(0.0).unwrap();
        assert_eq!(a.process(&[1.5]), vec![1.5]);
        assert_eq!(a.nominal_gain(), 1.0);
    }

    #[test]
    fn power_attenuation() {
        // 10 dB attenuation drops power by 10× → voltage by √10.
        let a = Attenuator::from_db(10.0).unwrap();
        assert!((a.linear_factor().powi(2) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn step_quantization() {
        let mut a = Attenuator::from_db(7.3).unwrap().with_step(1.0).unwrap();
        assert_eq!(a.attenuation_db(), 7.0);
        a.set_db(12.6).unwrap();
        assert_eq!(a.attenuation_db(), 13.0);
        assert!(a.set_db(-2.0).is_err());
    }

    #[test]
    fn reprogramming_without_step() {
        let mut a = Attenuator::from_db(3.0).unwrap();
        a.set_db(9.99).unwrap();
        assert_eq!(a.attenuation_db(), 9.99);
    }
}
