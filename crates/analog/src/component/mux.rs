//! Analog multiplexer with the non-idealities the paper warns about.

use crate::component::Block;
use crate::AnalogError;

/// An analog multiplexer routing one of several test points to a shared
/// ADC.
///
/// Paper §4.3 motivates the 1-bit digitizer by the drawbacks of this
/// component: "a multiplexing device at the input of the ADC …
/// introduces non-linearity and distortion in the signal". The model
/// includes third-order distortion, channel crosstalk and a series
/// on-resistance divider so the ADC-based baseline in `nfbist-soc`
/// inherits realistic impairments.
///
/// # Examples
///
/// ```
/// use nfbist_analog::component::{AnalogMux, Block};
///
/// # fn main() -> Result<(), nfbist_analog::AnalogError> {
/// let mut mux = AnalogMux::new(4)?;
/// mux.select(2)?;
/// assert_eq!(mux.selected(), 2);
/// let y = mux.route(&[&[0.0][..], &[0.0][..], &[1.0][..], &[0.0][..]])?;
/// assert!((y[0] - 1.0).abs() < 0.05);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AnalogMux {
    channels: usize,
    selected: usize,
    /// Third-order distortion coefficient (fraction of the cubed input).
    k3: f64,
    /// Fraction of every *other* channel leaking into the output.
    crosstalk: f64,
    /// Voltage division from the switch on-resistance.
    insertion_gain: f64,
}

impl AnalogMux {
    /// Creates a mux with `channels` inputs and default impairments
    /// (0.5 % cubic distortion, −60 dB crosstalk, 0.995 insertion gain).
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for zero channels.
    pub fn new(channels: usize) -> Result<Self, AnalogError> {
        if channels == 0 {
            return Err(AnalogError::InvalidParameter {
                name: "channels",
                reason: "must have at least one channel",
            });
        }
        Ok(AnalogMux {
            channels,
            selected: 0,
            k3: 0.005,
            crosstalk: 1e-3,
            insertion_gain: 0.995,
        })
    }

    /// Overrides the impairment set. Pass zeros for an ideal mux.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for negative values or
    /// an insertion gain outside `(0, 1]`.
    pub fn with_impairments(
        mut self,
        k3: f64,
        crosstalk: f64,
        insertion_gain: f64,
    ) -> Result<Self, AnalogError> {
        if !(k3 >= 0.0) || !(crosstalk >= 0.0) {
            return Err(AnalogError::InvalidParameter {
                name: "impairments",
                reason: "distortion and crosstalk must be non-negative",
            });
        }
        if !(insertion_gain > 0.0 && insertion_gain <= 1.0) {
            return Err(AnalogError::InvalidParameter {
                name: "insertion_gain",
                reason: "must be in (0, 1]",
            });
        }
        self.k3 = k3;
        self.crosstalk = crosstalk;
        self.insertion_gain = insertion_gain;
        Ok(self)
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Currently selected channel.
    pub fn selected(&self) -> usize {
        self.selected
    }

    /// Selects a channel.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for an out-of-range
    /// index.
    pub fn select(&mut self, channel: usize) -> Result<(), AnalogError> {
        if channel >= self.channels {
            return Err(AnalogError::InvalidParameter {
                name: "channel",
                reason: "index exceeds channel count",
            });
        }
        self.selected = channel;
        Ok(())
    }

    /// Routes the selected channel to the output with impairments,
    /// mixing in crosstalk from all other channels.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::LengthMismatch`] unless exactly
    /// `channels` equally long buffers are supplied.
    pub fn route(&self, inputs: &[&[f64]]) -> Result<Vec<f64>, AnalogError> {
        if inputs.len() != self.channels {
            return Err(AnalogError::LengthMismatch {
                expected: self.channels,
                actual: inputs.len(),
                context: "mux route (channel count)",
            });
        }
        let n = inputs[self.selected].len();
        for buf in inputs {
            if buf.len() != n {
                return Err(AnalogError::LengthMismatch {
                    expected: n,
                    actual: buf.len(),
                    context: "mux route (buffer length)",
                });
            }
        }
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let x = inputs[self.selected][i];
            let mut v = self.insertion_gain * (x + self.k3 * x * x * x);
            for (c, buf) in inputs.iter().enumerate() {
                if c != self.selected {
                    v += self.crosstalk * buf[i];
                }
            }
            out.push(v);
        }
        Ok(out)
    }
}

impl Block for AnalogMux {
    /// Single-input use: treats the input as the selected channel with
    /// all other channels silent.
    fn process(&mut self, input: &[f64]) -> Vec<f64> {
        input
            .iter()
            .map(|&x| self.insertion_gain * (x + self.k3 * x * x * x))
            .collect()
    }

    fn nominal_gain(&self) -> f64 {
        self.insertion_gain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(AnalogMux::new(0).is_err());
        assert!(AnalogMux::new(2)
            .unwrap()
            .with_impairments(-0.1, 0.0, 1.0)
            .is_err());
        assert!(AnalogMux::new(2)
            .unwrap()
            .with_impairments(0.0, 0.0, 1.5)
            .is_err());
        let mut m = AnalogMux::new(2).unwrap();
        assert!(m.select(2).is_err());
        assert!(m.select(1).is_ok());
    }

    #[test]
    fn ideal_mux_is_a_selector() {
        let mut m = AnalogMux::new(3)
            .unwrap()
            .with_impairments(0.0, 0.0, 1.0)
            .unwrap();
        m.select(1).unwrap();
        let y = m.route(&[&[1.0][..], &[2.0][..], &[3.0][..]]).unwrap();
        assert_eq!(y, vec![2.0]);
        assert_eq!(m.channels(), 3);
    }

    #[test]
    fn crosstalk_leaks_other_channels() {
        let m = AnalogMux::new(2)
            .unwrap()
            .with_impairments(0.0, 0.01, 1.0)
            .unwrap();
        let y = m.route(&[&[0.0][..], &[5.0][..]]).unwrap();
        assert!((y[0] - 0.05).abs() < 1e-12);
    }

    #[test]
    fn cubic_distortion_generates_third_harmonic() {
        let fs = 32_768.0;
        let n = 32_768;
        let f0 = 512.0;
        let x: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::TAU * f0 * i as f64 / fs).sin())
            .collect();
        let mut m = AnalogMux::new(1)
            .unwrap()
            .with_impairments(0.1, 0.0, 1.0)
            .unwrap();
        let y = m.process(&x);
        let psd = nfbist_dsp::psd::periodogram(&y, fs).unwrap();
        let h3 = psd.tone_power(1536, 1).unwrap();
        // x³ produces a 3rd harmonic of amplitude k3/4 → power (k3/4)²/2.
        let expected = (0.1f64 / 4.0).powi(2) / 2.0;
        assert!((h3 - expected).abs() / expected < 0.05, "h3 {h3}");
    }

    #[test]
    fn route_length_checks() {
        let m = AnalogMux::new(2).unwrap();
        assert!(m.route(&[&[1.0][..]]).is_err());
        assert!(m.route(&[&[1.0][..], &[1.0, 2.0][..]]).is_err());
    }
}
