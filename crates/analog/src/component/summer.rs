//! Signal summation node.

use crate::AnalogError;

/// Sums an arbitrary set of equally long sample buffers.
///
/// This is the node where a DUT's own noise joins the amplified source
/// noise, or where a reference waveform is superposed on the measured
/// noise before the comparator.
///
/// # Errors
///
/// Returns [`AnalogError::EmptyInput`] when no buffers are supplied and
/// [`AnalogError::LengthMismatch`] when lengths differ.
///
/// # Examples
///
/// ```
/// use nfbist_analog::component::sum_signals;
///
/// # fn main() -> Result<(), nfbist_analog::AnalogError> {
/// let y = sum_signals(&[&[1.0, 2.0][..], &[10.0, 20.0][..]])?;
/// assert_eq!(y, vec![11.0, 22.0]);
/// # Ok(())
/// # }
/// ```
pub fn sum_signals(inputs: &[&[f64]]) -> Result<Vec<f64>, AnalogError> {
    let first = inputs.first().ok_or(AnalogError::EmptyInput {
        context: "sum_signals",
    })?;
    let n = first.len();
    for buf in inputs.iter().skip(1) {
        if buf.len() != n {
            return Err(AnalogError::LengthMismatch {
                expected: n,
                actual: buf.len(),
                context: "sum_signals",
            });
        }
    }
    let mut out = first.to_vec();
    for buf in inputs.iter().skip(1) {
        for (o, v) in out.iter_mut().zip(*buf) {
            *o += v;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(sum_signals(&[]).is_err());
        assert!(sum_signals(&[&[1.0][..], &[1.0, 2.0][..]]).is_err());
    }

    #[test]
    fn single_input_is_identity() {
        assert_eq!(sum_signals(&[&[1.0, -1.0][..]]).unwrap(), vec![1.0, -1.0]);
    }

    #[test]
    fn three_way_sum() {
        let y = sum_signals(&[&[1.0][..], &[2.0][..], &[3.0][..]]).unwrap();
        assert_eq!(y, vec![6.0]);
    }

    #[test]
    fn independent_noise_powers_add() {
        use crate::noise::WhiteNoise;
        let mut a = WhiteNoise::new(1.0, 1).unwrap();
        let mut b = WhiteNoise::new(2.0, 2).unwrap();
        let xa = a.generate(100_000);
        let xb = b.generate(100_000);
        let sum = sum_signals(&[&xa[..], &xb[..]]).unwrap();
        let p = nfbist_dsp::stats::mean_square(&sum).unwrap();
        assert!((p - 5.0).abs() < 0.15, "power {p}");
    }
}
