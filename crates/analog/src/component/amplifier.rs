//! Voltage amplifier with finite bandwidth, gain error and saturation.

use crate::component::Block;
use crate::AnalogError;

/// A behavioural voltage amplifier.
///
/// Models the three non-idealities the paper leans on:
///
/// * **gain error** — §4.1 shows the direct method's weakness: a gain
///   deviation `Ga → Ga'` corrupts the NF estimate, while the Y-factor
///   ratio cancels it. [`Amplifier::with_gain_error`] injects exactly
///   that deviation.
/// * **finite bandwidth** — a one-pole (6 dB/octave) rolloff at a
///   configurable corner.
/// * **saturation** — hard clipping at the supply rails.
///
/// # Examples
///
/// ```
/// use nfbist_analog::component::{Amplifier, Block};
///
/// # fn main() -> Result<(), nfbist_analog::AnalogError> {
/// let mut amp = Amplifier::ideal(101.0)?;
/// assert_eq!(amp.process(&[0.01]), vec![1.01]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Amplifier {
    nominal_gain: f64,
    gain_error_fraction: f64,
    /// One-pole lowpass state, if bandwidth-limited: (alpha, y_prev).
    pole: Option<Pole>,
    saturation: Option<f64>,
}

#[derive(Debug, Clone, Copy)]
struct Pole {
    alpha: f64,
    y_prev: f64,
}

impl Amplifier {
    /// An ideal amplifier: exact gain, infinite bandwidth, no clipping.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for a non-finite or
    /// zero gain.
    pub fn ideal(gain: f64) -> Result<Self, AnalogError> {
        if !gain.is_finite() || gain == 0.0 {
            return Err(AnalogError::InvalidParameter {
                name: "gain",
                reason: "must be nonzero and finite",
            });
        }
        Ok(Amplifier {
            nominal_gain: gain,
            gain_error_fraction: 0.0,
            pole: None,
            saturation: None,
        })
    }

    /// Adds a fractional gain error: the *actual* gain becomes
    /// `gain·(1 + fraction)` while [`Block::nominal_gain`] keeps
    /// reporting the nominal value — exactly the process-variation
    /// scenario of paper §4.1.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] if the error would zero
    /// the gain.
    pub fn with_gain_error(mut self, fraction: f64) -> Result<Self, AnalogError> {
        if !fraction.is_finite() || fraction <= -1.0 {
            return Err(AnalogError::InvalidParameter {
                name: "fraction",
                reason: "must be finite and above -1",
            });
        }
        self.gain_error_fraction = fraction;
        Ok(self)
    }

    /// Adds a single-pole bandwidth limit at `corner_hz` for signals
    /// sampled at `sample_rate` Hz.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] unless
    /// `0 < corner < sample_rate/2`.
    pub fn with_bandwidth(mut self, corner_hz: f64, sample_rate: f64) -> Result<Self, AnalogError> {
        if !(corner_hz > 0.0) || !(sample_rate > 0.0) || corner_hz >= sample_rate / 2.0 {
            return Err(AnalogError::InvalidParameter {
                name: "corner_hz",
                reason: "must satisfy 0 < corner < sample_rate/2",
            });
        }
        // Bilinear-free one-pole: alpha = 1 - exp(-2π·fc/fs).
        let alpha = 1.0 - (-std::f64::consts::TAU * corner_hz / sample_rate).exp();
        self.pole = Some(Pole { alpha, y_prev: 0.0 });
        Ok(self)
    }

    /// Adds symmetric hard clipping at `±rail` volts on the output.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for a non-positive rail.
    pub fn with_saturation(mut self, rail: f64) -> Result<Self, AnalogError> {
        if !(rail > 0.0) || !rail.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "rail",
                reason: "must be positive and finite",
            });
        }
        self.saturation = Some(rail);
        Ok(self)
    }

    /// The actual gain including the error term.
    pub fn actual_gain(&self) -> f64 {
        self.nominal_gain * (1.0 + self.gain_error_fraction)
    }
}

impl Block for Amplifier {
    fn process(&mut self, input: &[f64]) -> Vec<f64> {
        let g = self.actual_gain();
        let mut out: Vec<f64> = input.iter().map(|v| v * g).collect();
        if let Some(pole) = &mut self.pole {
            for v in &mut out {
                pole.y_prev += pole.alpha * (*v - pole.y_prev);
                *v = pole.y_prev;
            }
        }
        if let Some(rail) = self.saturation {
            for v in &mut out {
                *v = v.clamp(-rail, rail);
            }
        }
        out
    }

    fn reset(&mut self) {
        if let Some(pole) = &mut self.pole {
            pole.y_prev = 0.0;
        }
    }

    fn nominal_gain(&self) -> f64 {
        self.nominal_gain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Amplifier::ideal(0.0).is_err());
        assert!(Amplifier::ideal(f64::NAN).is_err());
        assert!(Amplifier::ideal(1.0)
            .unwrap()
            .with_gain_error(-1.5)
            .is_err());
        assert!(Amplifier::ideal(1.0).unwrap().with_saturation(0.0).is_err());
        assert!(Amplifier::ideal(1.0)
            .unwrap()
            .with_bandwidth(600.0, 1000.0)
            .is_err());
    }

    #[test]
    fn ideal_gain() {
        let mut a = Amplifier::ideal(-3.0).unwrap();
        assert_eq!(a.process(&[2.0]), vec![-6.0]);
        assert_eq!(a.nominal_gain(), -3.0);
        assert_eq!(a.actual_gain(), -3.0);
    }

    #[test]
    fn gain_error_hidden_from_nominal() {
        let mut a = Amplifier::ideal(100.0)
            .unwrap()
            .with_gain_error(0.05)
            .unwrap();
        assert_eq!(a.nominal_gain(), 100.0);
        assert_eq!(a.actual_gain(), 105.0);
        assert!((a.process(&[1.0])[0] - 105.0).abs() < 1e-12);
    }

    #[test]
    fn saturation_clips_symmetrically() {
        let mut a = Amplifier::ideal(10.0)
            .unwrap()
            .with_saturation(5.0)
            .unwrap();
        assert_eq!(a.process(&[1.0, -1.0, 0.1]), vec![5.0, -5.0, 1.0]);
    }

    #[test]
    fn bandwidth_attenuates_high_frequencies() {
        let fs = 100_000.0;
        let fc = 1_000.0;
        let mut a = Amplifier::ideal(1.0)
            .unwrap()
            .with_bandwidth(fc, fs)
            .unwrap();
        let measure = |a: &mut Amplifier, f: f64| {
            a.reset();
            let n = 50_000;
            let x: Vec<f64> = (0..n)
                .map(|i| (std::f64::consts::TAU * f * i as f64 / fs).sin())
                .collect();
            let y = a.process(&x);
            nfbist_dsp::stats::rms(&y[n / 2..]).unwrap() / std::f64::consts::FRAC_1_SQRT_2
        };
        let low = measure(&mut a, 50.0);
        let at_corner = measure(&mut a, fc);
        let high = measure(&mut a, 10_000.0);
        assert!((low - 1.0).abs() < 0.02, "low-band gain {low}");
        assert!(
            (at_corner - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.05,
            "corner gain {at_corner}"
        );
        assert!(high < 0.15, "10×-corner gain {high}");
    }

    #[test]
    fn dc_passes_through_pole() {
        let mut a = Amplifier::ideal(2.0)
            .unwrap()
            .with_bandwidth(100.0, 10_000.0)
            .unwrap();
        let y = a.process(&vec![1.0; 5_000]);
        assert!((y[4_999] - 2.0).abs() < 1e-6);
        a.reset();
        let y2 = a.process(&[1.0]);
        assert!(y2[0] < 2.0); // transient restarts after reset
    }
}
