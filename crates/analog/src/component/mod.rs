//! Behavioural analog blocks: amplifiers, attenuators, summers and
//! multiplexers.
//!
//! Blocks process sample buffers and can be chained; they model the
//! signal path of the paper's prototype (Fig. 11): noise generator →
//! attenuator → DUT → post-amplifier → comparator.

mod amplifier;
mod attenuator;
mod mux;
mod summer;

pub use amplifier::Amplifier;
pub use attenuator::Attenuator;
pub use mux::AnalogMux;
pub use summer::sum_signals;

/// A stateful signal-processing block.
///
/// Object-safe so a signal chain can hold heterogeneous stages.
pub trait Block {
    /// Processes a buffer of input samples into output samples.
    fn process(&mut self, input: &[f64]) -> Vec<f64>;

    /// Resets any internal state (filter memories etc.).
    fn reset(&mut self) {}

    /// Small-signal mid-band voltage gain of the block.
    fn nominal_gain(&self) -> f64 {
        1.0
    }
}

/// A chain of blocks applied in sequence.
///
/// # Examples
///
/// ```
/// use nfbist_analog::component::{Amplifier, Attenuator, Block, Chain};
///
/// # fn main() -> Result<(), nfbist_analog::AnalogError> {
/// let mut chain = Chain::new();
/// chain.push(Box::new(Attenuator::from_db(20.0)?)); // ÷10
/// chain.push(Box::new(Amplifier::ideal(100.0)?));   // ×100
/// let y = chain.process(&[1.0]);
/// assert!((y[0] - 10.0).abs() < 1e-12);
/// assert!((chain.nominal_gain() - 10.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct Chain {
    stages: Vec<Box<dyn Block>>,
}

impl std::fmt::Debug for Chain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Chain")
            .field("stages", &self.stages.len())
            .finish()
    }
}

impl Chain {
    /// Creates an empty chain (identity).
    pub fn new() -> Self {
        Chain { stages: Vec::new() }
    }

    /// Appends a stage.
    pub fn push(&mut self, block: Box<dyn Block>) {
        self.stages.push(block);
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// `true` if the chain has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

impl Block for Chain {
    fn process(&mut self, input: &[f64]) -> Vec<f64> {
        let mut buf = input.to_vec();
        for stage in &mut self.stages {
            buf = stage.process(&buf);
        }
        buf
    }

    fn reset(&mut self) {
        for stage in &mut self.stages {
            stage.reset();
        }
    }

    fn nominal_gain(&self) -> f64 {
        self.stages.iter().map(|s| s.nominal_gain()).product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Doubler;
    impl Block for Doubler {
        fn process(&mut self, input: &[f64]) -> Vec<f64> {
            input.iter().map(|v| v * 2.0).collect()
        }
        fn nominal_gain(&self) -> f64 {
            2.0
        }
    }

    #[test]
    fn empty_chain_is_identity() {
        let mut c = Chain::new();
        assert!(c.is_empty());
        assert_eq!(c.process(&[1.0, -2.0]), vec![1.0, -2.0]);
        assert_eq!(c.nominal_gain(), 1.0);
    }

    #[test]
    fn chain_composes_in_order() {
        let mut c = Chain::new();
        c.push(Box::new(Doubler));
        c.push(Box::new(Doubler));
        assert_eq!(c.len(), 2);
        assert_eq!(c.process(&[1.0]), vec![4.0]);
        assert_eq!(c.nominal_gain(), 4.0);
        c.reset(); // must not panic
    }
}
