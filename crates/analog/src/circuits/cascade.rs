//! Friis cascade formula.
//!
//! Paper §6 notes the key system-level consequence: "the noise figure of
//! a cascade of stages is mainly the noise figure of the first stage",
//! which is why the BIST's high-gain conditioning amplifier does not
//! have to be quiet. This module provides the formula and the types to
//! verify that claim quantitatively.

use crate::AnalogError;

/// One stage of a cascade: its noise factor and available power gain.
///
/// # Examples
///
/// ```
/// use nfbist_analog::circuits::CascadeStage;
///
/// # fn main() -> Result<(), nfbist_analog::AnalogError> {
/// let lna = CascadeStage::from_db(3.0, 20.0)?; // NF 3 dB, gain 20 dB
/// assert!((lna.noise_factor() - 2.0).abs() < 0.01);
/// assert!((lna.power_gain() - 100.0).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CascadeStage {
    noise_factor: f64,
    power_gain: f64,
}

impl CascadeStage {
    /// Creates a stage from linear quantities.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for a noise factor
    /// below 1 or a non-positive gain.
    pub fn new(noise_factor: f64, power_gain: f64) -> Result<Self, AnalogError> {
        if !(noise_factor >= 1.0) || !noise_factor.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "noise_factor",
                reason: "must be at least 1 (a passive limit)",
            });
        }
        if !(power_gain > 0.0) || !power_gain.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "power_gain",
                reason: "must be positive and finite",
            });
        }
        Ok(CascadeStage {
            noise_factor,
            power_gain,
        })
    }

    /// Creates a stage from dB quantities (`nf_db ≥ 0`, any gain).
    ///
    /// # Errors
    ///
    /// Same as [`CascadeStage::new`].
    pub fn from_db(nf_db: f64, gain_db: f64) -> Result<Self, AnalogError> {
        CascadeStage::new(10f64.powf(nf_db / 10.0), 10f64.powf(gain_db / 10.0))
    }

    /// Linear noise factor.
    pub fn noise_factor(&self) -> f64 {
        self.noise_factor
    }

    /// Linear available power gain.
    pub fn power_gain(&self) -> f64 {
        self.power_gain
    }

    /// Noise figure in dB.
    pub fn noise_figure_db(&self) -> f64 {
        10.0 * self.noise_factor.log10()
    }
}

/// Total noise factor of a cascade by the Friis formula:
/// `F = F1 + (F2−1)/G1 + (F3−1)/(G1·G2) + …`.
///
/// # Errors
///
/// Returns [`AnalogError::EmptyInput`] for an empty chain.
///
/// # Examples
///
/// ```
/// use nfbist_analog::circuits::{friis_noise_factor, CascadeStage};
///
/// # fn main() -> Result<(), nfbist_analog::AnalogError> {
/// // Quiet first stage with gain dominates a noisy second stage.
/// let chain = [
///     CascadeStage::from_db(3.0, 30.0)?,
///     CascadeStage::from_db(20.0, 0.0)?,
/// ];
/// let f = friis_noise_factor(&chain)?;
/// let nf_db = 10.0 * f.log10();
/// assert!((nf_db - 3.0).abs() < 0.5); // ≈ first stage alone
/// # Ok(())
/// # }
/// ```
pub fn friis_noise_factor(stages: &[CascadeStage]) -> Result<f64, AnalogError> {
    if stages.is_empty() {
        return Err(AnalogError::EmptyInput {
            context: "friis cascade",
        });
    }
    let mut total = stages[0].noise_factor();
    let mut gain = stages[0].power_gain();
    for stage in &stages[1..] {
        total += (stage.noise_factor() - 1.0) / gain;
        gain *= stage.power_gain();
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(CascadeStage::new(0.5, 10.0).is_err());
        assert!(CascadeStage::new(2.0, 0.0).is_err());
        assert!(CascadeStage::new(2.0, f64::INFINITY).is_err());
        assert!(friis_noise_factor(&[]).is_err());
    }

    #[test]
    fn single_stage_is_itself() {
        let s = CascadeStage::new(3.0, 17.0).unwrap();
        assert_eq!(friis_noise_factor(&[s]).unwrap(), 3.0);
        assert_eq!(s.power_gain(), 17.0);
        assert!((s.noise_figure_db() - 4.771).abs() < 0.001);
    }

    #[test]
    fn classic_two_stage_example() {
        // F1 = 2 (3 dB), G1 = 10; F2 = 10 → F = 2 + 9/10 = 2.9.
        let chain = [
            CascadeStage::new(2.0, 10.0).unwrap(),
            CascadeStage::new(10.0, 1.0).unwrap(),
        ];
        assert!((friis_noise_factor(&chain).unwrap() - 2.9).abs() < 1e-12);
    }

    #[test]
    fn first_stage_dominates_with_high_gain() {
        // Paper §6's argument: the conditioning amplifier after the DUT
        // barely matters when the DUT has gain.
        let dut = CascadeStage::from_db(3.7, 40.1).unwrap(); // Av=101 → 40.1 dB
        let noisy_postamp = CascadeStage::from_db(25.0, 61.3).unwrap(); // Av=1156
        let f = friis_noise_factor(&[dut, noisy_postamp]).unwrap();
        let nf = 10.0 * f.log10();
        assert!((nf - 3.7).abs() < 0.15, "cascade NF {nf}");
    }

    #[test]
    fn order_matters() {
        let quiet_gain = CascadeStage::new(2.0, 100.0).unwrap();
        let noisy_unity = CascadeStage::new(10.0, 1.0).unwrap();
        let good = friis_noise_factor(&[quiet_gain, noisy_unity]).unwrap();
        let bad = friis_noise_factor(&[noisy_unity, quiet_gain]).unwrap();
        assert!(good < bad);
    }

    #[test]
    fn lossy_first_stage_adds_directly() {
        // A 10 dB attenuator (F = 10, G = 0.1) ahead of a 3 dB LNA.
        let att = CascadeStage::from_db(10.0, -10.0).unwrap();
        let lna = CascadeStage::from_db(3.0, 20.0).unwrap();
        let f = friis_noise_factor(&[att, lna]).unwrap();
        let nf = 10.0 * f.log10();
        assert!((nf - 13.0).abs() < 0.2, "NF {nf}");
    }
}
