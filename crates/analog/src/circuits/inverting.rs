//! Inverting op-amp amplifier with noise analysis.
//!
//! The paper's prototype used the non-inverting topology; the inverting
//! variant is included because it is the other canonical gain stage a
//! BIST-equipped SoC will meet, and its noise analysis differs in an
//! instructive way: the input resistor `Rin` both sets the gain and
//! adds noise, and the source sees a virtual-ground summing node.

use crate::noise::ShapedNoise;
use crate::opamp::OpampModel;
use crate::units::{Kelvin, Ohms};
use crate::AnalogError;

/// An inverting amplifier: gain `−Rf/Rin`, input through `Rin` into the
/// virtual ground.
///
/// Noise analysis (AB-103 conventions, noise-gain = `1 + Rf/Rin`):
/// output-referred noise collects `en` amplified by the noise gain,
/// `in` through `Rf`, and the thermal noise of both resistors; the
/// input-referred value divides by the signal gain `Rf/Rin`.
///
/// # Examples
///
/// ```
/// use nfbist_analog::circuits::InvertingAmplifier;
/// use nfbist_analog::opamp::OpampModel;
/// use nfbist_analog::units::Ohms;
///
/// # fn main() -> Result<(), nfbist_analog::AnalogError> {
/// let amp = InvertingAmplifier::new(
///     OpampModel::op27(),
///     Ohms::new(10_000.0), // Rf
///     Ohms::new(1_000.0),  // Rin
/// )?;
/// assert_eq!(amp.gain(), -10.0);
/// assert_eq!(amp.noise_gain(), 11.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct InvertingAmplifier {
    opamp: OpampModel,
    rf: Ohms,
    rin: Ohms,
    temperature: Kelvin,
}

impl InvertingAmplifier {
    /// Builds the amplifier (resistors at 290 K).
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for non-positive
    /// resistances.
    pub fn new(opamp: OpampModel, rf: Ohms, rin: Ohms) -> Result<Self, AnalogError> {
        if !(rf.value() > 0.0) || !(rin.value() > 0.0) {
            return Err(AnalogError::InvalidParameter {
                name: "resistors",
                reason: "rf and rin must be positive",
            });
        }
        Ok(InvertingAmplifier {
            opamp,
            rf,
            rin,
            temperature: Kelvin::REFERENCE,
        })
    }

    /// Overrides the resistor temperature.
    pub fn with_temperature(mut self, t: Kelvin) -> Self {
        self.temperature = t;
        self
    }

    /// The op-amp model.
    pub fn opamp(&self) -> &OpampModel {
        &self.opamp
    }

    /// Signal gain `−Rf/Rin`.
    pub fn gain(&self) -> f64 {
        -self.rf.value() / self.rin.value()
    }

    /// Noise gain `1 + Rf/Rin` (the factor `en` sees).
    pub fn noise_gain(&self) -> f64 {
        1.0 + self.rf.value() / self.rin.value()
    }

    /// Output-referred noise density squared at frequency `f` (V²/Hz),
    /// excluding whatever noise rides on the input signal itself.
    pub fn output_noise_density_sq(&self, f: f64) -> f64 {
        let en2 = self.opamp.voltage_noise_density_sq(f);
        let in2 = self.opamp.current_noise_density_sq(f);
        let ng = self.noise_gain();
        let g = self.rf.value() / self.rin.value();
        en2 * ng * ng
            + in2 * self.rf.value() * self.rf.value()
            + self.rin.thermal_noise_density_sq(self.temperature) * g * g
            + self.rf.thermal_noise_density_sq(self.temperature)
    }

    /// Input-referred added noise density squared at `f`:
    /// the output value divided by the signal power gain. The input
    /// resistor's own thermal noise is *excluded* here (it plays the
    /// role of the source resistance in NF work).
    pub fn added_noise_density_sq(&self, f: f64) -> f64 {
        let g2 = self.gain() * self.gain();
        let rin_term = self.rin.thermal_noise_density_sq(self.temperature) * g2;
        (self.output_noise_density_sq(f) - rin_term) / g2
    }

    /// Expected noise factor over `[f_lo, f_hi]` with `Rin` acting as
    /// the source resistance: `F = 1 + added/(4kT0·Rin)`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for an invalid band.
    pub fn expected_noise_factor(&self, f_lo: f64, f_hi: f64) -> Result<f64, AnalogError> {
        if !(f_lo > 0.0 && f_hi > f_lo) {
            return Err(AnalogError::InvalidParameter {
                name: "band",
                reason: "requires 0 < f_lo < f_hi",
            });
        }
        // Band-average the frequency-dependent terms analytically via
        // the op-amp model's mean densities.
        let en2 = self.opamp.mean_voltage_noise_density_sq(f_lo, f_hi)?;
        let in2 = self.opamp.mean_current_noise_density_sq(f_lo, f_hi)?;
        let ng = self.noise_gain();
        let g = self.rf.value() / self.rin.value();
        let g2 = g * g;
        let added_out = en2 * ng * ng
            + in2 * self.rf.value() * self.rf.value()
            + self.rf.thermal_noise_density_sq(self.temperature);
        let added_in = added_out / g2;
        let source = self.rin.thermal_noise_density_sq(Kelvin::REFERENCE);
        Ok(1.0 + added_in / source)
    }

    /// Expected noise figure in dB.
    ///
    /// # Errors
    ///
    /// Same as [`InvertingAmplifier::expected_noise_factor`].
    pub fn expected_noise_figure_db(&self, f_lo: f64, f_hi: f64) -> Result<f64, AnalogError> {
        Ok(10.0 * self.expected_noise_factor(f_lo, f_hi)?.log10())
    }

    /// Amplifies `input` (the voltage ahead of `Rin`), adding the
    /// amplifier's input-referred noise and applying the (negative)
    /// gain.
    ///
    /// # Errors
    ///
    /// Propagates synthesis errors; [`AnalogError::EmptyInput`] for an
    /// empty record.
    pub fn amplify(
        &self,
        input: &[f64],
        sample_rate: f64,
        seed: u64,
    ) -> Result<Vec<f64>, AnalogError> {
        if input.is_empty() {
            return Err(AnalogError::EmptyInput { context: "amplify" });
        }
        let mut noise = self.noise_stream(sample_rate, seed)?;
        let own = noise.generate(input.len())?;
        let g = self.gain();
        Ok(input.iter().zip(&own).map(|(&x, &n)| g * (x + n)).collect())
    }

    /// The input-referred noise generator a single
    /// [`InvertingAmplifier::amplify`] call draws from — exposed to the
    /// streaming DUT path so chunked processing synthesizes the
    /// *identical* noise sequence (DC zeroed, as in `amplify`).
    pub(crate) fn noise_stream(
        &self,
        sample_rate: f64,
        seed: u64,
    ) -> Result<ShapedNoise, AnalogError> {
        ShapedNoise::new(
            |f| {
                if f == 0.0 {
                    0.0
                } else {
                    self.added_noise_density_sq(f)
                }
            },
            sample_rate,
            1 << 15,
            seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn amp() -> InvertingAmplifier {
        InvertingAmplifier::new(OpampModel::op27(), Ohms::new(10_000.0), Ohms::new(1_000.0))
            .unwrap()
    }

    #[test]
    fn validation() {
        assert!(
            InvertingAmplifier::new(OpampModel::op27(), Ohms::new(0.0), Ohms::new(1.0)).is_err()
        );
        assert!(
            InvertingAmplifier::new(OpampModel::op27(), Ohms::new(1.0), Ohms::new(-1.0)).is_err()
        );
        assert!(amp().expected_noise_factor(0.0, 100.0).is_err());
        assert!(amp().expected_noise_factor(100.0, 50.0).is_err());
        assert!(amp().amplify(&[], 1e4, 0).is_err());
    }

    #[test]
    fn gains() {
        let a = amp();
        assert_eq!(a.gain(), -10.0);
        assert_eq!(a.noise_gain(), 11.0);
        assert_eq!(a.opamp().name(), "OP27");
    }

    #[test]
    fn en_penalty_is_noise_gain_over_signal_gain() {
        // The inverting topology's textbook drawback: `en` is amplified
        // by the noise gain `1 + Rf/Rin` but the signal only by
        // `Rf/Rin`, so the input-referred voltage-noise contribution
        // carries a `(1 + Rin/Rf)` penalty relative to the
        // non-inverting stage. Verify with an op-amp whose `en`
        // dominates (resistor and current noise negligible).
        let quiet_resistors = InvertingAmplifier::new(
            OpampModel::new(
                "en-only",
                100e-9,
                crate::units::Hertz::new(0.0),
                0.0,
                crate::units::Hertz::new(0.0),
            )
            .unwrap(),
            Ohms::new(2_000.0),
            Ohms::new(1_000.0), // |G| = 2, NG = 3
        )
        .unwrap();
        let added = quiet_resistors.added_noise_density_sq(10_000.0);
        let en2 = 100e-9f64 * 100e-9;
        // Input-referred en contribution: en²·(NG/G)² = en²·(3/2)².
        let expected = en2 * (3.0f64 / 2.0).powi(2);
        assert!(
            (added - expected).abs() / expected < 0.01,
            "added {added} vs {expected}"
        );
    }

    #[test]
    fn output_density_dominated_by_en_times_noise_gain_for_low_noise_resistors() {
        let a = InvertingAmplifier::new(OpampModel::ca3140(), Ohms::new(1_000.0), Ohms::new(100.0))
            .unwrap();
        let d = a.output_noise_density_sq(10_000.0);
        let en2 = a.opamp().voltage_noise_density_sq(10_000.0);
        let expected = en2 * a.noise_gain() * a.noise_gain();
        assert!((d - expected).abs() / expected < 0.05, "{d} vs {expected}");
    }

    #[test]
    fn amplify_applies_negative_gain() {
        let fs = 20_000.0;
        let a = amp();
        let tone: Vec<f64> = (0..50_000)
            .map(|i| 0.01 * (std::f64::consts::TAU * 1_000.0 * i as f64 / fs).sin())
            .collect();
        let out = a.amplify(&tone, fs, 1).unwrap();
        // Power gain 100, sign inverted: cross-correlate at lag 0.
        let dot: f64 = tone.iter().zip(&out).map(|(x, y)| x * y).sum();
        assert!(dot < 0.0, "sign not inverted");
        let p_out = nfbist_dsp::stats::mean_square(&out).unwrap();
        let p_expected = 100.0 * 0.01f64.powi(2) / 2.0;
        assert!((p_out - p_expected).abs() / p_expected < 0.05);
    }

    #[test]
    fn expected_nf_band_average_reasonable() {
        let nf = amp().expected_noise_figure_db(100.0, 1_000.0).unwrap();
        assert!(nf > 0.0 && nf < 10.0, "NF {nf}");
    }
}
