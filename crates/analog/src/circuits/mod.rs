//! Circuit-level models: the paper's non-inverting amplifier DUT with
//! full noise analysis, and Friis cascades.

mod cascade;
mod inverting;
mod noninverting;

pub use cascade::{friis_noise_factor, CascadeStage};
pub use inverting::InvertingAmplifier;
pub use noninverting::NonInvertingAmplifier;
