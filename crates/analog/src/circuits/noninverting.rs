//! The paper's DUT: a non-inverting op-amp amplifier with datasheet
//! noise analysis.
//!
//! Paper Fig. 11 uses a non-inverting amplifier with `Av = 101`
//! (`1 + Rf/Rg` with Rf = 10 kΩ, Rg = 100 Ω in our parameterization);
//! "as the equivalent noise voltages are provided by the data-sheets of
//! the components, one is able to calculate the expected nominal value
//! of the noise figure of the circuit" — that calculation (Burr-Brown
//! AB-103 / Motchenbacher & Connelly) is implemented here, and the same
//! densities drive the time-domain noise synthesis, so the *expected*
//! and the *measured* NF in the Table 3 reproduction rest on identical
//! physics.

use crate::noise::ShapedNoise;
use crate::opamp::OpampModel;
use crate::units::{Kelvin, Ohms};
use crate::AnalogError;

/// A non-inverting op-amp amplifier (gain `1 + Rf/Rg`) with noise
/// analysis against a given source resistance.
///
/// # Examples
///
/// ```
/// use nfbist_analog::circuits::NonInvertingAmplifier;
/// use nfbist_analog::opamp::OpampModel;
/// use nfbist_analog::units::Ohms;
///
/// # fn main() -> Result<(), nfbist_analog::AnalogError> {
/// let dut = NonInvertingAmplifier::new(
///     OpampModel::op27(),
///     Ohms::new(10_000.0), // Rf
///     Ohms::new(100.0),    // Rg
/// )?;
/// assert!((dut.gain() - 101.0).abs() < 1e-12);
/// let nf = dut.expected_noise_figure_db(Ohms::new(2_000.0), 100.0, 1_000.0)?;
/// assert!(nf > 0.0 && nf < 6.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NonInvertingAmplifier {
    opamp: OpampModel,
    rf: Ohms,
    rg: Ohms,
    temperature: Kelvin,
}

impl NonInvertingAmplifier {
    /// Builds the amplifier with feedback resistor `rf` and gain-set
    /// resistor `rg` (resistors at 290 K).
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for non-positive
    /// resistances.
    pub fn new(opamp: OpampModel, rf: Ohms, rg: Ohms) -> Result<Self, AnalogError> {
        if !(rf.value() > 0.0) || !(rg.value() > 0.0) {
            return Err(AnalogError::InvalidParameter {
                name: "resistors",
                reason: "rf and rg must be positive",
            });
        }
        Ok(NonInvertingAmplifier {
            opamp,
            rf,
            rg,
            temperature: Kelvin::REFERENCE,
        })
    }

    /// Overrides the resistor physical temperature (default 290 K).
    pub fn with_temperature(mut self, t: Kelvin) -> Self {
        self.temperature = t;
        self
    }

    /// The op-amp model.
    pub fn opamp(&self) -> &OpampModel {
        &self.opamp
    }

    /// Closed-loop voltage gain `1 + Rf/Rg`.
    pub fn gain(&self) -> f64 {
        1.0 + self.rf.value() / self.rg.value()
    }

    /// The feedback network's parallel resistance `Rf ∥ Rg` seen by the
    /// inverting input.
    pub fn feedback_parallel(&self) -> Ohms {
        self.rf.parallel(self.rg)
    }

    /// Input-referred noise density **squared** added by the amplifier
    /// (everything except the source's own thermal noise), at frequency
    /// `f`, for source resistance `rs` (V²/Hz):
    ///
    /// `en²(f) + in²(f)·Rs² + in²(f)·Rp² + 4kT·Rp`
    ///
    /// following AB-103 with equal noise currents at both inputs.
    pub fn added_noise_density_sq(&self, rs: Ohms, f: f64) -> f64 {
        let rp = self.feedback_parallel();
        let en2 = self.opamp.voltage_noise_density_sq(f);
        let in2 = self.opamp.current_noise_density_sq(f);
        en2 + in2 * rs.value() * rs.value()
            + in2 * rp.value() * rp.value()
            + rp.thermal_noise_density_sq(self.temperature)
    }

    /// Band-averaged added noise density squared over `[f_lo, f_hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] unless
    /// `0 < f_lo < f_hi`.
    pub fn mean_added_noise_density_sq(
        &self,
        rs: Ohms,
        f_lo: f64,
        f_hi: f64,
    ) -> Result<f64, AnalogError> {
        let rp = self.feedback_parallel();
        let en2 = self.opamp.mean_voltage_noise_density_sq(f_lo, f_hi)?;
        let in2 = self.opamp.mean_current_noise_density_sq(f_lo, f_hi)?;
        Ok(en2
            + in2 * rs.value() * rs.value()
            + in2 * rp.value() * rp.value()
            + rp.thermal_noise_density_sq(self.temperature))
    }

    /// Expected noise factor over a band for source resistance `rs`:
    /// `F = 1 + added/(4kT0·Rs)`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for a non-positive
    /// source resistance or an invalid band.
    pub fn expected_noise_factor(
        &self,
        rs: Ohms,
        f_lo: f64,
        f_hi: f64,
    ) -> Result<f64, AnalogError> {
        if !(rs.value() > 0.0) {
            return Err(AnalogError::InvalidParameter {
                name: "rs",
                reason: "source resistance must be positive",
            });
        }
        let source = rs.thermal_noise_density_sq(Kelvin::REFERENCE);
        let added = self.mean_added_noise_density_sq(rs, f_lo, f_hi)?;
        Ok(1.0 + added / source)
    }

    /// Expected noise figure in dB (the "Expected" column of Table 3).
    ///
    /// # Errors
    ///
    /// Same as [`NonInvertingAmplifier::expected_noise_factor`].
    pub fn expected_noise_figure_db(
        &self,
        rs: Ohms,
        f_lo: f64,
        f_hi: f64,
    ) -> Result<f64, AnalogError> {
        Ok(10.0 * self.expected_noise_factor(rs, f_lo, f_hi)?.log10())
    }

    /// Amplifies `input` (the voltage at the non-inverting input,
    /// already containing the source's noise), adding the amplifier's
    /// own input-referred noise synthesized from the model, then
    /// applying the closed-loop gain.
    ///
    /// `rs` is the source resistance the current noise flows through;
    /// `sample_rate` and `seed` control the synthesis.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for bad parameters and
    /// propagates synthesis errors.
    pub fn amplify(
        &self,
        input: &[f64],
        rs: Ohms,
        sample_rate: f64,
        seed: u64,
    ) -> Result<Vec<f64>, AnalogError> {
        if input.is_empty() {
            return Err(AnalogError::EmptyInput { context: "amplify" });
        }
        let mut noise = self.noise_stream(rs, sample_rate, seed)?;
        let own = noise.generate(input.len())?;
        let g = self.gain();
        Ok(input.iter().zip(&own).map(|(&x, &n)| g * (x + n)).collect())
    }

    /// The input-referred noise generator a single
    /// [`NonInvertingAmplifier::amplify`] call draws from — exposed to
    /// the streaming DUT path (`Dut::process_stream`) so chunked
    /// processing synthesizes the *identical* noise sequence.
    ///
    /// DC is zeroed: sub-bin 1/f power would otherwise synthesize as a
    /// spurious per-block offset, and the physical path is AC-coupled
    /// anyway.
    pub(crate) fn noise_stream(
        &self,
        rs: Ohms,
        sample_rate: f64,
        seed: u64,
    ) -> Result<ShapedNoise, AnalogError> {
        if !(rs.value() > 0.0) {
            return Err(AnalogError::InvalidParameter {
                name: "rs",
                reason: "source resistance must be positive",
            });
        }
        ShapedNoise::new(
            |f| {
                if f == 0.0 {
                    0.0
                } else {
                    self.added_noise_density_sq(rs, f)
                }
            },
            sample_rate,
            1 << 15,
            seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_dut(opamp: OpampModel) -> NonInvertingAmplifier {
        NonInvertingAmplifier::new(opamp, Ohms::new(10_000.0), Ohms::new(100.0)).unwrap()
    }

    #[test]
    fn validation() {
        assert!(
            NonInvertingAmplifier::new(OpampModel::op27(), Ohms::new(0.0), Ohms::new(1.0)).is_err()
        );
        assert!(
            NonInvertingAmplifier::new(OpampModel::op27(), Ohms::new(1.0), Ohms::new(-1.0))
                .is_err()
        );
    }

    #[test]
    fn paper_gain_is_101() {
        let dut = paper_dut(OpampModel::op27());
        assert!((dut.gain() - 101.0).abs() < 1e-12);
        assert!((dut.feedback_parallel().value() - 99.0099).abs() < 1e-3);
    }

    #[test]
    fn noise_factor_ordering_matches_table3() {
        // Table 3's ranking: OP27 < OP07 < TL081 < CA3140.
        let rs = Ohms::new(2_000.0);
        let nfs: Vec<f64> = OpampModel::paper_set()
            .into_iter()
            .map(|m| {
                paper_dut(m)
                    .expected_noise_figure_db(rs, 100.0, 1_000.0)
                    .unwrap()
            })
            .collect();
        for w in nfs.windows(2) {
            assert!(w[1] > w[0], "ordering violated: {nfs:?}");
        }
        // The span should be wide like the paper's 3.7 → 16.2 dB.
        assert!(nfs[3] - nfs[0] > 8.0, "span too narrow: {nfs:?}");
        // CA3140 lands in the teens.
        assert!(nfs[3] > 12.0 && nfs[3] < 22.0, "CA3140 NF {}", nfs[3]);
    }

    #[test]
    fn noiseless_opamp_with_tiny_feedback_approaches_0db() {
        let quiet = OpampModel::new(
            "ideal",
            1e-12,
            crate::units::Hertz::new(0.0),
            0.0,
            crate::units::Hertz::new(0.0),
        )
        .unwrap();
        let dut = NonInvertingAmplifier::new(quiet, Ohms::new(1_000.0), Ohms::new(0.01)).unwrap();
        let nf = dut
            .expected_noise_figure_db(Ohms::new(2_000.0), 100.0, 1_000.0)
            .unwrap();
        assert!(nf < 0.01, "NF {nf}");
    }

    #[test]
    fn smaller_source_resistance_raises_nf_for_voltage_noise_dominated_amp() {
        let dut = paper_dut(OpampModel::tl081());
        let nf_small = dut
            .expected_noise_figure_db(Ohms::new(100.0), 100.0, 1_000.0)
            .unwrap();
        let nf_large = dut
            .expected_noise_figure_db(Ohms::new(10_000.0), 100.0, 1_000.0)
            .unwrap();
        assert!(nf_small > nf_large);
    }

    #[test]
    fn expected_factor_validation() {
        let dut = paper_dut(OpampModel::op27());
        assert!(dut
            .expected_noise_factor(Ohms::new(0.0), 100.0, 1e3)
            .is_err());
        assert!(dut.expected_noise_factor(Ohms::new(1e3), 0.0, 1e3).is_err());
        assert!(dut
            .expected_noise_factor(Ohms::new(1e3), 1e3, 100.0)
            .is_err());
    }

    #[test]
    fn amplify_applies_gain_and_adds_noise() {
        let fs = 20_000.0;
        let dut = paper_dut(OpampModel::ca3140());
        let rs = Ohms::new(2_000.0);
        // Amplify silence: the output spectrum is purely the amp's own
        // noise. Compare the in-band density (away from the 1/f region)
        // against the analytic model.
        let silence = vec![0.0; 200_000];
        let out = dut.amplify(&silence, rs, fs, 3).unwrap();
        let psd = nfbist_dsp::psd::WelchConfig::new(4096)
            .unwrap()
            .estimate(&out, fs)
            .unwrap();
        let measured_density = psd.band_power(2_000.0, 6_000.0).unwrap() / 4_000.0;
        let expected_density = dut.gain().powi(2)
            * dut
                .mean_added_noise_density_sq(rs, 2_000.0, 6_000.0)
                .unwrap();
        assert!(
            (measured_density - expected_density).abs() / expected_density < 0.1,
            "density {measured_density} vs {expected_density}"
        );
        // A deterministic signal passes with the closed-loop gain.
        let tone: Vec<f64> = (0..100_000)
            .map(|i| 0.01 * (std::f64::consts::TAU * 1_000.0 * i as f64 / fs).sin())
            .collect();
        let out = dut.amplify(&tone, rs, fs, 4).unwrap();
        let p_sig = nfbist_dsp::stats::mean_square(&out).unwrap();
        let expected_sig = dut.gain().powi(2) * 0.01f64.powi(2) / 2.0;
        assert!(
            (p_sig - expected_sig).abs() / expected_sig < 0.05,
            "{p_sig} vs {expected_sig}"
        );
    }

    #[test]
    fn amplify_validation() {
        let dut = paper_dut(OpampModel::op27());
        assert!(dut.amplify(&[], Ohms::new(1e3), 1e4, 0).is_err());
        assert!(dut.amplify(&[0.0], Ohms::new(0.0), 1e4, 0).is_err());
    }

    #[test]
    fn hot_resistors_add_more_noise() {
        let cold = paper_dut(OpampModel::op27());
        let hot = paper_dut(OpampModel::op27()).with_temperature(Kelvin::new(400.0));
        let rs = Ohms::new(100.0);
        // Use a huge Rf∥Rg so the feedback thermal term dominates.
        let cold = NonInvertingAmplifier::new(
            cold.opamp().clone(),
            Ohms::new(100_000.0),
            Ohms::new(100_000.0),
        )
        .unwrap();
        let hot = NonInvertingAmplifier::new(
            hot.opamp().clone(),
            Ohms::new(100_000.0),
            Ohms::new(100_000.0),
        )
        .unwrap()
        .with_temperature(Kelvin::new(400.0));
        let dc = cold.added_noise_density_sq(rs, 1_000.0);
        let dh = hot.added_noise_density_sq(rs, 1_000.0);
        assert!(dh > dc);
    }
}
