//! The paper's 1-bit digitizer: a comparator plus a sampling flip-flop.

use crate::bitstream::Bitstream;
use crate::converter::Comparator;
use crate::AnalogError;

/// The low-cost BIST digitizer of paper Fig. 6: a voltage comparator
/// whose (+) input takes the analog test point and whose (−) input
/// takes a reference/dither waveform, sampled by a flip-flop.
///
/// An optional decimation factor models a flip-flop clocked slower than
/// the analog simulation rate (every `decimation`-th comparison is
/// latched).
///
/// # Examples
///
/// ```
/// use nfbist_analog::converter::OneBitDigitizer;
///
/// # fn main() -> Result<(), nfbist_analog::AnalogError> {
/// let d = OneBitDigitizer::ideal();
/// let bits = d.digitize(&[1.0, -1.0, 0.5], &[0.0, 0.0, 0.8])?;
/// assert_eq!(bits.to_bipolar(), vec![1.0, -1.0, -1.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OneBitDigitizer {
    comparator: Comparator,
    decimation: usize,
}

impl OneBitDigitizer {
    /// An ideal digitizer: perfect comparator, flip-flop at the full
    /// simulation rate.
    pub fn ideal() -> Self {
        OneBitDigitizer {
            comparator: Comparator::ideal(),
            decimation: 1,
        }
    }

    /// Builds a digitizer around a configured comparator.
    pub fn with_comparator(comparator: Comparator) -> Self {
        OneBitDigitizer {
            comparator,
            decimation: 1,
        }
    }

    /// Latches only every `factor`-th comparison (sampling flip-flop
    /// slower than the analog rate).
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for a zero factor.
    pub fn with_decimation(mut self, factor: usize) -> Result<Self, AnalogError> {
        if factor == 0 {
            return Err(AnalogError::InvalidParameter {
                name: "factor",
                reason: "must be at least 1",
            });
        }
        self.decimation = factor;
        Ok(self)
    }

    /// The comparator model.
    pub fn comparator(&self) -> &Comparator {
        &self.comparator
    }

    /// The decimation factor (1 = the flip-flop latches every
    /// comparison).
    pub fn decimation(&self) -> usize {
        self.decimation
    }

    /// Digitizes `signal` against `reference` (paper Fig. 6: signal on
    /// (+), reference on (−)).
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::LengthMismatch`] for unequal buffer
    /// lengths and [`AnalogError::EmptyInput`] for empty buffers.
    pub fn digitize(&self, signal: &[f64], reference: &[f64]) -> Result<Bitstream, AnalogError> {
        if signal.len() != reference.len() {
            return Err(AnalogError::LengthMismatch {
                expected: signal.len(),
                actual: reference.len(),
                context: "digitize",
            });
        }
        self.digitize_pairs(
            signal.iter().zip(reference).map(|(&s, &r)| (s, r)),
            "digitize",
        )
    }

    /// Digitizes against an implicit zero reference (plain sign
    /// quantization) — the degenerate mode used to verify the arcsine
    /// law directly. No reference buffer is materialized.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::EmptyInput`] for an empty buffer.
    pub fn digitize_sign(&self, signal: &[f64]) -> Result<Bitstream, AnalogError> {
        self.digitize_pairs(signal.iter().map(|&s| (s, 0.0)), "digitize_sign")
    }

    /// The shared acquisition loop: comparator decisions over
    /// `(signal, reference)` pairs streamed straight into whole packed
    /// words. The comparator must see every sample — decimation only
    /// drops latches, not comparisons.
    fn digitize_pairs(
        &self,
        pairs: impl ExactSizeIterator<Item = (f64, f64)>,
        context: &'static str,
    ) -> Result<Bitstream, AnalogError> {
        if pairs.len() == 0 {
            return Err(AnalogError::EmptyInput { context });
        }
        let mut comparator = self.comparator.clone();
        let mut bits = Bitstream::with_capacity(pairs.len() / self.decimation + 1);
        let decimation = self.decimation;
        bits.extend_from_bits(pairs.enumerate().filter_map(|(i, (s, r))| {
            let decision = comparator.compare(s, r);
            (i % decimation == 0).then_some(decision)
        }));
        Ok(bits)
    }
}

impl Default for OneBitDigitizer {
    fn default() -> Self {
        OneBitDigitizer::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::WhiteNoise;

    #[test]
    fn validation() {
        let d = OneBitDigitizer::ideal();
        assert!(d.digitize(&[], &[]).is_err());
        assert!(d.digitize(&[1.0], &[1.0, 2.0]).is_err());
        assert!(OneBitDigitizer::ideal().with_decimation(0).is_err());
    }

    #[test]
    fn sign_quantization() {
        let d = OneBitDigitizer::ideal();
        let bits = d.digitize_sign(&[3.0, -0.1, 0.2]).unwrap();
        assert_eq!(bits.to_bipolar(), vec![1.0, -1.0, 1.0]);
    }

    #[test]
    fn decimation_reduces_record_length() {
        let d = OneBitDigitizer::ideal().with_decimation(4).unwrap();
        let x = vec![1.0; 100];
        let r = vec![0.0; 100];
        assert_eq!(d.digitize(&x, &r).unwrap().len(), 25);
    }

    #[test]
    fn zero_mean_noise_has_half_duty() {
        let mut n = WhiteNoise::new(1.0, 5).unwrap();
        let x = n.generate(100_000);
        let d = OneBitDigitizer::ideal();
        let bits = d.digitize_sign(&x).unwrap();
        assert!((bits.duty() - 0.5).abs() < 0.01, "duty {}", bits.duty());
    }

    #[test]
    fn comparator_offset_biases_duty() {
        let mut n = WhiteNoise::new(1.0, 6).unwrap();
        let x = n.generate(100_000);
        let cmp = Comparator::ideal().with_offset(1.0).unwrap();
        let d = OneBitDigitizer::with_comparator(cmp);
        let bits = d.digitize_sign(&x).unwrap();
        // P(N(0,1) > 1) ≈ 0.159.
        assert!((bits.duty() - 0.159).abs() < 0.01, "duty {}", bits.duty());
        assert_eq!(d.comparator().offset(), 1.0);
    }

    #[test]
    fn digitizer_is_stateless_across_calls() {
        // Because the comparator is cloned per call, repeated
        // digitization of the same record is reproducible.
        let d = OneBitDigitizer::ideal();
        let x = [0.5, -0.5, 0.25];
        let r = [0.0, 0.0, 0.0];
        assert_eq!(d.digitize(&x, &r).unwrap(), d.digitize(&x, &r).unwrap());
    }

    #[test]
    fn arcsine_law_holds_for_gaussian_input() {
        // Paper eq. 12: for zero-mean Gaussian input,
        // Ry(τ) = (2/π)·asin(Rx(τ)/Rx(0)).
        // Construct correlated Gaussian noise by one-pole filtering.
        let mut w = WhiteNoise::new(1.0, 9).unwrap();
        let raw = w.generate(400_000);
        let mut x = vec![0.0f64; raw.len()];
        let a = 0.8;
        for i in 1..raw.len() {
            x[i] = a * x[i - 1] + raw[i];
        }
        let d = OneBitDigitizer::ideal();
        let bits = d.digitize_sign(&x).unwrap();

        let rx = nfbist_dsp::correlation::normalized_autocorrelation(&x, 6).unwrap();
        // Bit-domain path: XOR + popcount on the packed words.
        let ry = bits.normalized_autocorrelation(6).unwrap();
        for lag in 1..=6 {
            let predicted = 2.0 / std::f64::consts::PI * rx[lag].asin();
            assert!(
                (ry[lag] - predicted).abs() < 0.02,
                "lag {lag}: measured {} vs arcsine {predicted}",
                ry[lag]
            );
        }
    }
}
