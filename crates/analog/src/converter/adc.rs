//! Conventional N-bit ADC model, the baseline the 1-bit digitizer is
//! compared against.

use crate::AnalogError;

/// A uniform mid-rise quantizer with `bits` resolution over
/// `±full_scale` volts.
///
/// Used by the ADC-based Y-factor baseline (paper Fig. 4): higher
/// fidelity than the comparator, but it must be shared through an analog
/// mux and cannot observe several test points simultaneously.
///
/// # Examples
///
/// ```
/// use nfbist_analog::converter::Adc;
///
/// # fn main() -> Result<(), nfbist_analog::AnalogError> {
/// let adc = Adc::new(12, 1.0)?;
/// let y = adc.quantize(&[0.5, 2.0, -2.0])?;
/// assert!((y[0] - 0.5).abs() < adc.lsb());
/// assert!(y[1] <= 1.0);   // clipped to full scale
/// assert!(y[2] >= -1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adc {
    bits: u32,
    full_scale: f64,
}

impl Adc {
    /// Creates an ADC with `bits` resolution (1–31) and `±full_scale`
    /// input range.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for zero/excessive bits
    /// or a non-positive full scale.
    pub fn new(bits: u32, full_scale: f64) -> Result<Self, AnalogError> {
        if bits == 0 || bits > 31 {
            return Err(AnalogError::InvalidParameter {
                name: "bits",
                reason: "must be between 1 and 31",
            });
        }
        if !(full_scale > 0.0) || !full_scale.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "full_scale",
                reason: "must be positive and finite",
            });
        }
        Ok(Adc { bits, full_scale })
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Full-scale voltage (the range is `±full_scale`).
    pub fn full_scale(&self) -> f64 {
        self.full_scale
    }

    /// Least-significant-bit size in volts.
    pub fn lsb(&self) -> f64 {
        2.0 * self.full_scale / (1u64 << self.bits) as f64
    }

    /// Quantizes a buffer, clipping outside the input range.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::EmptyInput`] for an empty buffer.
    pub fn quantize(&self, x: &[f64]) -> Result<Vec<f64>, AnalogError> {
        if x.is_empty() {
            return Err(AnalogError::EmptyInput {
                context: "quantize",
            });
        }
        let lsb = self.lsb();
        let max_code = ((1u64 << self.bits) - 1) as f64;
        Ok(x.iter()
            .map(|&v| {
                let clipped = v.clamp(-self.full_scale, self.full_scale);
                let code = ((clipped + self.full_scale) / lsb).floor().min(max_code);
                // Mid-rise reconstruction at the code centre.
                -self.full_scale + (code + 0.5) * lsb
            })
            .collect())
    }

    /// Theoretical quantization-noise-limited SNR for a full-scale sine,
    /// `6.02·bits + 1.76` dB.
    pub fn ideal_snr_db(&self) -> f64 {
        6.020599913279624 * self.bits as f64 + 1.7609125905568124
    }

    /// Memory footprint of an `n`-sample acquisition in bytes, assuming
    /// samples pack into whole bytes (`ceil(bits/8)` each).
    ///
    /// Contrast with `Bitstream::memory_bytes`: this is the SoC memory
    /// cost the 1-bit BIST avoids.
    pub fn memory_bytes(&self, n: usize) -> usize {
        n * (self.bits as usize).div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::WhiteNoise;

    #[test]
    fn validation() {
        assert!(Adc::new(0, 1.0).is_err());
        assert!(Adc::new(32, 1.0).is_err());
        assert!(Adc::new(12, 0.0).is_err());
        assert!(Adc::new(12, 1.0).is_ok());
        assert!(Adc::new(12, 1.0).unwrap().quantize(&[]).is_err());
    }

    #[test]
    fn one_bit_adc_is_a_comparator() {
        let adc = Adc::new(1, 1.0).unwrap();
        let y = adc.quantize(&[0.3, -0.3]).unwrap();
        assert_eq!(y, vec![0.5, -0.5]);
        assert_eq!(adc.lsb(), 1.0);
    }

    #[test]
    fn quantization_error_bounded_by_half_lsb() {
        let adc = Adc::new(8, 1.0).unwrap();
        let x: Vec<f64> = (0..1000).map(|i| -0.99 + 0.00198 * i as f64).collect();
        let y = adc.quantize(&x).unwrap();
        for (a, b) in x.iter().zip(&y) {
            assert!((a - b).abs() <= adc.lsb() / 2.0 + 1e-12);
        }
    }

    #[test]
    fn clipping_at_rails() {
        let adc = Adc::new(10, 2.0).unwrap();
        let y = adc.quantize(&[100.0, -100.0]).unwrap();
        assert!(y[0] < 2.0 && y[0] > 2.0 - adc.lsb());
        assert!(y[1] > -2.0 && y[1] < -2.0 + adc.lsb());
        assert_eq!(adc.bits(), 10);
        assert_eq!(adc.full_scale(), 2.0);
    }

    #[test]
    fn measured_snr_close_to_ideal() {
        let bits = 10;
        let fs = 65_536.0;
        let n = 65_536;
        let adc = Adc::new(bits, 1.0).unwrap();
        let x: Vec<f64> = (0..n)
            .map(|i| 0.999 * (std::f64::consts::TAU * 1024.0 * i as f64 / fs).sin())
            .collect();
        let y = adc.quantize(&x).unwrap();
        let err: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a - b).collect();
        let sig_p = nfbist_dsp::stats::mean_square(&x).unwrap();
        let err_p = nfbist_dsp::stats::mean_square(&err).unwrap();
        let snr = 10.0 * (sig_p / err_p).log10();
        let ideal = adc.ideal_snr_db();
        assert!((snr - ideal).abs() < 1.5, "snr {snr} vs ideal {ideal}");
    }

    #[test]
    fn noise_power_preserved_through_fine_quantizer() {
        let mut w = WhiteNoise::new(0.1, 3).unwrap();
        let x = w.generate(100_000);
        let adc = Adc::new(14, 1.0).unwrap();
        let y = adc.quantize(&x).unwrap();
        let px = nfbist_dsp::stats::mean_square(&x).unwrap();
        let py = nfbist_dsp::stats::mean_square(&y).unwrap();
        assert!((py / px - 1.0).abs() < 0.01, "power ratio {}", py / px);
    }

    #[test]
    fn memory_cost_versus_bitstream() {
        let adc = Adc::new(12, 1.0).unwrap();
        // 12-bit samples packed as 2 bytes: 2 MB for 10⁶ samples —
        // 16× the 1-bit record.
        assert_eq!(adc.memory_bytes(1_000_000), 2_000_000);
    }
}
