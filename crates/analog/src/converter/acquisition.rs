//! The `Digitizer` abstraction: any acquisition front-end that turns a
//! conditioned analog signal into a stored record.
//!
//! The paper compares two front-ends for the same Y-factor measurement:
//! the proposed 1-bit comparator cell (Fig. 6/11) and the conventional
//! ADC behind an analog mux (Fig. 4). [`Digitizer`] captures the shared
//! contract so one generic acquisition path serves both, and [`Record`]
//! is the common currency the power-ratio estimators consume.

use crate::bitstream::Bitstream;
use crate::converter::OneBitDigitizer;
use crate::AnalogError;

/// One stored acquisition: either a packed 1-bit record or multi-bit
/// samples.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A packed comparator bitstream (1 bit/sample).
    Bits(Bitstream),
    /// Quantized multi-bit samples (stored as f64 voltages).
    Samples(Vec<f64>),
}

impl Record {
    /// Number of stored samples.
    pub fn len(&self) -> usize {
        match self {
            Record::Bits(b) => b.len(),
            Record::Samples(s) => s.len(),
        }
    }

    /// `true` for an empty record.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes the record occupies in acquisition memory (packed bits for
    /// the 1-bit record, 8 bytes/sample for the multi-bit one).
    pub fn memory_bytes(&self) -> usize {
        match self {
            Record::Bits(b) => b.memory_bytes(),
            Record::Samples(s) => s.len() * std::mem::size_of::<f64>(),
        }
    }

    /// Expands to the sample buffer the estimators consume: `±1` for a
    /// bitstream, the stored voltages otherwise.
    pub fn to_samples(&self) -> Vec<f64> {
        match self {
            Record::Bits(b) => b.to_bipolar(),
            Record::Samples(s) => s.clone(),
        }
    }

    /// The packed bitstream, when this is a 1-bit record.
    pub fn as_bits(&self) -> Option<&Bitstream> {
        match self {
            Record::Bits(b) => Some(b),
            Record::Samples(_) => None,
        }
    }
}

impl From<Bitstream> for Record {
    fn from(b: Bitstream) -> Self {
        Record::Bits(b)
    }
}

impl From<Vec<f64>> for Record {
    fn from(s: Vec<f64>) -> Self {
        Record::Samples(s)
    }
}

/// An acquisition front-end: conditions its input level, compares or
/// quantizes, and stores a [`Record`].
///
/// Object-safe by design — measurement sessions hold
/// `Box<dyn Digitizer>`.
///
/// # Examples
///
/// ```
/// use nfbist_analog::converter::{Digitizer, OneBitDigitizer};
///
/// # fn main() -> Result<(), nfbist_analog::AnalogError> {
/// let d: Box<dyn Digitizer> = Box::new(OneBitDigitizer::ideal());
/// assert_eq!(d.bits_per_sample(), 1);
/// assert!(d.uses_reference());
/// let record = d.acquire(&[1.0, -1.0, 0.5], &[0.0, 0.0, 0.8])?;
/// assert_eq!(record.to_samples(), vec![1.0, -1.0, -1.0]);
/// # Ok(())
/// # }
/// ```
pub trait Digitizer: Send + Sync {
    /// Human-readable description for reports.
    fn label(&self) -> String;

    /// Stored bits per sample (1 for the comparator cell; the converter
    /// resolution for an ADC).
    fn bits_per_sample(&self) -> u32;

    /// `true` when the front-end compares against a reference waveform
    /// (the 1-bit path); `false` when it preserves absolute scale and
    /// needs none (the ADC path).
    fn uses_reference(&self) -> bool;

    /// The voltage gain to apply between the DUT output and this
    /// front-end. `hot_rms` is the analytic hot-state noise RMS at the
    /// DUT output; `post_gain` is the configured conditioning gain of
    /// the 1-bit bench (which is scale-invariant, so it simply uses
    /// it). Scale-sensitive front-ends derive their own gain from
    /// `hot_rms` instead, to land the signal inside their input range.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] when a usable gain
    /// cannot be derived (e.g. a zero `hot_rms` for an ADC).
    fn frontend_gain(&self, hot_rms: f64, post_gain: f64) -> Result<f64, AnalogError>;

    /// Digitizes a conditioned signal (against `reference` when
    /// [`Digitizer::uses_reference`] is `true`).
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::EmptyInput`] / [`AnalogError::LengthMismatch`]
    /// for malformed buffers and propagates converter errors.
    fn acquire(&self, signal: &[f64], reference: &[f64]) -> Result<Record, AnalogError>;

    /// Begins one streaming [`Digitizer::acquire`] pass: the returned
    /// [`CaptureStream`] accepts conditioned chunks and yields expanded
    /// estimator samples whose concatenation matches
    /// `acquire(whole).to_samples()`.
    ///
    /// The default implementation buffers the record and acquires at
    /// finish — correct for every implementor, at whole-record memory
    /// cost. The comparator cell and the ADC front-end override it with
    /// `O(chunk)`-memory incremental captures.
    fn begin_capture<'a>(&'a self) -> Box<dyn CaptureStream + 'a> {
        Box::new(BufferedCapture {
            digitizer: self,
            signal: Vec::new(),
            reference: Vec::new(),
        })
    }
}

impl<D: Digitizer + ?Sized> Digitizer for Box<D> {
    fn label(&self) -> String {
        (**self).label()
    }

    fn bits_per_sample(&self) -> u32 {
        (**self).bits_per_sample()
    }

    fn uses_reference(&self) -> bool {
        (**self).uses_reference()
    }

    fn frontend_gain(&self, hot_rms: f64, post_gain: f64) -> Result<f64, AnalogError> {
        (**self).frontend_gain(hot_rms, post_gain)
    }

    fn acquire(&self, signal: &[f64], reference: &[f64]) -> Result<Record, AnalogError> {
        (**self).acquire(signal, reference)
    }

    fn begin_capture<'a>(&'a self) -> Box<dyn CaptureStream + 'a> {
        (**self).begin_capture()
    }
}

/// A stateful, chunk-by-chunk view of one [`Digitizer::acquire`] pass:
/// the front-end half of bounded-memory (streaming) acquisition.
///
/// Obtained from [`Digitizer::begin_capture`]. Conditioned signal
/// chunks (with their matching reference chunks, for reference-using
/// front-ends) go in; *expanded estimator samples* — `±1` for a 1-bit
/// cell, quantized voltages for an ADC — come out, in the same order
/// and (for this crate's front-ends) with the same bits as
/// `acquire(whole).to_samples()`, because comparator/converter state
/// evolves sequentially either way.
///
/// The default implementation every [`Digitizer`] gets for free
/// buffers the chunks and runs the batch `acquire` at finish
/// (correct, whole-record memory); see
/// [`CaptureStream::is_incremental`].
pub trait CaptureStream {
    /// Feeds one conditioned chunk and its reference chunk (pass an
    /// equally sized zero chunk when the front-end uses no reference);
    /// appends newly available expanded samples to `out`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::LengthMismatch`] for unequal chunk
    /// lengths and propagates converter errors.
    fn push(
        &mut self,
        signal: &[f64],
        reference: &[f64],
        out: &mut Vec<f64>,
    ) -> Result<(), AnalogError>;

    /// Signals end-of-record; appends any remaining samples to `out`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::EmptyInput`] when no sample was ever
    /// pushed (mirroring [`Digitizer::acquire`] on an empty record) and
    /// propagates converter errors.
    fn finish(&mut self, out: &mut Vec<f64>) -> Result<(), AnalogError>;

    /// `true` when samples are emitted per push with `O(chunk)` memory;
    /// `false` for the buffered whole-record fallback.
    fn is_incremental(&self) -> bool {
        false
    }
}

/// The buffered fallback capture: accumulates the record and runs the
/// batch [`Digitizer::acquire`] once at finish.
struct BufferedCapture<'a, D: Digitizer + ?Sized> {
    digitizer: &'a D,
    signal: Vec<f64>,
    reference: Vec<f64>,
}

impl<D: Digitizer + ?Sized> CaptureStream for BufferedCapture<'_, D> {
    fn push(
        &mut self,
        signal: &[f64],
        reference: &[f64],
        out: &mut Vec<f64>,
    ) -> Result<(), AnalogError> {
        if signal.len() != reference.len() {
            return Err(AnalogError::LengthMismatch {
                expected: signal.len(),
                actual: reference.len(),
                context: "capture push",
            });
        }
        self.signal.extend_from_slice(signal);
        self.reference.extend_from_slice(reference);
        let _ = out;
        Ok(())
    }

    fn finish(&mut self, out: &mut Vec<f64>) -> Result<(), AnalogError> {
        // An empty record errors inside `acquire`, like the batch path.
        let record = self.digitizer.acquire(&self.signal, &self.reference)?;
        self.signal = Vec::new();
        self.reference = Vec::new();
        out.extend_from_slice(&record.to_samples());
        Ok(())
    }
}

/// Incremental capture for the 1-bit comparator cell: one comparator
/// instance (hysteresis state included) survives across chunks, and
/// the decimation phase is tracked by absolute sample index — exactly
/// the sequence a whole-record [`OneBitDigitizer::digitize`] produces.
/// No packed record is stored at all: decisions leave as `±1.0`
/// estimator samples immediately.
struct OneBitCapture {
    comparator: crate::converter::Comparator,
    decimation: usize,
    index: usize,
}

impl CaptureStream for OneBitCapture {
    fn push(
        &mut self,
        signal: &[f64],
        reference: &[f64],
        out: &mut Vec<f64>,
    ) -> Result<(), AnalogError> {
        if signal.len() != reference.len() {
            return Err(AnalogError::LengthMismatch {
                expected: signal.len(),
                actual: reference.len(),
                context: "capture push",
            });
        }
        for (&s, &r) in signal.iter().zip(reference) {
            // The comparator sees every sample; decimation only drops
            // latches, exactly as in the batch acquisition loop.
            let decision = self.comparator.compare(s, r);
            if self.index.is_multiple_of(self.decimation) {
                out.push(if decision { 1.0 } else { -1.0 });
            }
            self.index += 1;
        }
        Ok(())
    }

    fn finish(&mut self, _out: &mut Vec<f64>) -> Result<(), AnalogError> {
        if self.index == 0 {
            return Err(AnalogError::EmptyInput {
                context: "begin_capture",
            });
        }
        Ok(())
    }

    fn is_incremental(&self) -> bool {
        true
    }
}

impl Digitizer for OneBitDigitizer {
    fn label(&self) -> String {
        "1-bit comparator cell".to_string()
    }

    fn bits_per_sample(&self) -> u32 {
        1
    }

    fn uses_reference(&self) -> bool {
        true
    }

    /// The 1-bit path is scale-invariant; the configured post-gain is
    /// used unchanged (it only matters against comparator
    /// imperfections).
    fn frontend_gain(&self, _hot_rms: f64, post_gain: f64) -> Result<f64, AnalogError> {
        if !(post_gain > 0.0) || !post_gain.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "post_gain",
                reason: "must be positive and finite",
            });
        }
        Ok(post_gain)
    }

    fn acquire(&self, signal: &[f64], reference: &[f64]) -> Result<Record, AnalogError> {
        Ok(Record::Bits(self.digitize(signal, reference)?))
    }

    fn begin_capture<'a>(&'a self) -> Box<dyn CaptureStream + 'a> {
        Box::new(OneBitCapture {
            comparator: self.comparator().clone(),
            decimation: self.decimation(),
            index: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips_both_shapes() {
        let bits = OneBitDigitizer::ideal()
            .digitize(&[1.0, -1.0], &[0.0, 0.0])
            .unwrap();
        let r = Record::from(bits.clone());
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.as_bits(), Some(&bits));
        assert_eq!(r.to_samples(), vec![1.0, -1.0]);
        assert_eq!(r.memory_bytes(), bits.memory_bytes());

        let s = Record::from(vec![0.25, -0.5, 0.75]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.as_bits(), None);
        assert_eq!(s.to_samples(), vec![0.25, -0.5, 0.75]);
        assert_eq!(s.memory_bytes(), 24);
    }

    #[test]
    fn one_bit_front_end_contract() {
        let d = OneBitDigitizer::ideal();
        assert_eq!(Digitizer::bits_per_sample(&d), 1);
        assert!(Digitizer::uses_reference(&d));
        assert_eq!(d.frontend_gain(0.1, 1_156.0).unwrap(), 1_156.0);
        assert!(d.frontend_gain(0.1, 0.0).is_err());
        assert!(matches!(
            d.acquire(&[0.5], &[0.0]).unwrap(),
            Record::Bits(_)
        ));
        assert!(d.acquire(&[], &[]).is_err());
    }
}

#[cfg(test)]
mod capture_tests {
    use super::*;
    use crate::converter::{AdcDigitizer, Comparator};
    use crate::noise::WhiteNoise;

    fn signals(n: usize) -> (Vec<f64>, Vec<f64>) {
        let mut w = WhiteNoise::new(1.0, 21).unwrap();
        let signal = w.generate(n);
        let reference: Vec<f64> = (0..n)
            .map(|i| 0.3 * (std::f64::consts::TAU * 0.15 * i as f64).sin())
            .collect();
        (signal, reference)
    }

    fn run_capture(d: &dyn Digitizer, s: &[f64], r: &[f64], chunk: usize) -> (Vec<f64>, bool) {
        let mut cap = d.begin_capture();
        let incremental = cap.is_incremental();
        let mut out = Vec::new();
        for (sc, rc) in s.chunks(chunk).zip(r.chunks(chunk)) {
            cap.push(sc, rc, &mut out).unwrap();
        }
        cap.finish(&mut out).unwrap();
        (out, incremental)
    }

    #[test]
    fn one_bit_capture_matches_batch_bitwise() {
        let (s, r) = signals(10_000);
        // Hysteresis makes the comparator stateful across chunk
        // boundaries — the capture must carry that state.
        let d =
            OneBitDigitizer::with_comparator(Comparator::ideal().with_hysteresis(0.05).unwrap());
        let batch = d.acquire(&s, &r).unwrap().to_samples();
        for chunk in [1usize, 63, 1_000, 10_000] {
            let (streamed, incremental) = run_capture(&d, &s, &r, chunk);
            assert!(incremental);
            assert_eq!(streamed, batch, "chunk {chunk}");
        }
    }

    #[test]
    fn decimated_capture_keeps_the_latch_phase_across_chunks() {
        let (s, r) = signals(1_000);
        let d = OneBitDigitizer::ideal().with_decimation(3).unwrap();
        let batch = d.acquire(&s, &r).unwrap().to_samples();
        let (streamed, _) = run_capture(&d, &s, &r, 7);
        assert_eq!(streamed, batch);
    }

    #[test]
    fn adc_capture_matches_batch_bitwise() {
        let (s, _) = signals(5_000);
        let zeros = vec![0.0; s.len()];
        let d = AdcDigitizer::new(12).unwrap();
        let batch = d.acquire(&s, &zeros).unwrap().to_samples();
        for chunk in [97usize, 2_048, 5_000] {
            let (streamed, incremental) = run_capture(&d, &s, &zeros, chunk);
            assert!(incremental);
            assert_eq!(streamed, batch, "chunk {chunk}");
        }
    }

    #[test]
    fn capture_error_semantics() {
        let d = OneBitDigitizer::ideal();
        let mut cap = d.begin_capture();
        let mut out = Vec::new();
        assert!(cap.push(&[1.0], &[0.0, 0.0], &mut out).is_err(), "mismatch");
        let mut cap = d.begin_capture();
        assert!(cap.finish(&mut out).is_err(), "empty capture");
        // The buffered fallback validates per push too.
        struct Opaque;
        impl Digitizer for Opaque {
            fn label(&self) -> String {
                "opaque".into()
            }
            fn bits_per_sample(&self) -> u32 {
                8
            }
            fn uses_reference(&self) -> bool {
                false
            }
            fn frontend_gain(&self, _h: f64, _p: f64) -> Result<f64, AnalogError> {
                Ok(1.0)
            }
            fn acquire(&self, signal: &[f64], _r: &[f64]) -> Result<Record, AnalogError> {
                if signal.is_empty() {
                    return Err(AnalogError::EmptyInput { context: "acquire" });
                }
                Ok(Record::Samples(signal.to_vec()))
            }
        }
        let mut cap = Opaque.begin_capture();
        assert!(!cap.is_incremental());
        assert!(cap.push(&[1.0], &[], &mut out).is_err());
        cap.push(&[1.0, 2.0], &[0.0, 0.0], &mut out).unwrap();
        assert!(out.is_empty());
        cap.finish(&mut out).unwrap();
        assert_eq!(out, vec![1.0, 2.0]);
    }
}
