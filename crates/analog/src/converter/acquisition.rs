//! The `Digitizer` abstraction: any acquisition front-end that turns a
//! conditioned analog signal into a stored record.
//!
//! The paper compares two front-ends for the same Y-factor measurement:
//! the proposed 1-bit comparator cell (Fig. 6/11) and the conventional
//! ADC behind an analog mux (Fig. 4). [`Digitizer`] captures the shared
//! contract so one generic acquisition path serves both, and [`Record`]
//! is the common currency the power-ratio estimators consume.

use crate::bitstream::Bitstream;
use crate::converter::OneBitDigitizer;
use crate::AnalogError;

/// One stored acquisition: either a packed 1-bit record or multi-bit
/// samples.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A packed comparator bitstream (1 bit/sample).
    Bits(Bitstream),
    /// Quantized multi-bit samples (stored as f64 voltages).
    Samples(Vec<f64>),
}

impl Record {
    /// Number of stored samples.
    pub fn len(&self) -> usize {
        match self {
            Record::Bits(b) => b.len(),
            Record::Samples(s) => s.len(),
        }
    }

    /// `true` for an empty record.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes the record occupies in acquisition memory (packed bits for
    /// the 1-bit record, 8 bytes/sample for the multi-bit one).
    pub fn memory_bytes(&self) -> usize {
        match self {
            Record::Bits(b) => b.memory_bytes(),
            Record::Samples(s) => s.len() * std::mem::size_of::<f64>(),
        }
    }

    /// Expands to the sample buffer the estimators consume: `±1` for a
    /// bitstream, the stored voltages otherwise.
    pub fn to_samples(&self) -> Vec<f64> {
        match self {
            Record::Bits(b) => b.to_bipolar(),
            Record::Samples(s) => s.clone(),
        }
    }

    /// The packed bitstream, when this is a 1-bit record.
    pub fn as_bits(&self) -> Option<&Bitstream> {
        match self {
            Record::Bits(b) => Some(b),
            Record::Samples(_) => None,
        }
    }
}

impl From<Bitstream> for Record {
    fn from(b: Bitstream) -> Self {
        Record::Bits(b)
    }
}

impl From<Vec<f64>> for Record {
    fn from(s: Vec<f64>) -> Self {
        Record::Samples(s)
    }
}

/// An acquisition front-end: conditions its input level, compares or
/// quantizes, and stores a [`Record`].
///
/// Object-safe by design — measurement sessions hold
/// `Box<dyn Digitizer>`.
///
/// # Examples
///
/// ```
/// use nfbist_analog::converter::{Digitizer, OneBitDigitizer};
///
/// # fn main() -> Result<(), nfbist_analog::AnalogError> {
/// let d: Box<dyn Digitizer> = Box::new(OneBitDigitizer::ideal());
/// assert_eq!(d.bits_per_sample(), 1);
/// assert!(d.uses_reference());
/// let record = d.acquire(&[1.0, -1.0, 0.5], &[0.0, 0.0, 0.8])?;
/// assert_eq!(record.to_samples(), vec![1.0, -1.0, -1.0]);
/// # Ok(())
/// # }
/// ```
pub trait Digitizer: Send + Sync {
    /// Human-readable description for reports.
    fn label(&self) -> String;

    /// Stored bits per sample (1 for the comparator cell; the converter
    /// resolution for an ADC).
    fn bits_per_sample(&self) -> u32;

    /// `true` when the front-end compares against a reference waveform
    /// (the 1-bit path); `false` when it preserves absolute scale and
    /// needs none (the ADC path).
    fn uses_reference(&self) -> bool;

    /// The voltage gain to apply between the DUT output and this
    /// front-end. `hot_rms` is the analytic hot-state noise RMS at the
    /// DUT output; `post_gain` is the configured conditioning gain of
    /// the 1-bit bench (which is scale-invariant, so it simply uses
    /// it). Scale-sensitive front-ends derive their own gain from
    /// `hot_rms` instead, to land the signal inside their input range.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] when a usable gain
    /// cannot be derived (e.g. a zero `hot_rms` for an ADC).
    fn frontend_gain(&self, hot_rms: f64, post_gain: f64) -> Result<f64, AnalogError>;

    /// Digitizes a conditioned signal (against `reference` when
    /// [`Digitizer::uses_reference`] is `true`).
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::EmptyInput`] / [`AnalogError::LengthMismatch`]
    /// for malformed buffers and propagates converter errors.
    fn acquire(&self, signal: &[f64], reference: &[f64]) -> Result<Record, AnalogError>;
}

impl<D: Digitizer + ?Sized> Digitizer for Box<D> {
    fn label(&self) -> String {
        (**self).label()
    }

    fn bits_per_sample(&self) -> u32 {
        (**self).bits_per_sample()
    }

    fn uses_reference(&self) -> bool {
        (**self).uses_reference()
    }

    fn frontend_gain(&self, hot_rms: f64, post_gain: f64) -> Result<f64, AnalogError> {
        (**self).frontend_gain(hot_rms, post_gain)
    }

    fn acquire(&self, signal: &[f64], reference: &[f64]) -> Result<Record, AnalogError> {
        (**self).acquire(signal, reference)
    }
}

impl Digitizer for OneBitDigitizer {
    fn label(&self) -> String {
        "1-bit comparator cell".to_string()
    }

    fn bits_per_sample(&self) -> u32 {
        1
    }

    fn uses_reference(&self) -> bool {
        true
    }

    /// The 1-bit path is scale-invariant; the configured post-gain is
    /// used unchanged (it only matters against comparator
    /// imperfections).
    fn frontend_gain(&self, _hot_rms: f64, post_gain: f64) -> Result<f64, AnalogError> {
        if !(post_gain > 0.0) || !post_gain.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "post_gain",
                reason: "must be positive and finite",
            });
        }
        Ok(post_gain)
    }

    fn acquire(&self, signal: &[f64], reference: &[f64]) -> Result<Record, AnalogError> {
        Ok(Record::Bits(self.digitize(signal, reference)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips_both_shapes() {
        let bits = OneBitDigitizer::ideal()
            .digitize(&[1.0, -1.0], &[0.0, 0.0])
            .unwrap();
        let r = Record::from(bits.clone());
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.as_bits(), Some(&bits));
        assert_eq!(r.to_samples(), vec![1.0, -1.0]);
        assert_eq!(r.memory_bytes(), bits.memory_bytes());

        let s = Record::from(vec![0.25, -0.5, 0.75]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.as_bits(), None);
        assert_eq!(s.to_samples(), vec![0.25, -0.5, 0.75]);
        assert_eq!(s.memory_bytes(), 24);
    }

    #[test]
    fn one_bit_front_end_contract() {
        let d = OneBitDigitizer::ideal();
        assert_eq!(Digitizer::bits_per_sample(&d), 1);
        assert!(Digitizer::uses_reference(&d));
        assert_eq!(d.frontend_gain(0.1, 1_156.0).unwrap(), 1_156.0);
        assert!(d.frontend_gain(0.1, 0.0).is_err());
        assert!(matches!(
            d.acquire(&[0.5], &[0.0]).unwrap(),
            Record::Bits(_)
        ));
        assert!(d.acquire(&[], &[]).is_err());
    }
}
