//! Data converters: the 1-bit comparator digitizer (the paper's BIST
//! cell), a conventional N-bit ADC used as the baseline, and the
//! [`Digitizer`] trait that lets the measurement path drive either
//! front-end interchangeably.

pub mod acquisition;

mod adc;
mod adc_digitizer;
mod comparator;
mod digitizer;

pub use acquisition::{CaptureStream, Digitizer, Record};
pub use adc::Adc;
pub use adc_digitizer::AdcDigitizer;
pub use comparator::Comparator;
pub use digitizer::OneBitDigitizer;
