//! Data converters: the 1-bit comparator digitizer (the paper's BIST
//! cell) and a conventional N-bit ADC used as the baseline.

mod adc;
mod comparator;
mod digitizer;

pub use adc::Adc;
pub use comparator::Comparator;
pub use digitizer::OneBitDigitizer;
