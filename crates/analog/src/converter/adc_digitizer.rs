//! The conventional acquisition front-end of paper Fig. 4: analog mux
//! into the SoC's shared N-bit ADC, wrapped as a [`Digitizer`] so the
//! generic measurement path can drive it interchangeably with the 1-bit
//! comparator cell.

use crate::component::{AnalogMux, Block};
use crate::converter::acquisition::{CaptureStream, Digitizer, Record};
use crate::converter::Adc;
use crate::AnalogError;

/// Incremental capture for the ADC front-end: one mux instance
/// survives across chunks and the quantizer is memoryless, so chunked
/// acquisition reproduces the batch record sample for sample.
struct AdcCapture {
    mux: AnalogMux,
    adc: Adc,
    fed: bool,
}

impl CaptureStream for AdcCapture {
    fn push(
        &mut self,
        signal: &[f64],
        reference: &[f64],
        out: &mut Vec<f64>,
    ) -> Result<(), AnalogError> {
        if signal.len() != reference.len() {
            return Err(AnalogError::LengthMismatch {
                expected: signal.len(),
                actual: reference.len(),
                context: "capture push",
            });
        }
        if signal.is_empty() {
            return Ok(());
        }
        let muxed = self.mux.process(signal);
        out.extend_from_slice(&self.adc.quantize(&muxed)?);
        self.fed = true;
        Ok(())
    }

    fn finish(&mut self, _out: &mut Vec<f64>) -> Result<(), AnalogError> {
        if !self.fed {
            return Err(AnalogError::EmptyInput { context: "acquire" });
        }
        Ok(())
    }

    fn is_incremental(&self) -> bool {
        true
    }
}

/// The ADC + analog-mux front-end (paper Fig. 4).
///
/// Unlike the comparator cell, the ADC preserves absolute scale — it
/// needs no reference waveform, but it *does* need the signal
/// conditioned into its input range: [`Digitizer::frontend_gain`]
/// places the hot-state RMS at a configurable fraction of full scale
/// (default 20 %, keeping clipping negligible for Gaussian noise).
///
/// # Examples
///
/// ```
/// use nfbist_analog::converter::{AdcDigitizer, Digitizer};
///
/// # fn main() -> Result<(), nfbist_analog::AnalogError> {
/// let adc = AdcDigitizer::new(12)?;
/// assert_eq!(adc.bits_per_sample(), 12);
/// assert!(!adc.uses_reference());
/// // A hot RMS of 0.05 V maps to a ×4 conditioning gain (0.2 / 0.05).
/// assert!((adc.frontend_gain(0.05, 1_156.0)? - 4.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AdcDigitizer {
    adc: Adc,
    mux: AnalogMux,
    target_fraction: f64,
}

impl AdcDigitizer {
    /// Builds the front-end with a `bits`-resolution ADC over ±1 V and
    /// a 2-channel mux.
    ///
    /// # Errors
    ///
    /// Propagates converter construction errors.
    pub fn new(bits: u32) -> Result<Self, AnalogError> {
        Ok(AdcDigitizer {
            adc: Adc::new(bits, 1.0)?,
            mux: AnalogMux::new(2)?,
            target_fraction: 0.2,
        })
    }

    /// Replaces the ADC model.
    pub fn with_adc(mut self, adc: Adc) -> Self {
        self.adc = adc;
        self
    }

    /// Replaces the mux model (e.g. with crosstalk/attenuation
    /// impairments for robustness studies).
    pub fn with_mux(mut self, mux: AnalogMux) -> Self {
        self.mux = mux;
        self
    }

    /// Sets the fraction of full scale the hot-state RMS is conditioned
    /// to (default 0.2).
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] outside `(0, 1)`.
    pub fn with_target_fraction(mut self, fraction: f64) -> Result<Self, AnalogError> {
        if !(fraction > 0.0 && fraction < 1.0) {
            return Err(AnalogError::InvalidParameter {
                name: "fraction",
                reason: "must be in (0, 1)",
            });
        }
        self.target_fraction = fraction;
        Ok(self)
    }

    /// The ADC model.
    pub fn adc(&self) -> &Adc {
        &self.adc
    }
}

impl Digitizer for AdcDigitizer {
    fn label(&self) -> String {
        format!("{}-bit ADC behind analog mux", self.adc.bits())
    }

    fn bits_per_sample(&self) -> u32 {
        self.adc.bits()
    }

    fn uses_reference(&self) -> bool {
        false
    }

    fn frontend_gain(&self, hot_rms: f64, _post_gain: f64) -> Result<f64, AnalogError> {
        if !(hot_rms > 0.0) || !hot_rms.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "hot_rms",
                reason: "must be positive and finite to scale into the ADC range",
            });
        }
        Ok(self.target_fraction * self.adc.full_scale() / hot_rms)
    }

    fn acquire(&self, signal: &[f64], _reference: &[f64]) -> Result<Record, AnalogError> {
        if signal.is_empty() {
            return Err(AnalogError::EmptyInput { context: "acquire" });
        }
        // Through the (imperfect) mux, then the ADC.
        let muxed = self.mux.clone().process(signal);
        Ok(Record::Samples(self.adc.quantize(&muxed)?))
    }

    fn begin_capture<'a>(&'a self) -> Box<dyn CaptureStream + 'a> {
        Box::new(AdcCapture {
            mux: self.mux.clone(),
            adc: self.adc,
            fed: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_configuration() {
        assert!(AdcDigitizer::new(0).is_err());
        let d = AdcDigitizer::new(12).unwrap();
        assert_eq!(d.adc().bits(), 12);
        assert!(d.clone().with_target_fraction(0.0).is_err());
        assert!(d.clone().with_target_fraction(1.0).is_err());
        let d = d.with_target_fraction(0.25).unwrap();
        assert!((d.frontend_gain(0.5, 999.0).unwrap() - 0.5).abs() < 1e-12);
        assert!(d.frontend_gain(0.0, 999.0).is_err());
    }

    #[test]
    fn acquire_quantizes_within_lsb_of_muxed_signal() {
        use crate::component::AnalogMux;
        // An ideal mux isolates the quantizer behaviour; the default
        // mux carries small insertion loss and distortion.
        let d = AdcDigitizer::new(12).unwrap().with_mux(
            AnalogMux::new(2)
                .unwrap()
                .with_impairments(0.0, 0.0, 1.0)
                .unwrap(),
        );
        let x = [0.25, -0.5, 0.8];
        let r = d.acquire(&x, &[]).unwrap();
        let samples = r.to_samples();
        let lsb = d.adc().lsb();
        for (a, b) in x.iter().zip(&samples) {
            assert!((a - b).abs() <= lsb / 2.0 + 1e-12, "{a} vs {b}");
        }
        assert!(d.acquire(&[], &[]).is_err());
    }

    #[test]
    fn record_memory_dwarfs_one_bit() {
        use crate::converter::OneBitDigitizer;
        let n = 8_192;
        let x = vec![0.1; n];
        let adc = AdcDigitizer::new(12).unwrap().acquire(&x, &[]).unwrap();
        let bits = Digitizer::acquire(&OneBitDigitizer::ideal(), &x, &vec![0.0; n]).unwrap();
        assert!(adc.memory_bytes() >= 16 * bits.memory_bytes());
    }
}
