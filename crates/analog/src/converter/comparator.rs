//! Voltage comparator model.

use crate::AnalogError;

/// A voltage comparator with optional input offset and hysteresis.
///
/// The decision is `(v_plus − v_minus)` against the offset, with
/// Schmitt-trigger hysteresis when configured (the previous decision
/// shifts the threshold by `±hysteresis/2`).
///
/// # Examples
///
/// ```
/// use nfbist_analog::converter::Comparator;
///
/// let mut c = Comparator::ideal();
/// assert!(c.compare(1.0, 0.5));
/// assert!(!c.compare(0.2, 0.5));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Comparator {
    offset: f64,
    hysteresis: f64,
    last: bool,
}

impl Comparator {
    /// An ideal comparator: zero offset, zero hysteresis.
    pub fn ideal() -> Self {
        Comparator {
            offset: 0.0,
            hysteresis: 0.0,
            last: false,
        }
    }

    /// Adds a constant input-referred offset voltage.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for a non-finite offset.
    pub fn with_offset(mut self, offset: f64) -> Result<Self, AnalogError> {
        if !offset.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "offset",
                reason: "must be finite",
            });
        }
        self.offset = offset;
        Ok(self)
    }

    /// Adds hysteresis (total window width in volts).
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for a negative or
    /// non-finite width.
    pub fn with_hysteresis(mut self, width: f64) -> Result<Self, AnalogError> {
        if !(width >= 0.0) || !width.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "width",
                reason: "must be non-negative and finite",
            });
        }
        self.hysteresis = width;
        Ok(self)
    }

    /// Input-referred offset in volts.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Hysteresis window width in volts.
    pub fn hysteresis(&self) -> f64 {
        self.hysteresis
    }

    /// One comparison: `true` when the (+) input exceeds the (−) input
    /// net of offset and hysteresis.
    pub fn compare(&mut self, v_plus: f64, v_minus: f64) -> bool {
        let diff = v_plus - v_minus - self.offset;
        let threshold = if self.last {
            -self.hysteresis / 2.0
        } else {
            self.hysteresis / 2.0
        };
        let out = diff > threshold;
        self.last = out;
        out
    }

    /// Resets the hysteresis memory to the low state.
    pub fn reset(&mut self) {
        self.last = false;
    }
}

impl Default for Comparator {
    fn default() -> Self {
        Comparator::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Comparator::ideal().with_offset(f64::NAN).is_err());
        assert!(Comparator::ideal().with_hysteresis(-0.1).is_err());
        assert!(Comparator::ideal().with_hysteresis(0.01).is_ok());
    }

    #[test]
    fn ideal_decisions() {
        let mut c = Comparator::ideal();
        assert!(c.compare(0.1, 0.0));
        assert!(!c.compare(-0.1, 0.0));
        assert!(!c.compare(0.0, 0.0)); // strict inequality
        assert_eq!(c, Comparator::default().with_offset(0.0).unwrap());
    }

    #[test]
    fn offset_shifts_threshold() {
        let mut c = Comparator::ideal().with_offset(0.5).unwrap();
        assert!(!c.compare(0.4, 0.0));
        assert!(c.compare(0.6, 0.0));
        assert_eq!(c.offset(), 0.5);
    }

    #[test]
    fn hysteresis_requires_overdrive_to_switch() {
        let mut c = Comparator::ideal().with_hysteresis(0.2).unwrap();
        assert_eq!(c.hysteresis(), 0.2);
        // From low state, needs > +0.1 to go high.
        assert!(!c.compare(0.05, 0.0));
        assert!(c.compare(0.15, 0.0));
        // From high state, stays high until below −0.1.
        assert!(c.compare(-0.05, 0.0));
        assert!(!c.compare(-0.15, 0.0));
    }

    #[test]
    fn reset_returns_to_low_state() {
        let mut c = Comparator::ideal().with_hysteresis(0.2).unwrap();
        assert!(c.compare(1.0, 0.0));
        c.reset();
        // Back in the low state: small positive input not enough.
        assert!(!c.compare(0.05, 0.0));
    }
}
