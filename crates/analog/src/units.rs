//! Unit newtypes for the physical quantities the simulator manipulates.
//!
//! These follow the C-NEWTYPE guideline: a noise temperature and a
//! resistance are both `f64`s, but confusing them in a Y-factor equation
//! produces silent nonsense. The newtypes make the compiler catch it.

use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

macro_rules! unit {
    ($(#[$doc:meta])* $name:ident, $suffix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// Creates the quantity from its raw value.
            #[inline]
            pub const fn new(value: f64) -> Self {
                $name(value)
            }

            /// The raw value.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// `true` if the value is finite.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $suffix)
            }
        }

        impl From<f64> for $name {
            fn from(v: f64) -> Self {
                $name(v)
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }
    };
}

unit!(
    /// Absolute temperature in kelvin.
    ///
    /// # Examples
    ///
    /// ```
    /// use nfbist_analog::units::Kelvin;
    /// let hot = Kelvin::new(2900.0);
    /// let cold = Kelvin::new(290.0);
    /// assert_eq!(hot / cold, 10.0);
    /// ```
    Kelvin,
    "K"
);
unit!(
    /// Voltage in volts.
    Volts,
    "V"
);
unit!(
    /// Resistance in ohms.
    Ohms,
    "Ω"
);
unit!(
    /// Frequency in hertz.
    Hertz,
    "Hz"
);
unit!(
    /// Time in seconds.
    Seconds,
    "s"
);
unit!(
    /// Power in watts.
    Watts,
    "W"
);

impl Kelvin {
    /// The IEEE reference temperature T₀ = 290 K.
    pub const REFERENCE: Kelvin = Kelvin(crate::constants::T0_KELVIN);
}

impl Ohms {
    /// Parallel combination of two resistances.
    ///
    /// # Examples
    ///
    /// ```
    /// use nfbist_analog::units::Ohms;
    /// let rp = Ohms::new(10_000.0).parallel(Ohms::new(100.0));
    /// assert!((rp.value() - 99.0099).abs() < 1e-3);
    /// ```
    pub fn parallel(self, other: Ohms) -> Ohms {
        if self.0 == 0.0 || other.0 == 0.0 {
            return Ohms(0.0);
        }
        Ohms(self.0 * other.0 / (self.0 + other.0))
    }

    /// Johnson–Nyquist voltage-noise **density squared** `4kTR` in
    /// V²/Hz at temperature `t`.
    ///
    /// # Examples
    ///
    /// ```
    /// use nfbist_analog::units::{Kelvin, Ohms};
    /// // A 1 kΩ resistor at 290 K: ≈ (4.00 nV)²/Hz.
    /// let e2 = Ohms::new(1_000.0).thermal_noise_density_sq(Kelvin::REFERENCE);
    /// assert!((e2.sqrt() - 4.00e-9).abs() < 2e-11);
    /// ```
    pub fn thermal_noise_density_sq(self, t: Kelvin) -> f64 {
        4.0 * crate::constants::BOLTZMANN * t.value() * self.0
    }
}

impl Volts {
    /// The power this voltage would dissipate in a resistance, `V²/R`.
    pub fn power_into(self, r: Ohms) -> Watts {
        Watts(self.0 * self.0 / r.0)
    }
}

/// Dimensionless voltage gain.
///
/// Stored as a linear factor; convenience constructors/accessors exist
/// for dB.
///
/// # Examples
///
/// ```
/// use nfbist_analog::units::Gain;
/// let g = Gain::from_db(40.0);
/// assert!((g.linear() - 100.0).abs() < 1e-9);
/// assert!((g.db() - 40.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Gain(f64);

impl Gain {
    /// Unity gain.
    pub const UNITY: Gain = Gain(1.0);

    /// Creates a gain from a linear voltage factor.
    pub const fn from_linear(factor: f64) -> Self {
        Gain(factor)
    }

    /// Creates a gain from a value in dB (20·log₁₀ convention).
    pub fn from_db(db: f64) -> Self {
        Gain(10f64.powf(db / 20.0))
    }

    /// Linear voltage factor.
    pub const fn linear(self) -> f64 {
        self.0
    }

    /// Power factor (the square of the voltage factor).
    pub fn power(self) -> f64 {
        self.0 * self.0
    }

    /// Gain in dB.
    pub fn db(self) -> f64 {
        20.0 * self.0.log10()
    }
}

impl Default for Gain {
    fn default() -> Self {
        Gain::UNITY
    }
}

impl Mul for Gain {
    type Output = Gain;
    fn mul(self, rhs: Gain) -> Gain {
        Gain(self.0 * rhs.0)
    }
}

impl fmt::Display for Gain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "×{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_on_units() {
        let a = Kelvin::new(100.0) + Kelvin::new(50.0);
        assert_eq!(a, Kelvin::new(150.0));
        assert_eq!(a - Kelvin::new(50.0), Kelvin::new(100.0));
        assert_eq!(a * 2.0, Kelvin::new(300.0));
        assert_eq!(a / 3.0, Kelvin::new(50.0));
        assert_eq!(Kelvin::new(300.0) / Kelvin::new(100.0), 3.0);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(Kelvin::new(290.0).to_string(), "290 K");
        assert_eq!(Ohms::new(50.0).to_string(), "50 Ω");
        assert_eq!(Gain::from_linear(2.0).to_string(), "×2");
    }

    #[test]
    fn reference_temperature() {
        assert_eq!(Kelvin::REFERENCE.value(), 290.0);
    }

    #[test]
    fn parallel_resistance() {
        let rp = Ohms::new(100.0).parallel(Ohms::new(100.0));
        assert!((rp.value() - 50.0).abs() < 1e-12);
        assert_eq!(Ohms::new(0.0).parallel(Ohms::new(50.0)).value(), 0.0);
    }

    #[test]
    fn johnson_noise_of_50_ohm() {
        // 50 Ω at 290 K: en ≈ 0.895 nV/√Hz.
        let e2 = Ohms::new(50.0).thermal_noise_density_sq(Kelvin::REFERENCE);
        assert!((e2.sqrt() - 0.895e-9).abs() < 5e-12);
    }

    #[test]
    fn power_into_resistance() {
        let p = Volts::new(2.0).power_into(Ohms::new(4.0));
        assert_eq!(p.value(), 1.0);
    }

    #[test]
    fn gain_conversions() {
        assert_eq!(Gain::UNITY.db(), 0.0);
        assert!((Gain::from_db(6.0206).linear() - 2.0).abs() < 1e-4);
        assert_eq!(Gain::from_linear(3.0).power(), 9.0);
        let g = Gain::from_linear(10.0) * Gain::from_linear(5.0);
        assert_eq!(g.linear(), 50.0);
        assert_eq!(Gain::default(), Gain::UNITY);
    }

    #[test]
    fn from_f64_conversions() {
        let t: Kelvin = 300.0.into();
        assert_eq!(t.value(), 300.0);
        assert!(t.is_finite());
        assert!(!Kelvin::new(f64::INFINITY).is_finite());
    }
}
