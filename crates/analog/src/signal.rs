//! Sampled-signal container tying a sample buffer to its sample rate.

use crate::AnalogError;

/// A uniformly sampled real signal with a known sample rate.
///
/// Most simulator blocks operate on raw `&[f64]` buffers for
/// composability; `Signal` is the carrier used at module boundaries where
/// the sample rate must travel with the data (e.g. handing an acquisition
/// to the DSP layer).
///
/// # Examples
///
/// ```
/// use nfbist_analog::signal::Signal;
///
/// # fn main() -> Result<(), nfbist_analog::AnalogError> {
/// let s = Signal::new(vec![0.0, 1.0, 0.0, -1.0], 4.0)?;
/// assert_eq!(s.len(), 4);
/// assert_eq!(s.duration(), 1.0);
/// assert!((s.rms()? - (0.5f64).sqrt()).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Signal {
    samples: Vec<f64>,
    sample_rate: f64,
}

impl Signal {
    /// Wraps samples with their sample rate.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for a non-positive or
    /// non-finite sample rate.
    pub fn new(samples: Vec<f64>, sample_rate: f64) -> Result<Self, AnalogError> {
        if !(sample_rate > 0.0) || !sample_rate.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "sample_rate",
                reason: "must be positive and finite",
            });
        }
        Ok(Signal {
            samples,
            sample_rate,
        })
    }

    /// The sample buffer.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Mutable access to the sample buffer.
    pub fn samples_mut(&mut self) -> &mut [f64] {
        &mut self.samples
    }

    /// Consumes the signal, returning the raw buffer.
    pub fn into_samples(self) -> Vec<f64> {
        self.samples
    }

    /// Sample rate in hertz.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if the signal holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Record duration in seconds.
    pub fn duration(&self) -> f64 {
        self.samples.len() as f64 / self.sample_rate
    }

    /// Root-mean-square value.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty signal.
    pub fn rms(&self) -> Result<f64, AnalogError> {
        Ok(nfbist_dsp::stats::rms(&self.samples)?)
    }

    /// Mean-square value (average power into 1 Ω).
    ///
    /// # Errors
    ///
    /// Returns an error for an empty signal.
    pub fn power(&self) -> Result<f64, AnalogError> {
        Ok(nfbist_dsp::stats::mean_square(&self.samples)?)
    }

    /// Adds another signal sample-wise.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::LengthMismatch`] for differing lengths and
    /// [`AnalogError::InvalidParameter`] for differing sample rates.
    pub fn add(&self, other: &Signal) -> Result<Signal, AnalogError> {
        if self.sample_rate != other.sample_rate {
            return Err(AnalogError::InvalidParameter {
                name: "sample_rate",
                reason: "signals must share a sample rate",
            });
        }
        if self.len() != other.len() {
            return Err(AnalogError::LengthMismatch {
                expected: self.len(),
                actual: other.len(),
                context: "signal add",
            });
        }
        let samples = self
            .samples
            .iter()
            .zip(&other.samples)
            .map(|(a, b)| a + b)
            .collect();
        Signal::new(samples, self.sample_rate)
    }

    /// Scales every sample by `k`.
    pub fn scaled(&self, k: f64) -> Signal {
        Signal {
            samples: self.samples.iter().map(|v| v * k).collect(),
            sample_rate: self.sample_rate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_rate() {
        assert!(Signal::new(vec![], 0.0).is_err());
        assert!(Signal::new(vec![], -1.0).is_err());
        assert!(Signal::new(vec![], f64::NAN).is_err());
        assert!(Signal::new(vec![], 1.0).is_ok());
    }

    #[test]
    fn geometry_and_power() {
        let s = Signal::new(vec![2.0; 100], 50.0).unwrap();
        assert_eq!(s.len(), 100);
        assert!(!s.is_empty());
        assert_eq!(s.duration(), 2.0);
        assert_eq!(s.power().unwrap(), 4.0);
        assert_eq!(s.rms().unwrap(), 2.0);
    }

    #[test]
    fn add_requires_matching_shape() {
        let a = Signal::new(vec![1.0, 2.0], 10.0).unwrap();
        let b = Signal::new(vec![3.0, 4.0], 10.0).unwrap();
        assert_eq!(a.add(&b).unwrap().samples(), &[4.0, 6.0]);
        let c = Signal::new(vec![1.0], 10.0).unwrap();
        assert!(a.add(&c).is_err());
        let d = Signal::new(vec![1.0, 1.0], 20.0).unwrap();
        assert!(a.add(&d).is_err());
    }

    #[test]
    fn scaling() {
        let s = Signal::new(vec![1.0, -2.0], 10.0).unwrap();
        assert_eq!(s.scaled(-0.5).samples(), &[-0.5, 1.0]);
    }

    #[test]
    fn into_samples_roundtrip() {
        let s = Signal::new(vec![1.0, 2.0], 10.0).unwrap();
        let mut s2 = s.clone();
        s2.samples_mut()[0] = 9.0;
        assert_eq!(s2.into_samples(), vec![9.0, 2.0]);
        assert_eq!(s.samples(), &[1.0, 2.0]);
    }
}
