//! Wafer/lot population synthesis: the die populations a fleet-scale
//! screening run measures.
//!
//! The paper's BIST only pays off at production volume — the same
//! on-chip noise-figure test replicated across every die on every
//! wafer. This module synthesizes that population deterministically:
//!
//! * [`WaferMap`] — the die-site geometry: a square grid clipped to
//!   the wafer disc, each [`DieSite`] carrying its normalized
//!   coordinates (the raw material of spatial yield models).
//! * [`ProcessVariation`] — per-die parametric variation: a seeded
//!   Gaussian spread of excess-noise and gain multipliers plus a
//!   center-to-edge systematic noise gradient (edge dies run hotter).
//! * [`DefectModel`] — spatially *correlated* defects: a uniform
//!   background rate, an edge-ring gradient, and cluster blobs (the
//!   classic scratch/particle signatures) that concentrate defective
//!   dies in patches instead of scattering them uniformly.
//! * [`Lot`] — ties the three together under one lot seed and answers
//!   the only question the screening layer asks: *what is die `i`?*
//!   Every [`DieSpec`] is a pure function of `(lot configuration,
//!   die index)`, which is what lets a fleet scheduler fan thousands
//!   of die screens across workers with bit-identical results.
//!
//! The seed scheme mirrors the measurement stack's: [`die_seed`] is
//! the same golden-ratio walk + SplitMix64 finalizer as
//! `nfbist_soc::session::derive_seed`, so a die's *measurement* seed
//! upstairs and its *population* draws here never collide by
//! construction (the population draws salt the lot seed first).
//!
//! # Examples
//!
//! ```
//! use nfbist_analog::wafer::{DefectModel, Lot, ProcessVariation, WaferMap};
//!
//! # fn main() -> Result<(), nfbist_analog::AnalogError> {
//! let wafer = WaferMap::disc(12)?; // 12×12 grid clipped to the disc
//! let defects = DefectModel::new()
//!     .background(0.02)?
//!     .edge_gradient(0.10)?
//!     .seeded_clusters(2, 0.25, 0.6, 7)?;
//! let lot = Lot::new(wafer, ProcessVariation::default(), defects, 42)?
//!     .defect_kinds(9);
//! let die = lot.die(17)?;
//! assert_eq!(die, lot.die(17)?); // a die is a pure function of its index
//! assert!(die.noise_scale >= 1.0);
//! # Ok(())
//! # }
//! ```

use crate::error::AnalogError;
use crate::noise::standard_normal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The golden-ratio increment of the seed-derivation walk (φ·2⁶⁴) —
/// the same constant as `nfbist_soc::session::REPEAT_SEED_STRIDE`.
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Salt separating a die's *population* draws (variation, defect
/// assignment) from its *measurement* seed: both walk from the lot
/// seed, but the population walk starts from a salted base.
const POPULATION_SALT: u64 = 0x5AFE_D1E5_0F4B_1C05;

/// Deterministic per-die seed derivation: golden-ratio walk +
/// SplitMix64 finalizer over `(lot_seed, die_index)`.
///
/// This is intentionally the **same function** as
/// `nfbist_soc::session::derive_seed` (the measurement stack's
/// canonical scheme), restated here because the analog layer sits
/// below the SoC crate; the fleet tests pin the two implementations
/// together bit for bit.
///
/// # Examples
///
/// ```
/// use nfbist_analog::wafer::die_seed;
///
/// assert_eq!(die_seed(42, 7), die_seed(42, 7));
/// assert_ne!(die_seed(42, 7), die_seed(42, 8));
/// ```
pub fn die_seed(lot_seed: u64, die_index: u64) -> u64 {
    let mut z = lot_seed.wrapping_add(die_index.wrapping_add(1).wrapping_mul(SEED_STRIDE));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One die site on a wafer: grid position plus normalized wafer
/// coordinates (`x`, `y` in `[-1, 1]`, `radius` in `[0, 1]` from
/// center to edge).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DieSite {
    /// Dense die index, row-major over the on-wafer sites.
    pub index: usize,
    /// Grid row.
    pub row: usize,
    /// Grid column.
    pub col: usize,
    /// Normalized horizontal position of the die center.
    pub x: f64,
    /// Normalized vertical position of the die center.
    pub y: f64,
    /// Normalized distance from the wafer center (0 = center,
    /// 1 = edge).
    pub radius: f64,
}

/// The die-site layout of one wafer: a `grid × grid` reticle map
/// clipped to the wafer disc.
///
/// # Examples
///
/// ```
/// use nfbist_analog::wafer::WaferMap;
///
/// let map = WaferMap::disc(10)?;
/// // The disc keeps ~π/4 of the 100 grid cells.
/// assert!(map.dies() > 60 && map.dies() < 90);
/// assert!(map.site(0).unwrap().radius <= 1.0);
/// # Ok::<(), nfbist_analog::AnalogError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WaferMap {
    grid: usize,
    sites: Vec<DieSite>,
}

impl WaferMap {
    /// A `grid × grid` reticle map keeping the cells whose centers lie
    /// within the wafer disc.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for a zero grid.
    pub fn disc(grid: usize) -> Result<Self, AnalogError> {
        if grid == 0 {
            return Err(AnalogError::InvalidParameter {
                name: "grid",
                reason: "a wafer map needs at least one reticle cell",
            });
        }
        let half = grid as f64 / 2.0;
        let mut sites = Vec::new();
        for row in 0..grid {
            for col in 0..grid {
                let x = (col as f64 + 0.5 - half) / half;
                let y = (row as f64 + 0.5 - half) / half;
                let radius = (x * x + y * y).sqrt();
                if radius <= 1.0 {
                    sites.push(DieSite {
                        index: sites.len(),
                        row,
                        col,
                        x,
                        y,
                        radius,
                    });
                }
            }
        }
        Ok(WaferMap { grid, sites })
    }

    /// The grid dimension (rows = columns).
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// Number of on-wafer die sites.
    pub fn dies(&self) -> usize {
        self.sites.len()
    }

    /// Site `i`, if present.
    pub fn site(&self, i: usize) -> Option<&DieSite> {
        self.sites.get(i)
    }

    /// All sites, in die-index (row-major) order.
    pub fn sites(&self) -> &[DieSite] {
        &self.sites
    }

    /// Renders the wafer as ASCII art: `mark(site)` supplies each
    /// on-wafer cell's character, off-wafer cells print as `·`.
    /// Columns are space-separated so the disc keeps its aspect ratio
    /// in a terminal.
    pub fn render(&self, mut mark: impl FnMut(&DieSite) -> char) -> String {
        let mut out = String::new();
        let mut next = self.sites.iter().peekable();
        for row in 0..self.grid {
            for col in 0..self.grid {
                if col > 0 {
                    out.push(' ');
                }
                match next.peek() {
                    Some(site) if site.row == row && site.col == col => {
                        let site = next.next().expect("peeked");
                        out.push(mark(site));
                    }
                    _ => out.push('·'),
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Per-die parametric process variation: seeded Gaussian spreads plus
/// a center-to-edge systematic noise gradient.
///
/// The drawn multipliers feed the fault layer directly: the noise
/// scale becomes an `ExcessNoise` power factor (floored at 1 — the
/// datasheet model is the healthy floor), the gain scale a
/// `GainDeviation` factor (log-normal around 1).
///
/// # Examples
///
/// ```
/// use nfbist_analog::wafer::ProcessVariation;
///
/// let v = ProcessVariation::new()
///     .noise_sigma(0.1)?
///     .gain_sigma(0.02)?
///     .radial_noise(0.3)?;
/// assert_eq!(v, v.clone());
/// # Ok::<(), nfbist_analog::AnalogError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessVariation {
    noise_sigma: f64,
    gain_sigma: f64,
    radial_noise: f64,
}

impl ProcessVariation {
    /// Default variation: 5 % noise spread, 2 % gain spread, 20 %
    /// extra noise power at the wafer edge.
    pub fn new() -> Self {
        ProcessVariation {
            noise_sigma: 0.05,
            gain_sigma: 0.02,
            radial_noise: 0.20,
        }
    }

    /// Sets the fractional σ of the per-die excess-noise multiplier.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for a negative or
    /// non-finite σ.
    pub fn noise_sigma(mut self, sigma: f64) -> Result<Self, AnalogError> {
        if !(sigma >= 0.0) || !sigma.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "noise_sigma",
                reason: "noise spread must be non-negative and finite",
            });
        }
        self.noise_sigma = sigma;
        Ok(self)
    }

    /// Sets the fractional σ of the per-die gain multiplier.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for a negative or
    /// non-finite σ.
    pub fn gain_sigma(mut self, sigma: f64) -> Result<Self, AnalogError> {
        if !(sigma >= 0.0) || !sigma.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "gain_sigma",
                reason: "gain spread must be non-negative and finite",
            });
        }
        self.gain_sigma = sigma;
        Ok(self)
    }

    /// Sets the systematic noise-power excess at the wafer edge
    /// (`0.2` = an edge die runs 20 % hotter than a center die before
    /// the random spread).
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for a negative or
    /// non-finite gradient.
    pub fn radial_noise(mut self, fraction: f64) -> Result<Self, AnalogError> {
        if !(fraction >= 0.0) || !fraction.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "radial_noise",
                reason: "the radial gradient must be non-negative and finite",
            });
        }
        self.radial_noise = fraction;
        Ok(self)
    }
}

impl Default for ProcessVariation {
    fn default() -> Self {
        Self::new()
    }
}

/// One spatial defect cluster: a disc of elevated defect probability
/// in normalized wafer coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefectCluster {
    /// Cluster center, normalized horizontal coordinate.
    pub x: f64,
    /// Cluster center, normalized vertical coordinate.
    pub y: f64,
    /// Cluster radius as a fraction of the wafer radius.
    pub radius: f64,
    /// Defect probability added to dies inside the cluster disc.
    pub probability: f64,
}

/// A spatially correlated defect model: uniform background rate,
/// edge-ring gradient, and cluster blobs.
///
/// The per-die defect probability is
/// `min(1, background + edge·r² + Σ cluster p over covering blobs)` —
/// deliberately simple, but enough to reproduce the two canonical
/// wafer-map signatures (edge ring, particle cluster) that make
/// defective dies *spatially* correlated while each die's draw stays
/// an independent pure function of its index.
///
/// # Examples
///
/// ```
/// use nfbist_analog::wafer::{DefectModel, WaferMap};
///
/// let model = DefectModel::new().background(0.01)?.edge_gradient(0.2)?;
/// let map = WaferMap::disc(8)?;
/// let center = map.sites().iter().find(|s| s.radius < 0.3).unwrap();
/// let edge = map.sites().iter().find(|s| s.radius > 0.9).unwrap();
/// assert!(model.defect_probability(edge) > model.defect_probability(center));
/// # Ok::<(), nfbist_analog::AnalogError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DefectModel {
    background: f64,
    edge: f64,
    clusters: Vec<DefectCluster>,
}

fn validated_probability(p: f64, name: &'static str) -> Result<f64, AnalogError> {
    if !(0.0..=1.0).contains(&p) || !p.is_finite() {
        return Err(AnalogError::InvalidParameter {
            name,
            reason: "a probability must lie in [0, 1]",
        });
    }
    Ok(p)
}

impl DefectModel {
    /// A defect-free model; add terms with the builder methods.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the spatially uniform background defect probability.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for a probability
    /// outside `[0, 1]`.
    pub fn background(mut self, p: f64) -> Result<Self, AnalogError> {
        self.background = validated_probability(p, "background")?;
        Ok(self)
    }

    /// Sets the edge-ring gradient: `p·r²` extra defect probability at
    /// normalized radius `r` (the full `p` at the wafer edge).
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for a probability
    /// outside `[0, 1]`.
    pub fn edge_gradient(mut self, p: f64) -> Result<Self, AnalogError> {
        self.edge = validated_probability(p, "edge_gradient")?;
        Ok(self)
    }

    /// Adds one explicit cluster blob.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for a non-positive
    /// radius, an out-of-disc center, or a probability outside
    /// `[0, 1]`.
    pub fn cluster(
        mut self,
        x: f64,
        y: f64,
        radius: f64,
        probability: f64,
    ) -> Result<Self, AnalogError> {
        if !(radius > 0.0) || !radius.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "radius",
                reason: "a cluster needs a positive, finite radius",
            });
        }
        if !x.is_finite() || !y.is_finite() || x * x + y * y > 1.0 {
            return Err(AnalogError::InvalidParameter {
                name: "center",
                reason: "a cluster center must lie within the unit disc",
            });
        }
        let probability = validated_probability(probability, "probability")?;
        self.clusters.push(DefectCluster {
            x,
            y,
            radius,
            probability,
        });
        Ok(self)
    }

    /// Adds `count` clusters of the given radius and probability with
    /// centers drawn uniformly over the wafer disc from `seed` — the
    /// cluster geometry is a pure function of the seed, never of
    /// time or scheduling.
    ///
    /// # Errors
    ///
    /// Propagates the per-cluster validation of
    /// [`DefectModel::cluster`].
    pub fn seeded_clusters(
        mut self,
        count: usize,
        radius: f64,
        probability: f64,
        seed: u64,
    ) -> Result<Self, AnalogError> {
        let mut rng = StdRng::seed_from_u64(die_seed(seed ^ POPULATION_SALT, 0));
        for _ in 0..count {
            // Rejection-sample a uniform point in the unit disc.
            let (x, y) = loop {
                let x = 2.0 * rng.gen::<f64>() - 1.0;
                let y = 2.0 * rng.gen::<f64>() - 1.0;
                if x * x + y * y <= 1.0 {
                    break (x, y);
                }
            };
            self = self.cluster(x, y, radius, probability)?;
        }
        Ok(self)
    }

    /// The cluster blobs currently in the model.
    pub fn clusters(&self) -> &[DefectCluster] {
        &self.clusters
    }

    /// The defect probability at one die site (clamped to 1).
    pub fn defect_probability(&self, site: &DieSite) -> f64 {
        let mut p = self.background + self.edge * site.radius * site.radius;
        for c in &self.clusters {
            let dx = site.x - c.x;
            let dy = site.y - c.y;
            if dx * dx + dy * dy <= c.radius * c.radius {
                p += c.probability;
            }
        }
        p.min(1.0)
    }
}

/// One synthesized die: where it sits, how its process varied, and
/// whether (and how) it is defective. A pure function of the lot
/// configuration and the die index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DieSpec {
    /// Die index within the lot.
    pub index: usize,
    /// Grid row.
    pub row: usize,
    /// Grid column.
    pub col: usize,
    /// Normalized distance from the wafer center.
    pub radius: f64,
    /// Excess-noise power multiplier from process variation (≥ 1; the
    /// datasheet model is the healthy floor).
    pub noise_scale: f64,
    /// Gain multiplier from process variation (log-normal around 1).
    pub gain_scale: f64,
    /// `Some(kind)` when the die carries a defect; `kind` indexes the
    /// screening layer's fault-variant space (`0..defect_kinds`).
    pub defect: Option<usize>,
    /// The die's measurement seed: [`die_seed`]`(lot_seed, index)` —
    /// the one value the whole screening result is a function of.
    pub seed: u64,
}

/// A lot: one wafer's worth of dies synthesized from a single seed.
///
/// # Examples
///
/// ```
/// use nfbist_analog::wafer::{DefectModel, Lot, ProcessVariation, WaferMap};
///
/// # fn main() -> Result<(), nfbist_analog::AnalogError> {
/// let lot = Lot::new(
///     WaferMap::disc(8)?,
///     ProcessVariation::default(),
///     DefectModel::new().background(0.5)?,
///     1,
/// )?
/// .defect_kinds(3);
/// let defective = (0..lot.dies())
///     .filter(|&i| lot.die(i).unwrap().defect.is_some())
///     .count();
/// // Background 0.5: roughly half the lot is defective.
/// assert!(defective > lot.dies() / 5 && defective < lot.dies() * 4 / 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Lot {
    wafer: WaferMap,
    variation: ProcessVariation,
    defects: DefectModel,
    kinds: usize,
    seed: u64,
}

impl Lot {
    /// Assembles a lot from its wafer geometry, variation model,
    /// defect model and seed.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for an empty wafer
    /// map.
    pub fn new(
        wafer: WaferMap,
        variation: ProcessVariation,
        defects: DefectModel,
        seed: u64,
    ) -> Result<Self, AnalogError> {
        if wafer.dies() == 0 {
            return Err(AnalogError::InvalidParameter {
                name: "wafer",
                reason: "a lot needs at least one die site",
            });
        }
        Ok(Lot {
            wafer,
            variation,
            defects,
            kinds: 1,
            seed,
        })
    }

    /// Sets the number of defect kinds a defective die is assigned
    /// among (clamped to ≥ 1). The screening layer maps each kind to
    /// a fault-universe variant.
    pub fn defect_kinds(mut self, n: usize) -> Self {
        self.kinds = n.max(1);
        self
    }

    /// The lot seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of dies in the lot.
    pub fn dies(&self) -> usize {
        self.wafer.dies()
    }

    /// The wafer geometry.
    pub fn wafer(&self) -> &WaferMap {
        &self.wafer
    }

    /// The expected number of defective dies (the sum of per-site
    /// defect probabilities) — the ground truth a yield report is
    /// judged against.
    pub fn expected_defects(&self) -> f64 {
        self.wafer
            .sites()
            .iter()
            .map(|s| self.defects.defect_probability(s))
            .sum()
    }

    /// Synthesizes die `i`. Deterministic: the same index always
    /// yields the same [`DieSpec`], independent of call order — the
    /// property the fleet scheduler's bit-identical fan-out rests on.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for an out-of-range
    /// index.
    pub fn die(&self, i: usize) -> Result<DieSpec, AnalogError> {
        let site = self.wafer.site(i).ok_or(AnalogError::InvalidParameter {
            name: "die",
            reason: "die index beyond the wafer map",
        })?;
        // Population draws walk from a salted base so they can never
        // collide with the measurement seeds derived from the raw lot
        // seed.
        let mut rng = StdRng::seed_from_u64(die_seed(self.seed ^ POPULATION_SALT, i as u64));
        let z_noise = standard_normal(&mut rng);
        let z_gain = standard_normal(&mut rng);
        let u_defect: f64 = rng.gen();
        let u_kind: f64 = rng.gen();

        let r2 = site.radius * site.radius;
        let noise_scale = ((1.0 + self.variation.radial_noise * r2)
            * (self.variation.noise_sigma * z_noise).exp())
        .max(1.0);
        let gain_scale = (self.variation.gain_sigma * z_gain).exp();
        let defect = (u_defect < self.defects.defect_probability(site))
            .then(|| ((u_kind * self.kinds as f64) as usize).min(self.kinds - 1));

        Ok(DieSpec {
            index: site.index,
            row: site.row,
            col: site.col,
            radius: site.radius,
            noise_scale,
            gain_scale,
            defect,
            seed: die_seed(self.seed, i as u64),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_derivation_matches_the_canonical_scheme() {
        // Spot values of the SplitMix64 walk; the cross-crate pin
        // against `nfbist_soc::session::derive_seed` lives in the
        // runtime fleet tests.
        assert_eq!(die_seed(0, 0), die_seed(0, 0));
        let seeds: Vec<u64> = (0..256).map(|i| die_seed(99, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "die seeds must not collide");
        let _ = die_seed(u64::MAX, u64::MAX);
    }

    #[test]
    fn disc_geometry() {
        assert!(WaferMap::disc(0).is_err());
        let one = WaferMap::disc(1).unwrap();
        assert_eq!(one.dies(), 1);
        let map = WaferMap::disc(20).unwrap();
        // Disc area fraction of the square: π/4 ≈ 0.785.
        let fill = map.dies() as f64 / (20.0 * 20.0);
        assert!((fill - 0.785).abs() < 0.1, "fill {fill}");
        // Sites are dense, row-major, on-disc.
        for (k, site) in map.sites().iter().enumerate() {
            assert_eq!(site.index, k);
            assert!(site.radius <= 1.0);
        }
        assert!(map.site(map.dies()).is_none());
        // Corners are off-wafer.
        assert!(!map.sites().iter().any(|s| s.row == 0 && s.col == 0));
    }

    #[test]
    fn render_marks_sites_and_offwafer_cells() {
        let map = WaferMap::disc(6).unwrap();
        let art = map.render(|_| 'o');
        assert_eq!(art.lines().count(), 6);
        assert_eq!(art.matches('o').count(), map.dies());
        assert_eq!(art.matches('·').count(), 6 * 6 - map.dies());
        // The mark closure sees each site exactly once, in index order.
        let mut seen = Vec::new();
        map.render(|s| {
            seen.push(s.index);
            'x'
        });
        assert_eq!(seen, (0..map.dies()).collect::<Vec<_>>());
    }

    #[test]
    fn variation_validation_and_defaults() {
        assert!(ProcessVariation::new().noise_sigma(-0.1).is_err());
        assert!(ProcessVariation::new().gain_sigma(f64::NAN).is_err());
        assert!(ProcessVariation::new().radial_noise(-1.0).is_err());
        assert_eq!(ProcessVariation::default(), ProcessVariation::new());
    }

    #[test]
    fn defect_model_terms_compose() {
        assert!(DefectModel::new().background(1.5).is_err());
        assert!(DefectModel::new().edge_gradient(-0.1).is_err());
        assert!(DefectModel::new().cluster(0.0, 0.0, 0.0, 0.5).is_err());
        assert!(DefectModel::new().cluster(2.0, 0.0, 0.1, 0.5).is_err());
        assert!(DefectModel::new().cluster(0.0, 0.0, 0.1, 7.0).is_err());

        let map = WaferMap::disc(16).unwrap();
        let model = DefectModel::new()
            .background(0.01)
            .unwrap()
            .cluster(0.0, 0.0, 0.3, 0.9)
            .unwrap();
        let inside = map.sites().iter().find(|s| s.radius < 0.2).unwrap();
        let outside = map.sites().iter().find(|s| s.radius > 0.8).unwrap();
        assert!((model.defect_probability(inside) - 0.91).abs() < 1e-12);
        assert!((model.defect_probability(outside) - 0.01).abs() < 1e-12);
        // Probabilities clamp at 1.
        let saturated = DefectModel::new()
            .background(0.8)
            .unwrap()
            .cluster(0.0, 0.0, 1.0, 0.8)
            .unwrap();
        assert_eq!(saturated.defect_probability(inside), 1.0);
        assert_eq!(saturated.clusters().len(), 1);
    }

    #[test]
    fn seeded_clusters_are_a_pure_function_of_the_seed() {
        let a = DefectModel::new().seeded_clusters(3, 0.2, 0.5, 11).unwrap();
        let b = DefectModel::new().seeded_clusters(3, 0.2, 0.5, 11).unwrap();
        let c = DefectModel::new().seeded_clusters(3, 0.2, 0.5, 12).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.clusters().len(), 3);
        for cl in a.clusters() {
            assert!(cl.x * cl.x + cl.y * cl.y <= 1.0);
        }
    }

    #[test]
    fn dies_are_pure_functions_of_their_index() {
        let lot = Lot::new(
            WaferMap::disc(10).unwrap(),
            ProcessVariation::default(),
            DefectModel::new()
                .background(0.1)
                .unwrap()
                .edge_gradient(0.3)
                .unwrap(),
            77,
        )
        .unwrap()
        .defect_kinds(4);
        assert!(lot.die(lot.dies()).is_err());
        for i in [0, 3, lot.dies() - 1] {
            assert_eq!(lot.die(i).unwrap(), lot.die(i).unwrap());
        }
        let spec = lot.die(5).unwrap();
        assert_eq!(spec.seed, die_seed(77, 5));
        assert!(spec.noise_scale >= 1.0);
        assert!(spec.gain_scale > 0.0);
        if let Some(kind) = spec.defect {
            assert!(kind < 4);
        }
        // Different seeds synthesize different populations.
        let other = Lot::new(
            lot.wafer().clone(),
            ProcessVariation::default(),
            DefectModel::new().background(0.1).unwrap(),
            78,
        )
        .unwrap();
        assert_ne!(
            lot.die(5).unwrap().noise_scale,
            other.die(5).unwrap().noise_scale
        );
    }

    #[test]
    fn edge_gradient_raises_edge_noise_and_defect_density() {
        let map = WaferMap::disc(24).unwrap();
        let lot = Lot::new(
            map,
            ProcessVariation::new()
                .noise_sigma(0.0)
                .unwrap()
                .radial_noise(0.5)
                .unwrap(),
            DefectModel::new().edge_gradient(0.6).unwrap(),
            3,
        )
        .unwrap();
        let (mut edge_noise, mut center_noise) = (0.0f64, 0.0f64);
        let (mut edge_defects, mut center_defects) = (0usize, 0usize);
        let (mut edge_n, mut center_n) = (0usize, 0usize);
        for i in 0..lot.dies() {
            let d = lot.die(i).unwrap();
            if d.radius > 0.8 {
                edge_noise += d.noise_scale;
                edge_defects += usize::from(d.defect.is_some());
                edge_n += 1;
            } else if d.radius < 0.4 {
                center_noise += d.noise_scale;
                center_defects += usize::from(d.defect.is_some());
                center_n += 1;
            }
        }
        assert!(edge_n > 10 && center_n > 10);
        assert!(
            edge_noise / edge_n as f64 > center_noise / center_n as f64 + 0.2,
            "edge dies must run hotter"
        );
        assert!(
            edge_defects * center_n > center_defects * edge_n,
            "edge defect density must exceed center density \
             ({edge_defects}/{edge_n} vs {center_defects}/{center_n})"
        );
        // Ground truth matches the model's expectation to first order.
        let expected = lot.expected_defects();
        let actual: usize = (0..lot.dies())
            .filter(|&i| lot.die(i).unwrap().defect.is_some())
            .count();
        assert!((actual as f64 - expected).abs() < 4.0 * expected.sqrt().max(3.0));
    }

    #[test]
    fn cluster_concentrates_defects() {
        let lot = Lot::new(
            WaferMap::disc(24).unwrap(),
            ProcessVariation::default(),
            DefectModel::new()
                .background(0.02)
                .unwrap()
                .cluster(0.4, -0.3, 0.25, 0.9)
                .unwrap(),
            9,
        )
        .unwrap();
        let (mut in_blob, mut in_blob_defective) = (0usize, 0usize);
        let (mut out_blob, mut out_blob_defective) = (0usize, 0usize);
        for i in 0..lot.dies() {
            let d = lot.die(i).unwrap();
            let site = lot.wafer().site(i).unwrap();
            let dx = site.x - 0.4;
            let dy = site.y + 0.3;
            if dx * dx + dy * dy <= 0.25 * 0.25 {
                in_blob += 1;
                in_blob_defective += usize::from(d.defect.is_some());
            } else {
                out_blob += 1;
                out_blob_defective += usize::from(d.defect.is_some());
            }
        }
        assert!(in_blob >= 5, "the blob must cover several sites");
        assert!(
            in_blob_defective * out_blob > 5 * out_blob_defective * in_blob,
            "defects must concentrate inside the cluster \
             ({in_blob_defective}/{in_blob} vs {out_blob_defective}/{out_blob})"
        );
    }
}
