//! 1/f (pink) noise by the Voss–McCartney algorithm.

use crate::noise::standard_normal;
use crate::AnalogError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A streaming 1/f noise generator (Voss–McCartney with 16 octaves).
///
/// [`crate::noise::ShapedNoise`] produces exact-PSD pink noise block-wise;
/// this generator is the cheap streaming alternative used inside
/// behavioural components where sample-at-a-time operation matters.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), nfbist_analog::AnalogError> {
/// let mut pink = nfbist_analog::noise::PinkNoise::new(1.0, 3)?;
/// let x = pink.generate(1024);
/// assert_eq!(x.len(), 1024);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PinkNoise {
    rows: [f64; 16],
    counter: u32,
    scale: f64,
    rng: StdRng,
}

impl PinkNoise {
    /// Creates a generator whose output standard deviation is
    /// approximately `sigma`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for negative or
    /// non-finite `sigma`.
    pub fn new(sigma: f64, seed: u64) -> Result<Self, AnalogError> {
        if !(sigma >= 0.0) || !sigma.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "sigma",
                reason: "must be non-negative and finite",
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = [0.0; 16];
        for r in &mut rows {
            *r = standard_normal(&mut rng);
        }
        Ok(PinkNoise {
            rows,
            counter: 0,
            // 16 summed unit-variance rows → σ = 4; normalize.
            scale: sigma / 4.0,
            rng,
        })
    }

    /// Draws one sample.
    pub fn next_sample(&mut self) -> f64 {
        self.counter = self.counter.wrapping_add(1);
        // The trailing-zero count selects which octave row refreshes.
        let idx = (self.counter.trailing_zeros() as usize).min(15);
        self.rows[idx] = standard_normal(&mut self.rng);
        let sum: f64 = self.rows.iter().sum();
        // A touch of white keeps the top octave from flattening.
        let white: f64 = standard_normal(&mut self.rng) * 0.1;
        self.scale * (sum + white)
    }

    /// Generates `n` samples.
    pub fn generate(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.next_sample()).collect()
    }

    /// Re-seeds the internal generator (restarts the stream).
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
        self.counter = 0;
        for r in &mut self.rows {
            *r = self.rng.gen::<f64>() - 0.5;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfbist_dsp::psd::WelchConfig;

    #[test]
    fn validation() {
        assert!(PinkNoise::new(-0.1, 0).is_err());
        assert!(PinkNoise::new(f64::INFINITY, 0).is_err());
        assert!(PinkNoise::new(1.0, 0).is_ok());
    }

    #[test]
    fn sigma_is_approximately_respected() {
        let mut pink = PinkNoise::new(2.0, 8).unwrap();
        let x = pink.generate(200_000);
        let sd = nfbist_dsp::stats::std_dev(&x).unwrap();
        assert!((sd - 2.0).abs() < 0.4, "σ {sd}");
    }

    #[test]
    fn spectrum_falls_roughly_3db_per_octave() {
        let fs = 10_000.0;
        let mut pink = PinkNoise::new(1.0, 12).unwrap();
        let x = pink.generate(400_000);
        let psd = WelchConfig::new(4096).unwrap().estimate(&x, fs).unwrap();
        let d = |lo: f64, hi: f64| psd.band_power(lo, hi).unwrap() / (hi - lo);
        let low = d(20.0, 40.0);
        let mid = d(160.0, 320.0);
        let high = d(1280.0, 2560.0);
        // Each factor-of-8 frequency step should drop density by ≈8×
        // (±3 dB tolerance — Voss–McCartney is stair-stepped).
        let r1 = low / mid;
        let r2 = mid / high;
        assert!(r1 > 4.0 && r1 < 16.0, "low/mid {r1}");
        assert!(r2 > 4.0 && r2 < 16.0, "mid/high {r2}");
    }

    #[test]
    fn deterministic_by_seed_and_reseed() {
        let mut a = PinkNoise::new(1.0, 77).unwrap();
        let mut b = PinkNoise::new(1.0, 77).unwrap();
        assert_eq!(a.generate(128), b.generate(128));
        a.reseed(77);
        b.reseed(77);
        assert_eq!(a.generate(128), b.generate(128));
    }
}
