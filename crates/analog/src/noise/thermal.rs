//! Johnson–Nyquist thermal noise of a resistor.

use crate::noise::WhiteNoise;
use crate::units::{Kelvin, Ohms};
use crate::AnalogError;

/// Thermal (Johnson–Nyquist) noise of a resistance at a temperature.
///
/// The open-circuit voltage noise density is `e² = 4kTR` (V²/Hz); a
/// record generated at sample rate `fs` is white with per-sample variance
/// `4kTR·fs/2`.
///
/// # Examples
///
/// ```
/// use nfbist_analog::noise::ThermalNoise;
/// use nfbist_analog::units::{Kelvin, Ohms};
///
/// # fn main() -> Result<(), nfbist_analog::AnalogError> {
/// let mut src = ThermalNoise::new(Ohms::new(1_000.0), Kelvin::REFERENCE, 1)?;
/// // 1 kΩ at 290 K ≈ 4.00 nV/√Hz.
/// assert!((src.voltage_density().sqrt() - 4.0e-9).abs() < 2e-11);
/// let x = src.generate(1024, 20_000.0)?;
/// assert_eq!(x.len(), 1024);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ThermalNoise {
    resistance: Ohms,
    temperature: Kelvin,
    seed: u64,
}

impl ThermalNoise {
    /// Creates a thermal noise source.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for negative resistance
    /// or temperature.
    pub fn new(resistance: Ohms, temperature: Kelvin, seed: u64) -> Result<Self, AnalogError> {
        if !(resistance.value() >= 0.0) || !resistance.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "resistance",
                reason: "must be non-negative and finite",
            });
        }
        if !(temperature.value() >= 0.0) || !temperature.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "temperature",
                reason: "must be non-negative and finite",
            });
        }
        Ok(ThermalNoise {
            resistance,
            temperature,
            seed,
        })
    }

    /// The resistance.
    pub fn resistance(&self) -> Ohms {
        self.resistance
    }

    /// The physical temperature.
    pub fn temperature(&self) -> Kelvin {
        self.temperature
    }

    /// Sets the temperature (a heated or cooled termination — the
    /// classic way to realize hot/cold noise states).
    pub fn set_temperature(&mut self, t: Kelvin) {
        self.temperature = t;
    }

    /// Open-circuit voltage noise density `4kTR` in V²/Hz.
    pub fn voltage_density(&self) -> f64 {
        self.resistance.thermal_noise_density_sq(self.temperature)
    }

    /// Generates `n` samples of open-circuit noise voltage at sample
    /// rate `fs`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for a non-positive
    /// sample rate.
    pub fn generate(&mut self, n: usize, sample_rate: f64) -> Result<Vec<f64>, AnalogError> {
        if !(sample_rate > 0.0) {
            return Err(AnalogError::InvalidParameter {
                name: "sample_rate",
                reason: "must be positive",
            });
        }
        let sigma = (self.voltage_density() * sample_rate / 2.0).sqrt();
        // Derive a fresh stream each call but keep determinism by
        // evolving the stored seed.
        let mut white = WhiteNoise::new(sigma, self.seed)?;
        self.seed = self.seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Ok(white.generate(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(ThermalNoise::new(Ohms::new(-1.0), Kelvin::new(290.0), 0).is_err());
        assert!(ThermalNoise::new(Ohms::new(50.0), Kelvin::new(-1.0), 0).is_err());
        assert!(ThermalNoise::new(Ohms::new(50.0), Kelvin::new(290.0), 0).is_ok());
    }

    #[test]
    fn density_of_known_resistor() {
        let src = ThermalNoise::new(Ohms::new(50.0), Kelvin::REFERENCE, 0).unwrap();
        // 50 Ω at 290 K: ~0.895 nV/√Hz.
        assert!((src.voltage_density().sqrt() - 0.895e-9).abs() < 5e-12);
    }

    #[test]
    fn zero_temperature_is_silent() {
        let mut src = ThermalNoise::new(Ohms::new(50.0), Kelvin::new(0.0), 0).unwrap();
        let x = src.generate(100, 1e6).unwrap();
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn generated_variance_matches_density() {
        let fs = 1e6;
        let mut src = ThermalNoise::new(Ohms::new(1e6), Kelvin::new(290.0), 9).unwrap();
        let x = src.generate(200_000, fs).unwrap();
        let var = nfbist_dsp::stats::variance(&x).unwrap();
        let expected = src.voltage_density() * fs / 2.0;
        assert!(
            (var - expected).abs() / expected < 0.05,
            "var {var} vs {expected}"
        );
    }

    #[test]
    fn successive_records_differ() {
        let mut src = ThermalNoise::new(Ohms::new(1e3), Kelvin::new(290.0), 4).unwrap();
        let a = src.generate(32, 1e6).unwrap();
        let b = src.generate(32, 1e6).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn doubling_temperature_doubles_power() {
        let mut cold = ThermalNoise::new(Ohms::new(1e3), Kelvin::new(290.0), 1).unwrap();
        let mut hot = ThermalNoise::new(Ohms::new(1e3), Kelvin::new(580.0), 1).unwrap();
        let pc = nfbist_dsp::stats::mean_square(&cold.generate(100_000, 1e6).unwrap()).unwrap();
        let ph = nfbist_dsp::stats::mean_square(&hot.generate(100_000, 1e6).unwrap()).unwrap();
        assert!((ph / pc - 2.0).abs() < 0.1, "ratio {}", ph / pc);
    }

    #[test]
    fn bad_sample_rate_rejected() {
        let mut src = ThermalNoise::new(Ohms::new(1e3), Kelvin::new(290.0), 1).unwrap();
        assert!(src.generate(10, 0.0).is_err());
    }

    #[test]
    fn set_temperature_updates_density() {
        let mut src = ThermalNoise::new(Ohms::new(1e3), Kelvin::new(290.0), 1).unwrap();
        let d_cold = src.voltage_density();
        src.set_temperature(Kelvin::new(2900.0));
        assert!((src.voltage_density() / d_cold - 10.0).abs() < 1e-9);
        assert_eq!(src.temperature(), Kelvin::new(2900.0));
        assert_eq!(src.resistance(), Ohms::new(1e3));
    }
}
