//! Seeded white Gaussian noise generator.

use crate::noise::standard_normal;
use crate::AnalogError;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A white Gaussian noise generator with standard deviation σ.
///
/// "White" here means uncorrelated samples: the one-sided density of a
/// record generated at sample rate `fs` is `σ²/(fs/2)`.
///
/// # Examples
///
/// ```
/// use nfbist_analog::noise::WhiteNoise;
///
/// # fn main() -> Result<(), nfbist_analog::AnalogError> {
/// let mut n = WhiteNoise::new(0.5, 42)?;
/// let x = n.generate(10_000);
/// let rms = nfbist_dsp::stats::rms(&x).unwrap();
/// assert!((rms - 0.5).abs() < 0.02);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct WhiteNoise {
    sigma: f64,
    rng: StdRng,
}

impl WhiteNoise {
    /// Creates a generator with standard deviation `sigma` and a fixed
    /// seed.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for negative or
    /// non-finite `sigma`.
    pub fn new(sigma: f64, seed: u64) -> Result<Self, AnalogError> {
        if !(sigma >= 0.0) || !sigma.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "sigma",
                reason: "must be non-negative and finite",
            });
        }
        Ok(WhiteNoise {
            sigma,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// The configured standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws one sample.
    pub fn next_sample(&mut self) -> f64 {
        self.sigma * standard_normal(&mut self.rng)
    }

    /// Generates `n` samples.
    pub fn generate(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.next_sample()).collect()
    }

    /// One-sided density `σ²/(fs/2)` this generator exhibits when its
    /// samples are interpreted at sample rate `fs` (V²/Hz).
    pub fn density(&self, sample_rate: f64) -> f64 {
        self.sigma * self.sigma / (sample_rate / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(WhiteNoise::new(-1.0, 0).is_err());
        assert!(WhiteNoise::new(f64::NAN, 0).is_err());
        assert!(WhiteNoise::new(0.0, 0).is_ok());
    }

    #[test]
    fn zero_sigma_is_silent() {
        let mut n = WhiteNoise::new(0.0, 1).unwrap();
        assert!(n.generate(100).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = WhiteNoise::new(1.0, 99).unwrap();
        let mut b = WhiteNoise::new(1.0, 99).unwrap();
        assert_eq!(a.generate(64), b.generate(64));
        let mut c = WhiteNoise::new(1.0, 100).unwrap();
        assert_ne!(a.generate(64), c.generate(64));
    }

    #[test]
    fn variance_matches_sigma() {
        let mut n = WhiteNoise::new(2.0, 5).unwrap();
        let x = n.generate(100_000);
        let var = nfbist_dsp::stats::variance(&x).unwrap();
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn samples_are_uncorrelated() {
        let mut n = WhiteNoise::new(1.0, 11).unwrap();
        let x = n.generate(100_000);
        let r = nfbist_dsp::correlation::normalized_autocorrelation(&x, 5).unwrap();
        for (lag, v) in r.iter().enumerate().skip(1) {
            assert!(v.abs() < 0.02, "lag {lag}: {v}");
        }
    }

    #[test]
    fn density_formula() {
        let n = WhiteNoise::new(1.0, 0).unwrap();
        assert_eq!(n.density(2.0), 1.0);
        assert_eq!(n.sigma(), 1.0);
    }

    #[test]
    fn psd_is_flat_at_declared_density() {
        let fs = 10_000.0;
        let mut n = WhiteNoise::new(0.7, 3).unwrap();
        let x = n.generate(100_000);
        let psd = nfbist_dsp::psd::WelchConfig::new(1024)
            .unwrap()
            .estimate(&x, fs)
            .unwrap();
        let d = psd.density();
        let avg = d[1..d.len() - 1].iter().sum::<f64>() / (d.len() - 2) as f64;
        let expected = n.density(fs);
        assert!(
            (avg - expected).abs() / expected < 0.05,
            "avg {avg} vs {expected}"
        );
    }
}
