//! Gaussian noise with an arbitrary prescribed one-sided PSD, via
//! frequency-domain synthesis.

use crate::noise::standard_normal;
use crate::AnalogError;
use nfbist_dsp::complex::Complex64;
use nfbist_dsp::fft::Fft;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Synthesizes Gaussian noise whose one-sided PSD follows a caller-
/// supplied density function (V²/Hz vs Hz).
///
/// The op-amp models use this to realize `en(f)² = en_white²·(1 + fc/f)`
/// voltage noise including the 1/f corner.
///
/// Synthesis works block-wise: independent Gaussian spectral coefficients
/// are drawn with variance proportional to the target density and
/// inverse-transformed. Blocks are generated independently, which leaves
/// a small spectral discontinuity at block joints; use a block length
/// much larger than the analysis segment (the default 2¹⁶ against 10⁴
/// segments keeps the artifact below the estimator noise floor).
///
/// # Examples
///
/// ```
/// use nfbist_analog::noise::ShapedNoise;
///
/// # fn main() -> Result<(), nfbist_analog::AnalogError> {
/// // Band-limited white noise: 1e-6 V²/Hz below 1 kHz, zero above.
/// let mut src = ShapedNoise::new(
///     |f| if f <= 1_000.0 { 1e-6 } else { 0.0 },
///     20_000.0,
///     1 << 14,
///     7,
/// )?;
/// let x = src.generate(5_000)?;
/// assert_eq!(x.len(), 5_000);
/// # Ok(())
/// # }
/// ```
pub struct ShapedNoise {
    /// Per-bin one-sided density evaluated at bin centres.
    bin_density: Vec<f64>,
    sample_rate: f64,
    block_len: usize,
    fft: Fft,
    rng: StdRng,
    /// Leftover samples from the previous block.
    buffer: Vec<f64>,
    cursor: usize,
}

impl std::fmt::Debug for ShapedNoise {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShapedNoise")
            .field("sample_rate", &self.sample_rate)
            .field("block_len", &self.block_len)
            .finish_non_exhaustive()
    }
}

impl ShapedNoise {
    /// Creates a generator for the density function `density(f)` at
    /// `sample_rate` Hz with an internal synthesis block of `block_len`
    /// samples (power of two).
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for a non-positive
    /// sample rate or a non-power-of-two block length, and propagates a
    /// negative density as an error.
    pub fn new<F>(
        density: F,
        sample_rate: f64,
        block_len: usize,
        seed: u64,
    ) -> Result<Self, AnalogError>
    where
        F: Fn(f64) -> f64,
    {
        if !(sample_rate > 0.0) {
            return Err(AnalogError::InvalidParameter {
                name: "sample_rate",
                reason: "must be positive",
            });
        }
        if !block_len.is_power_of_two() || block_len < 2 {
            return Err(AnalogError::InvalidParameter {
                name: "block_len",
                reason: "must be a power of two of at least 2",
            });
        }
        let df = sample_rate / block_len as f64;
        let mut bin_density = Vec::with_capacity(block_len / 2 + 1);
        for k in 0..=block_len / 2 {
            let d = density(k as f64 * df);
            if !(d >= 0.0) || !d.is_finite() {
                return Err(AnalogError::InvalidParameter {
                    name: "density",
                    reason: "must be non-negative and finite at all bin frequencies",
                });
            }
            bin_density.push(d);
        }
        Ok(ShapedNoise {
            bin_density,
            sample_rate,
            block_len,
            fft: Fft::new(block_len)?,
            rng: StdRng::seed_from_u64(seed),
            buffer: Vec::new(),
            cursor: 0,
        })
    }

    /// The sample rate the density is defined against.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Generates `n` samples.
    ///
    /// # Errors
    ///
    /// Propagates FFT errors (which cannot occur for a validated
    /// configuration, but the signature stays honest).
    pub fn generate(&mut self, n: usize) -> Result<Vec<f64>, AnalogError> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            if self.cursor >= self.buffer.len() {
                self.synthesize_block()?;
            }
            let take = (n - out.len()).min(self.buffer.len() - self.cursor);
            out.extend_from_slice(&self.buffer[self.cursor..self.cursor + take]);
            self.cursor += take;
        }
        Ok(out)
    }

    fn synthesize_block(&mut self) -> Result<(), AnalogError> {
        let n = self.block_len;
        let df = self.sample_rate / n as f64;
        let mut spec = vec![Complex64::ZERO; n];
        for k in 0..=n / 2 {
            // One-sided density S₁(f): the two-sided density is S₁/2 on
            // interior bins. A spectral coefficient X[k] with
            // E|X[k]|² = N·S₂(f_k)·fs reproduces the density after the
            // inverse transform.
            let one_sided = self.bin_density[k];
            let two_sided = if k == 0 || (n.is_multiple_of(2) && k == n / 2) {
                one_sided
            } else {
                one_sided / 2.0
            };
            let var = two_sided * self.sample_rate * n as f64;
            let amp = var.sqrt();
            let (re, im) = if k == 0 || (n.is_multiple_of(2) && k == n / 2) {
                // Real-only bins.
                (amp * standard_normal(&mut self.rng), 0.0)
            } else {
                (
                    amp * std::f64::consts::FRAC_1_SQRT_2 * standard_normal(&mut self.rng),
                    amp * std::f64::consts::FRAC_1_SQRT_2 * standard_normal(&mut self.rng),
                )
            };
            spec[k] = Complex64::new(re, im);
            if k != 0 && k != n / 2 {
                spec[n - k] = spec[k].conj();
            }
        }
        let _ = df;
        let time = self.fft.inverse(&spec)?;
        self.buffer = time.iter().map(|z| z.re).collect();
        self.cursor = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfbist_dsp::psd::WelchConfig;

    #[test]
    fn validation() {
        assert!(ShapedNoise::new(|_| 1.0, 0.0, 1024, 0).is_err());
        assert!(ShapedNoise::new(|_| 1.0, 1e3, 1000, 0).is_err());
        assert!(ShapedNoise::new(|_| -1.0, 1e3, 1024, 0).is_err());
        assert!(ShapedNoise::new(|f| if f > 0.0 { f64::NAN } else { 1.0 }, 1e3, 1024, 0).is_err());
        assert!(ShapedNoise::new(|_| 1.0, 1e3, 1024, 0).is_ok());
    }

    #[test]
    fn flat_density_reproduces_white_noise() {
        let fs = 10_000.0;
        let target = 2e-4;
        let mut src = ShapedNoise::new(|_| target, fs, 1 << 14, 5).unwrap();
        let x = src.generate(200_000).unwrap();
        let psd = WelchConfig::new(1024).unwrap().estimate(&x, fs).unwrap();
        let d = psd.density();
        let avg = d[1..d.len() - 1].iter().sum::<f64>() / (d.len() - 2) as f64;
        assert!(
            (avg - target).abs() / target < 0.05,
            "avg {avg} vs {target}"
        );
        // Variance equals density × bandwidth.
        let var = nfbist_dsp::stats::variance(&x).unwrap();
        let expected = target * fs / 2.0;
        assert!((var - expected).abs() / expected < 0.05);
    }

    #[test]
    fn band_limited_density_is_respected() {
        let fs = 20_000.0;
        let mut src =
            ShapedNoise::new(|f| if f <= 1_000.0 { 1e-4 } else { 0.0 }, fs, 1 << 14, 11).unwrap();
        let x = src.generate(300_000).unwrap();
        let psd = WelchConfig::new(2048).unwrap().estimate(&x, fs).unwrap();
        let in_band = psd.band_power(100.0, 800.0).unwrap() / 700.0;
        let out_band = psd.band_power(3_000.0, 8_000.0).unwrap() / 5_000.0;
        assert!((in_band - 1e-4).abs() / 1e-4 < 0.1, "in-band {in_band}");
        assert!(out_band < in_band * 1e-3, "out-of-band {out_band}");
    }

    #[test]
    fn one_over_f_slope() {
        let fs = 10_000.0;
        let mut src =
            ShapedNoise::new(|f| if f < 1.0 { 1e-2 } else { 1e-2 / f }, fs, 1 << 15, 13).unwrap();
        let x = src.generate(400_000).unwrap();
        let psd = WelchConfig::new(4096).unwrap().estimate(&x, fs).unwrap();
        // Density at 100 Hz should be ~10× density at 1 kHz.
        let d100 = psd.band_power(80.0, 120.0).unwrap() / 40.0;
        let d1000 = psd.band_power(900.0, 1100.0).unwrap() / 200.0;
        let ratio = d100 / d1000;
        assert!((ratio - 10.0).abs() < 2.0, "1/f ratio {ratio}");
    }

    #[test]
    fn output_is_gaussian() {
        let mut src = ShapedNoise::new(|_| 1e-3, 1e4, 1 << 12, 17).unwrap();
        let x = src.generate(100_000).unwrap();
        let skew = nfbist_dsp::stats::skewness(&x).unwrap();
        let kurt = nfbist_dsp::stats::excess_kurtosis(&x).unwrap();
        assert!(skew.abs() < 0.05, "skew {skew}");
        assert!(kurt.abs() < 0.1, "kurtosis {kurt}");
    }

    #[test]
    fn streaming_across_blocks_is_seamless_in_length() {
        let mut src = ShapedNoise::new(|_| 1e-3, 1e4, 1024, 3).unwrap();
        let a = src.generate(1000).unwrap();
        let b = src.generate(1000).unwrap();
        assert_eq!(a.len(), 1000);
        assert_eq!(b.len(), 1000);
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic_by_seed() {
        let mut a = ShapedNoise::new(|_| 1e-3, 1e4, 1024, 21).unwrap();
        let mut b = ShapedNoise::new(|_| 1e-3, 1e4, 1024, 21).unwrap();
        assert_eq!(a.generate(256).unwrap(), b.generate(256).unwrap());
    }
}
