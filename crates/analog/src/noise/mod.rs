//! Noise synthesis: white Gaussian, thermal (Johnson–Nyquist),
//! arbitrary-PSD shaped, 1/f, and the calibrated hot/cold source the
//! Y-factor method requires.
//!
//! All generators are seeded explicitly so every experiment in the
//! reproduction is deterministic.

mod calibrated;
mod pink;
mod shaped;
mod thermal;
mod white;

pub use calibrated::{CalibratedNoiseSource, NoiseSourceState};
pub use pink::PinkNoise;
pub use shaped::ShapedNoise;
pub use thermal::ThermalNoise;
pub use white::WhiteNoise;

use rand::Rng;

/// Draws one standard-normal sample by the Box–Muller transform.
///
/// `rand_distr` is deliberately not a dependency (see DESIGN.md); this
/// is the only Gaussian primitive the simulator needs.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let z = nfbist_analog::noise::standard_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Box–Muller: u1 in (0, 1] avoids ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let xs: Vec<f64> = (0..100_000).map(|_| standard_normal(&mut rng)).collect();
        let mean = nfbist_dsp::stats::mean(&xs).unwrap();
        let var = nfbist_dsp::stats::variance(&xs).unwrap();
        let skew = nfbist_dsp::stats::skewness(&xs).unwrap();
        let kurt = nfbist_dsp::stats::excess_kurtosis(&xs).unwrap();
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
        assert!(skew.abs() < 0.05, "skew {skew}");
        assert!(kurt.abs() < 0.1, "kurtosis {kurt}");
    }

    #[test]
    fn standard_normal_tail_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let beyond_2sigma = (0..n)
            .filter(|_| standard_normal(&mut rng).abs() > 2.0)
            .count();
        let frac = beyond_2sigma as f64 / n as f64;
        // P(|Z| > 2) ≈ 0.0455.
        assert!((frac - 0.0455).abs() < 0.005, "tail fraction {frac}");
    }
}
