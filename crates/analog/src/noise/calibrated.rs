//! Calibrated two-state (hot/cold) noise source for Y-factor
//! measurements.

use crate::noise::WhiteNoise;
use crate::units::{Kelvin, Ohms};
use crate::AnalogError;

/// Which noise state the source is switched to.
///
/// Paper §3.2: "with the noise source turned off (cold temperature) the
/// DUT output power is measured; then the noise generator is turned on
/// (hot)".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NoiseSourceState {
    /// Generator on — emitting at the hot temperature.
    Hot,
    /// Generator off — the termination sits at the cold temperature.
    Cold,
}

/// A calibrated noise source: a source resistance whose available noise
/// corresponds to a *declared* hot or cold temperature.
///
/// Real noise diodes carry calibration uncertainty; [`set_hot_error`]
/// introduces a fractional error between the declared hot temperature
/// (what the Y-factor computation believes) and the emitted one (what
/// the signal actually contains). The paper cites ref. \[6\]: a 5 % hot
/// temperature error still keeps NF error within ±0.3 dB for NF of
/// 3–10 dB — the `uncertainty` module of `nfbist-core` reproduces that
/// analysis and this source provides the physical side.
///
/// [`set_hot_error`]: CalibratedNoiseSource::set_hot_error
///
/// # Examples
///
/// ```
/// use nfbist_analog::noise::{CalibratedNoiseSource, NoiseSourceState};
/// use nfbist_analog::units::{Kelvin, Ohms};
///
/// # fn main() -> Result<(), nfbist_analog::AnalogError> {
/// let mut src = CalibratedNoiseSource::new(
///     Kelvin::new(2900.0),
///     Kelvin::new(290.0),
///     Ohms::new(2_000.0),
///     42,
/// )?;
/// let hot = src.generate(NoiseSourceState::Hot, 1000, 1e6)?;
/// let cold = src.generate(NoiseSourceState::Cold, 1000, 1e6)?;
/// assert_eq!(hot.len(), cold.len());
/// // ENR of a 2900 K source: 10·log10((2900-290)/290) = 9.54 dB.
/// assert!((src.enr_db() - 9.54).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CalibratedNoiseSource {
    hot: Kelvin,
    cold: Kelvin,
    resistance: Ohms,
    hot_error_fraction: f64,
    seed: u64,
}

impl CalibratedNoiseSource {
    /// Creates a source with declared hot/cold temperatures and a source
    /// resistance.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] when the temperatures
    /// are not ordered `hot > cold ≥ 0` or the resistance is not
    /// positive.
    pub fn new(
        hot: Kelvin,
        cold: Kelvin,
        resistance: Ohms,
        seed: u64,
    ) -> Result<Self, AnalogError> {
        if !(cold.value() >= 0.0) || !(hot.value() > cold.value()) || !hot.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "temperatures",
                reason: "requires hot > cold >= 0, finite",
            });
        }
        if !(resistance.value() > 0.0) || !resistance.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "resistance",
                reason: "must be positive and finite",
            });
        }
        Ok(CalibratedNoiseSource {
            hot,
            cold,
            resistance,
            hot_error_fraction: 0.0,
            seed,
        })
    }

    /// Declared hot temperature.
    pub fn hot(&self) -> Kelvin {
        self.hot
    }

    /// Declared cold temperature.
    pub fn cold(&self) -> Kelvin {
        self.cold
    }

    /// Source resistance.
    pub fn resistance(&self) -> Ohms {
        self.resistance
    }

    /// Declared temperature for a state.
    pub fn declared_temperature(&self, state: NoiseSourceState) -> Kelvin {
        match state {
            NoiseSourceState::Hot => self.hot,
            NoiseSourceState::Cold => self.cold,
        }
    }

    /// Temperature actually emitted for a state (declared hot scaled by
    /// the calibration error; cold is assumed exact — it is usually the
    /// ambient termination).
    pub fn emitted_temperature(&self, state: NoiseSourceState) -> Kelvin {
        match state {
            NoiseSourceState::Hot => self.hot * (1.0 + self.hot_error_fraction),
            NoiseSourceState::Cold => self.cold,
        }
    }

    /// Introduces a fractional calibration error on the hot temperature
    /// (e.g. `0.05` for +5 %).
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] if the error would make
    /// the emitted hot temperature non-positive or not exceed cold.
    pub fn set_hot_error(&mut self, fraction: f64) -> Result<(), AnalogError> {
        let emitted = self.hot.value() * (1.0 + fraction);
        if !fraction.is_finite() || emitted <= self.cold.value() {
            return Err(AnalogError::InvalidParameter {
                name: "fraction",
                reason: "emitted hot temperature must remain above cold",
            });
        }
        self.hot_error_fraction = fraction;
        Ok(())
    }

    /// Excess noise ratio `10·log10((Th − T0)/T0)` in dB, the standard
    /// noise-diode figure of merit.
    pub fn enr_db(&self) -> f64 {
        10.0 * ((self.hot.value() - crate::constants::T0_KELVIN) / crate::constants::T0_KELVIN)
            .log10()
    }

    /// Open-circuit voltage-noise density `4kT·R` (V²/Hz) for a state,
    /// using the **emitted** temperature.
    pub fn voltage_density(&self, state: NoiseSourceState) -> f64 {
        self.resistance
            .thermal_noise_density_sq(self.emitted_temperature(state))
    }

    /// Generates `n` samples of the source's open-circuit noise voltage
    /// at sample rate `fs`.
    ///
    /// Consecutive calls produce fresh records (the internal seed
    /// evolves deterministically).
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for a non-positive
    /// sample rate.
    pub fn generate(
        &mut self,
        state: NoiseSourceState,
        n: usize,
        sample_rate: f64,
    ) -> Result<Vec<f64>, AnalogError> {
        Ok(self.stream(state, sample_rate)?.generate(n))
    }

    /// Begins one acquisition as a *stream*: returns the stateful
    /// white-noise generator a single [`CalibratedNoiseSource::generate`]
    /// call would have used internally, so filling a record chunk by
    /// chunk from the returned generator is **bitwise identical** to one
    /// whole-record `generate` call — with the record never materialized
    /// here.
    ///
    /// Like `generate`, each call advances the internal seed, so
    /// consecutive streams draw independent noise.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for a non-positive
    /// sample rate.
    ///
    /// # Examples
    ///
    /// ```
    /// use nfbist_analog::noise::{CalibratedNoiseSource, NoiseSourceState};
    /// use nfbist_analog::units::{Kelvin, Ohms};
    ///
    /// # fn main() -> Result<(), nfbist_analog::AnalogError> {
    /// let fresh = || CalibratedNoiseSource::new(
    ///     Kelvin::new(2_900.0), Kelvin::new(290.0), Ohms::new(2_000.0), 7,
    /// ).unwrap();
    /// let whole = fresh().generate(NoiseSourceState::Hot, 100, 2e4)?;
    /// let mut stream = fresh().stream(NoiseSourceState::Hot, 2e4)?;
    /// let mut chunked = stream.generate(33);
    /// chunked.extend(stream.generate(67));
    /// assert_eq!(whole, chunked);
    /// # Ok(())
    /// # }
    /// ```
    pub fn stream(
        &mut self,
        state: NoiseSourceState,
        sample_rate: f64,
    ) -> Result<WhiteNoise, AnalogError> {
        if !(sample_rate > 0.0) {
            return Err(AnalogError::InvalidParameter {
                name: "sample_rate",
                reason: "must be positive",
            });
        }
        let sigma = (self.voltage_density(state) * sample_rate / 2.0).sqrt();
        let white = WhiteNoise::new(sigma, self.seed)?;
        self.seed = self.seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Ok(white)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source() -> CalibratedNoiseSource {
        CalibratedNoiseSource::new(
            Kelvin::new(2900.0),
            Kelvin::new(290.0),
            Ohms::new(1_000.0),
            1,
        )
        .unwrap()
    }

    #[test]
    fn validation() {
        let bad =
            CalibratedNoiseSource::new(Kelvin::new(100.0), Kelvin::new(290.0), Ohms::new(50.0), 0);
        assert!(bad.is_err());
        let bad =
            CalibratedNoiseSource::new(Kelvin::new(2900.0), Kelvin::new(-1.0), Ohms::new(50.0), 0);
        assert!(bad.is_err());
        let bad =
            CalibratedNoiseSource::new(Kelvin::new(2900.0), Kelvin::new(290.0), Ohms::new(0.0), 0);
        assert!(bad.is_err());
    }

    #[test]
    fn enr_of_paper_source() {
        // Table 3 uses Th = 2900 K against T0 = 290 K → ENR 9.54 dB.
        assert!((source().enr_db() - 9.542).abs() < 0.01);
    }

    #[test]
    fn hot_cold_power_ratio_matches_temperature_ratio() {
        let mut src = source();
        let fs = 1e6;
        let hot = src.generate(NoiseSourceState::Hot, 200_000, fs).unwrap();
        let cold = src.generate(NoiseSourceState::Cold, 200_000, fs).unwrap();
        let ph = nfbist_dsp::stats::mean_square(&hot).unwrap();
        let pc = nfbist_dsp::stats::mean_square(&cold).unwrap();
        assert!((ph / pc - 10.0).abs() < 0.3, "ratio {}", ph / pc);
    }

    #[test]
    fn calibration_error_shifts_emitted_only() {
        let mut src = source();
        src.set_hot_error(0.05).unwrap();
        assert_eq!(
            src.declared_temperature(NoiseSourceState::Hot),
            Kelvin::new(2900.0)
        );
        assert!((src.emitted_temperature(NoiseSourceState::Hot).value() - 3045.0).abs() < 1e-9);
        assert_eq!(
            src.emitted_temperature(NoiseSourceState::Cold),
            Kelvin::new(290.0)
        );
    }

    #[test]
    fn excessive_calibration_error_rejected() {
        let mut src = source();
        assert!(src.set_hot_error(-0.95).is_err());
        assert!(src.set_hot_error(f64::NAN).is_err());
        assert!(src.set_hot_error(-0.05).is_ok());
    }

    #[test]
    fn density_uses_emitted_temperature() {
        let mut src = source();
        let nominal = src.voltage_density(NoiseSourceState::Hot);
        src.set_hot_error(0.10).unwrap();
        let with_err = src.voltage_density(NoiseSourceState::Hot);
        assert!((with_err / nominal - 1.10).abs() < 1e-9);
    }

    #[test]
    fn accessors() {
        let src = source();
        assert_eq!(src.hot(), Kelvin::new(2900.0));
        assert_eq!(src.cold(), Kelvin::new(290.0));
        assert_eq!(src.resistance(), Ohms::new(1000.0));
        assert_eq!(
            src.declared_temperature(NoiseSourceState::Cold),
            Kelvin::new(290.0)
        );
    }

    #[test]
    fn bad_sample_rate_rejected() {
        let mut src = source();
        assert!(src.generate(NoiseSourceState::Hot, 8, -5.0).is_err());
    }
}
