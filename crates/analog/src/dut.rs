//! The `Dut` abstraction: any circuit whose noise figure the BIST can
//! measure.
//!
//! The paper's prototype measured one specific circuit (a non-inverting
//! op-amp amplifier), but nothing in the method is specific to it: the
//! Y-factor BIST needs only (a) a way to push the source noise through
//! the circuit while the circuit adds its own noise, and (b) an
//! analytic input-referred noise model so the *expected* noise figure
//! can be computed for comparison. [`Dut`] captures exactly that
//! contract, and is object-safe so a measurement session can hold any
//! circuit — the paper's amplifier, the inverting variant, passive
//! attenuators, or whole cascades ([`DutChain`]).

use crate::circuits::{InvertingAmplifier, NonInvertingAmplifier};
use crate::component::{Amplifier, Attenuator, Block};
use crate::noise::ShapedNoise;
use crate::units::{Kelvin, Ohms};
use crate::AnalogError;

/// A stateful, chunk-by-chunk view of one [`Dut::process`] pass: the
/// backbone of bounded-memory (streaming) acquisition.
///
/// Obtained from [`Dut::process_stream`]. Input chunks go in through
/// [`DutStream::push`]; output samples come back out in the same
/// order — and, for every stream this crate ships, with the **same
/// bits** — as one whole-record [`Dut::process`] call, because the
/// underlying noise synthesis and filter state evolve sequentially
/// either way.
///
/// Implementations fall into two classes, distinguished by
/// [`DutStream::is_incremental`]:
///
/// * *incremental* — output is emitted as input arrives, memory stays
///   `O(chunk)` (the amplifier circuits, behavioural blocks, and
///   chains of those);
/// * *buffered* — the default fallback every [`Dut`] gets for free: it
///   collects the input and runs the batch `process` at
///   [`DutStream::finish`]. Correct for any circuit, but memory grows
///   with the record — streaming sessions report which class they got.
pub trait DutStream {
    /// Feeds one input chunk; appends whatever output samples become
    /// available to `out` (possibly none, for a buffered stream).
    ///
    /// # Errors
    ///
    /// Propagates synthesis/model errors.
    fn push(&mut self, input: &[f64], out: &mut Vec<f64>) -> Result<(), AnalogError>;

    /// Signals end-of-record; appends any remaining output to `out`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::EmptyInput`] when no sample was ever
    /// pushed (mirroring [`Dut::process`] on an empty record) and
    /// propagates model errors.
    fn finish(&mut self, out: &mut Vec<f64>) -> Result<(), AnalogError>;

    /// `true` when output is emitted per push with `O(chunk)` memory;
    /// `false` for the buffered whole-record fallback.
    fn is_incremental(&self) -> bool {
        false
    }
}

/// The buffered fallback stream: collects every chunk and runs the
/// batch [`Dut::process`] once at finish. Correct (bit-identical to the
/// batch path by construction) for any circuit, at whole-record memory
/// cost.
struct BufferedDutStream<'a, D: Dut + ?Sized> {
    dut: &'a D,
    rs: Ohms,
    sample_rate: f64,
    seed: u64,
    input: Vec<f64>,
}

impl<D: Dut + ?Sized> DutStream for BufferedDutStream<'_, D> {
    fn push(&mut self, input: &[f64], _out: &mut Vec<f64>) -> Result<(), AnalogError> {
        self.input.extend_from_slice(input);
        Ok(())
    }

    fn finish(&mut self, out: &mut Vec<f64>) -> Result<(), AnalogError> {
        // An empty record errors inside `process`, like the batch path.
        let processed = self
            .dut
            .process(&self.input, self.rs, self.sample_rate, self.seed)?;
        self.input = Vec::new();
        out.extend_from_slice(&processed);
        Ok(())
    }
}

/// Incremental stream for the noisy amplifier circuits: per-chunk
/// synthesis from the same sequential [`ShapedNoise`] generator one
/// batch `amplify` call would use, so concatenated chunks carry
/// identical bits.
struct NoisyGainStream {
    noise: ShapedNoise,
    gain: f64,
    fed: bool,
}

impl DutStream for NoisyGainStream {
    fn push(&mut self, input: &[f64], out: &mut Vec<f64>) -> Result<(), AnalogError> {
        if input.is_empty() {
            return Ok(());
        }
        let own = self.noise.generate(input.len())?;
        let g = self.gain;
        out.extend(input.iter().zip(&own).map(|(&x, &n)| g * (x + n)));
        self.fed = true;
        Ok(())
    }

    fn finish(&mut self, _out: &mut Vec<f64>) -> Result<(), AnalogError> {
        if !self.fed {
            return Err(AnalogError::EmptyInput {
                context: "process_stream",
            });
        }
        Ok(())
    }

    fn is_incremental(&self) -> bool {
        true
    }
}

/// Incremental stream for behavioural [`Block`] stages (ideal
/// amplifier, attenuator): the block's filter state lives across
/// chunks, so chunked processing equals the whole-record pass.
struct BlockDutStream<B: Block> {
    stage: B,
    fed: bool,
}

impl<B: Block> DutStream for BlockDutStream<B> {
    fn push(&mut self, input: &[f64], out: &mut Vec<f64>) -> Result<(), AnalogError> {
        if input.is_empty() {
            return Ok(());
        }
        out.extend(self.stage.process(input));
        self.fed = true;
        Ok(())
    }

    fn finish(&mut self, _out: &mut Vec<f64>) -> Result<(), AnalogError> {
        if !self.fed {
            return Err(AnalogError::EmptyInput {
                context: "process_stream",
            });
        }
        Ok(())
    }

    fn is_incremental(&self) -> bool {
        true
    }
}

/// Streaming composition of a [`DutChain`]: each stage's stream feeds
/// the next, and at finish every stage's tail is flushed through the
/// remainder of the chain in order.
struct ChainStream<'a> {
    stages: Vec<Box<dyn DutStream + 'a>>,
    /// Ping-pong buffers reused across pushes, so the steady-state
    /// chain cascade allocates nothing once their capacity has grown
    /// to one chunk.
    ping: Vec<f64>,
    pong: Vec<f64>,
    fed: bool,
}

impl ChainStream<'_> {
    /// Pushes `chunk` through stages `from..`, appending the final
    /// stage's output to `out`.
    fn cascade(
        &mut self,
        from: usize,
        chunk: &[f64],
        out: &mut Vec<f64>,
    ) -> Result<(), AnalogError> {
        self.ping.clear();
        self.ping.extend_from_slice(chunk);
        for stage in &mut self.stages[from..] {
            self.pong.clear();
            stage.push(&self.ping, &mut self.pong)?;
            std::mem::swap(&mut self.ping, &mut self.pong);
        }
        out.extend_from_slice(&self.ping);
        Ok(())
    }
}

impl DutStream for ChainStream<'_> {
    fn push(&mut self, input: &[f64], out: &mut Vec<f64>) -> Result<(), AnalogError> {
        if input.is_empty() {
            return Ok(());
        }
        self.fed = true;
        if self.stages.is_empty() {
            out.extend_from_slice(input);
            return Ok(());
        }
        self.cascade(0, input, out)
    }

    fn finish(&mut self, out: &mut Vec<f64>) -> Result<(), AnalogError> {
        if !self.fed {
            return Err(AnalogError::EmptyInput {
                context: "process_stream",
            });
        }
        // Once per record, not per chunk — fresh buffers are fine.
        for i in 0..self.stages.len() {
            let mut flushed = Vec::new();
            self.stages[i].finish(&mut flushed)?;
            if i + 1 < self.stages.len() {
                self.cascade(i + 1, &flushed, out)?;
            } else {
                out.extend_from_slice(&flushed);
            }
        }
        Ok(())
    }

    fn is_incremental(&self) -> bool {
        self.stages.iter().all(|s| s.is_incremental())
    }
}

/// A device under test: a circuit with a known gain, an analytic
/// input-referred noise model, and a signal-level simulation of its
/// noisy transfer.
///
/// Object-safe by design — measurement sessions hold `Box<dyn Dut>`.
///
/// # Examples
///
/// ```
/// use nfbist_analog::circuits::NonInvertingAmplifier;
/// use nfbist_analog::dut::Dut;
/// use nfbist_analog::opamp::OpampModel;
/// use nfbist_analog::units::Ohms;
///
/// # fn main() -> Result<(), nfbist_analog::AnalogError> {
/// let dut: Box<dyn Dut> = Box::new(NonInvertingAmplifier::new(
///     OpampModel::op27(),
///     Ohms::new(10_000.0),
///     Ohms::new(100.0),
/// )?);
/// assert!((dut.gain() - 101.0).abs() < 1e-12);
/// let nf = dut.expected_noise_figure_db(Ohms::new(2_000.0), 100.0, 1_000.0)?;
/// assert!(nf > 0.0 && nf < 6.0);
/// # Ok(())
/// # }
/// ```
pub trait Dut: Send + Sync {
    /// Human-readable description for reports.
    fn label(&self) -> String;

    /// Magnitude of the mid-band voltage gain.
    fn gain(&self) -> f64;

    /// Input-referred noise density **squared** added by the circuit at
    /// frequency `f` for source resistance `rs`, in V²/Hz (the source's
    /// own thermal noise excluded).
    fn added_noise_density_sq(&self, rs: Ohms, f: f64) -> f64;

    /// Band average of [`Dut::added_noise_density_sq`] over
    /// `[f_lo, f_hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for an invalid band.
    fn mean_added_noise_density_sq(
        &self,
        rs: Ohms,
        f_lo: f64,
        f_hi: f64,
    ) -> Result<f64, AnalogError>;

    /// Simulates the circuit: amplifies `input` (the voltage at the
    /// circuit input, already carrying the source's noise), adding the
    /// circuit's own synthesized noise. `seed` makes the added noise
    /// deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::EmptyInput`] for an empty record and
    /// propagates synthesis errors.
    fn process(
        &self,
        input: &[f64],
        rs: Ohms,
        sample_rate: f64,
        seed: u64,
    ) -> Result<Vec<f64>, AnalogError>;

    /// Expected noise factor over a band for source resistance `rs`:
    /// `F = 1 + added/(4kT₀·Rs)`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for a non-positive
    /// source resistance or an invalid band.
    fn expected_noise_factor(&self, rs: Ohms, f_lo: f64, f_hi: f64) -> Result<f64, AnalogError> {
        if !(rs.value() > 0.0) {
            return Err(AnalogError::InvalidParameter {
                name: "rs",
                reason: "source resistance must be positive",
            });
        }
        let source = rs.thermal_noise_density_sq(Kelvin::REFERENCE);
        let added = self.mean_added_noise_density_sq(rs, f_lo, f_hi)?;
        Ok(1.0 + added / source)
    }

    /// Expected noise figure in dB over a band.
    ///
    /// # Errors
    ///
    /// Same as [`Dut::expected_noise_factor`].
    fn expected_noise_figure_db(&self, rs: Ohms, f_lo: f64, f_hi: f64) -> Result<f64, AnalogError> {
        Ok(10.0 * self.expected_noise_factor(rs, f_lo, f_hi)?.log10())
    }

    /// Begins one streaming [`Dut::process`] pass: the returned
    /// [`DutStream`] accepts input chunks and yields output chunks
    /// whose concatenation matches a single whole-record `process`
    /// call with the same arguments.
    ///
    /// The default implementation buffers the input and runs the batch
    /// `process` at finish — correct for **every** implementor, at
    /// whole-record memory cost. Circuits whose synthesis is
    /// sequential (all of this crate's) override it with a bounded
    /// `O(chunk)`-memory stream; see [`DutStream::is_incremental`].
    ///
    /// # Errors
    ///
    /// Returns construction-time model errors (e.g. an invalid source
    /// resistance).
    fn process_stream<'a>(
        &'a self,
        rs: Ohms,
        sample_rate: f64,
        seed: u64,
    ) -> Result<Box<dyn DutStream + 'a>, AnalogError> {
        Ok(Box::new(BufferedDutStream {
            dut: self,
            rs,
            sample_rate,
            seed,
            input: Vec::new(),
        }))
    }
}

impl<D: Dut + ?Sized> Dut for Box<D> {
    fn label(&self) -> String {
        (**self).label()
    }

    fn gain(&self) -> f64 {
        (**self).gain()
    }

    fn added_noise_density_sq(&self, rs: Ohms, f: f64) -> f64 {
        (**self).added_noise_density_sq(rs, f)
    }

    fn mean_added_noise_density_sq(
        &self,
        rs: Ohms,
        f_lo: f64,
        f_hi: f64,
    ) -> Result<f64, AnalogError> {
        (**self).mean_added_noise_density_sq(rs, f_lo, f_hi)
    }

    fn process(
        &self,
        input: &[f64],
        rs: Ohms,
        sample_rate: f64,
        seed: u64,
    ) -> Result<Vec<f64>, AnalogError> {
        (**self).process(input, rs, sample_rate, seed)
    }

    fn expected_noise_factor(&self, rs: Ohms, f_lo: f64, f_hi: f64) -> Result<f64, AnalogError> {
        (**self).expected_noise_factor(rs, f_lo, f_hi)
    }

    fn process_stream<'a>(
        &'a self,
        rs: Ohms,
        sample_rate: f64,
        seed: u64,
    ) -> Result<Box<dyn DutStream + 'a>, AnalogError> {
        (**self).process_stream(rs, sample_rate, seed)
    }
}

impl Dut for NonInvertingAmplifier {
    fn label(&self) -> String {
        format!(
            "non-inverting {} (Av = {:.0})",
            self.opamp().name(),
            NonInvertingAmplifier::gain(self)
        )
    }

    fn gain(&self) -> f64 {
        NonInvertingAmplifier::gain(self)
    }

    fn added_noise_density_sq(&self, rs: Ohms, f: f64) -> f64 {
        NonInvertingAmplifier::added_noise_density_sq(self, rs, f)
    }

    fn mean_added_noise_density_sq(
        &self,
        rs: Ohms,
        f_lo: f64,
        f_hi: f64,
    ) -> Result<f64, AnalogError> {
        NonInvertingAmplifier::mean_added_noise_density_sq(self, rs, f_lo, f_hi)
    }

    fn process(
        &self,
        input: &[f64],
        rs: Ohms,
        sample_rate: f64,
        seed: u64,
    ) -> Result<Vec<f64>, AnalogError> {
        self.amplify(input, rs, sample_rate, seed)
    }

    fn process_stream<'a>(
        &'a self,
        rs: Ohms,
        sample_rate: f64,
        seed: u64,
    ) -> Result<Box<dyn DutStream + 'a>, AnalogError> {
        Ok(Box::new(NoisyGainStream {
            noise: self.noise_stream(rs, sample_rate, seed)?,
            gain: NonInvertingAmplifier::gain(self),
            fed: false,
        }))
    }
}

impl Dut for InvertingAmplifier {
    fn label(&self) -> String {
        format!(
            "inverting {} (Av = {:.0})",
            self.opamp().name(),
            InvertingAmplifier::gain(self)
        )
    }

    fn gain(&self) -> f64 {
        InvertingAmplifier::gain(self).abs()
    }

    /// The inverting stage's input resistor plays the source-resistance
    /// role, so its added noise does not depend on the external `rs`.
    fn added_noise_density_sq(&self, _rs: Ohms, f: f64) -> f64 {
        InvertingAmplifier::added_noise_density_sq(self, f)
    }

    fn mean_added_noise_density_sq(
        &self,
        _rs: Ohms,
        f_lo: f64,
        f_hi: f64,
    ) -> Result<f64, AnalogError> {
        if !(f_lo > 0.0 && f_hi > f_lo) {
            return Err(AnalogError::InvalidParameter {
                name: "band",
                reason: "requires 0 < f_lo < f_hi",
            });
        }
        // Trapezoidal average of the exact pointwise model; the density
        // is smooth and monotone in f, so a fixed grid is plenty.
        let steps = 64;
        let mut acc = 0.0;
        for k in 0..=steps {
            let f = f_lo + (f_hi - f_lo) * k as f64 / steps as f64;
            let w = if k == 0 || k == steps { 0.5 } else { 1.0 };
            acc += w * InvertingAmplifier::added_noise_density_sq(self, f);
        }
        Ok(acc / steps as f64)
    }

    fn process(
        &self,
        input: &[f64],
        _rs: Ohms,
        sample_rate: f64,
        seed: u64,
    ) -> Result<Vec<f64>, AnalogError> {
        self.amplify(input, sample_rate, seed)
    }

    fn process_stream<'a>(
        &'a self,
        _rs: Ohms,
        sample_rate: f64,
        seed: u64,
    ) -> Result<Box<dyn DutStream + 'a>, AnalogError> {
        Ok(Box::new(NoisyGainStream {
            noise: self.noise_stream(sample_rate, seed)?,
            // The batch `amplify` applies the signed gain.
            gain: InvertingAmplifier::gain(self),
            fed: false,
        }))
    }
}

impl Dut for Amplifier {
    fn label(&self) -> String {
        format!("ideal gain stage (Av = {:.2})", self.actual_gain())
    }

    fn gain(&self) -> f64 {
        self.actual_gain().abs()
    }

    /// The behavioural amplifier block is noiseless by construction.
    fn added_noise_density_sq(&self, _rs: Ohms, _f: f64) -> f64 {
        0.0
    }

    fn mean_added_noise_density_sq(
        &self,
        _rs: Ohms,
        f_lo: f64,
        f_hi: f64,
    ) -> Result<f64, AnalogError> {
        if !(f_lo > 0.0 && f_hi > f_lo) {
            return Err(AnalogError::InvalidParameter {
                name: "band",
                reason: "requires 0 < f_lo < f_hi",
            });
        }
        Ok(0.0)
    }

    fn process(
        &self,
        input: &[f64],
        _rs: Ohms,
        _sample_rate: f64,
        _seed: u64,
    ) -> Result<Vec<f64>, AnalogError> {
        if input.is_empty() {
            return Err(AnalogError::EmptyInput { context: "process" });
        }
        let mut stage = self.clone();
        Block::reset(&mut stage);
        Ok(Block::process(&mut stage, input))
    }

    fn process_stream<'a>(
        &'a self,
        _rs: Ohms,
        _sample_rate: f64,
        _seed: u64,
    ) -> Result<Box<dyn DutStream + 'a>, AnalogError> {
        let mut stage = self.clone();
        Block::reset(&mut stage);
        Ok(Box::new(BlockDutStream { stage, fed: false }))
    }
}

impl Dut for Attenuator {
    fn label(&self) -> String {
        format!("attenuator ({:.2} dB)", self.attenuation_db())
    }

    fn gain(&self) -> f64 {
        self.linear_factor()
    }

    /// The behavioural attenuator is modelled noiseless in the voltage
    /// domain (its matched-power noise figure is accounted for by the
    /// gain term in cascade analyses).
    fn added_noise_density_sq(&self, _rs: Ohms, _f: f64) -> f64 {
        0.0
    }

    fn mean_added_noise_density_sq(
        &self,
        _rs: Ohms,
        f_lo: f64,
        f_hi: f64,
    ) -> Result<f64, AnalogError> {
        if !(f_lo > 0.0 && f_hi > f_lo) {
            return Err(AnalogError::InvalidParameter {
                name: "band",
                reason: "requires 0 < f_lo < f_hi",
            });
        }
        Ok(0.0)
    }

    fn process(
        &self,
        input: &[f64],
        _rs: Ohms,
        _sample_rate: f64,
        _seed: u64,
    ) -> Result<Vec<f64>, AnalogError> {
        if input.is_empty() {
            return Err(AnalogError::EmptyInput { context: "process" });
        }
        let mut stage = self.clone();
        Ok(Block::process(&mut stage, input))
    }

    fn process_stream<'a>(
        &'a self,
        _rs: Ohms,
        _sample_rate: f64,
        _seed: u64,
    ) -> Result<Box<dyn DutStream + 'a>, AnalogError> {
        Ok(Box::new(BlockDutStream {
            stage: self.clone(),
            fed: false,
        }))
    }
}

/// A cascade of [`Dut`] stages measured as one device: gains multiply,
/// input-referred noise accumulates Friis-style (later stages' noise is
/// divided by the gain ahead of them), and the signal path runs the
/// stages in order.
///
/// # Examples
///
/// ```
/// use nfbist_analog::circuits::NonInvertingAmplifier;
/// use nfbist_analog::component::Attenuator;
/// use nfbist_analog::dut::{Dut, DutChain};
/// use nfbist_analog::opamp::OpampModel;
/// use nfbist_analog::units::Ohms;
///
/// # fn main() -> Result<(), nfbist_analog::AnalogError> {
/// let chain = DutChain::new()
///     .stage(Attenuator::from_db(6.0)?)
///     .stage(NonInvertingAmplifier::new(
///         OpampModel::op27(),
///         Ohms::new(10_000.0),
///         Ohms::new(100.0),
///     )?);
/// assert_eq!(chain.len(), 2);
/// assert!((chain.gain() - 101.0 * 10f64.powf(-6.0 / 20.0)).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct DutChain {
    stages: Vec<Box<dyn Dut>>,
}

impl std::fmt::Debug for DutChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DutChain")
            .field("stages", &self.label())
            .finish()
    }
}

impl DutChain {
    /// Creates an empty (identity) chain.
    pub fn new() -> Self {
        DutChain { stages: Vec::new() }
    }

    /// Appends a stage (builder style).
    pub fn stage(mut self, dut: impl Dut + 'static) -> Self {
        self.stages.push(Box::new(dut));
        self
    }

    /// Appends an already-boxed stage.
    pub fn push(&mut self, dut: Box<dyn Dut>) {
        self.stages.push(dut);
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// `true` if the chain has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Product of the gains of the first `upto` stages.
    fn gain_before(&self, upto: usize) -> f64 {
        self.stages[..upto].iter().map(|s| s.gain()).product()
    }
}

impl Dut for DutChain {
    fn label(&self) -> String {
        if self.stages.is_empty() {
            "empty chain".to_string()
        } else {
            self.stages
                .iter()
                .map(|s| s.label())
                .collect::<Vec<_>>()
                .join(" → ")
        }
    }

    fn gain(&self) -> f64 {
        self.gain_before(self.stages.len())
    }

    fn added_noise_density_sq(&self, rs: Ohms, f: f64) -> f64 {
        self.stages
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let g = self.gain_before(i);
                s.added_noise_density_sq(rs, f) / (g * g)
            })
            .sum()
    }

    fn mean_added_noise_density_sq(
        &self,
        rs: Ohms,
        f_lo: f64,
        f_hi: f64,
    ) -> Result<f64, AnalogError> {
        if !(f_lo > 0.0 && f_hi > f_lo) {
            return Err(AnalogError::InvalidParameter {
                name: "band",
                reason: "requires 0 < f_lo < f_hi",
            });
        }
        let mut total = 0.0;
        for (i, s) in self.stages.iter().enumerate() {
            let g = self.gain_before(i);
            total += s.mean_added_noise_density_sq(rs, f_lo, f_hi)? / (g * g);
        }
        Ok(total)
    }

    fn process(
        &self,
        input: &[f64],
        rs: Ohms,
        sample_rate: f64,
        seed: u64,
    ) -> Result<Vec<f64>, AnalogError> {
        if input.is_empty() {
            return Err(AnalogError::EmptyInput { context: "process" });
        }
        let mut buf = input.to_vec();
        for (i, s) in self.stages.iter().enumerate() {
            let stage_seed = seed.wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            buf = s.process(&buf, rs, sample_rate, stage_seed)?;
        }
        Ok(buf)
    }

    fn process_stream<'a>(
        &'a self,
        rs: Ohms,
        sample_rate: f64,
        seed: u64,
    ) -> Result<Box<dyn DutStream + 'a>, AnalogError> {
        // Per-stage seeds derived exactly as in the batch `process`
        // loop above, so the chained streams draw identical noise.
        let stages = self
            .stages
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let stage_seed =
                    seed.wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                s.process_stream(rs, sample_rate, stage_seed)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Box::new(ChainStream {
            stages,
            ping: Vec::new(),
            pong: Vec::new(),
            fed: false,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opamp::OpampModel;

    fn paper_dut() -> NonInvertingAmplifier {
        NonInvertingAmplifier::new(OpampModel::op27(), Ohms::new(10_000.0), Ohms::new(100.0))
            .unwrap()
    }

    #[test]
    fn trait_matches_inherent_for_noninverting() {
        let dut = paper_dut();
        let rs = Ohms::new(2_000.0);
        let via_trait: &dyn Dut = &dut;
        assert_eq!(via_trait.gain(), dut.gain());
        assert_eq!(
            via_trait.added_noise_density_sq(rs, 1_000.0),
            NonInvertingAmplifier::added_noise_density_sq(&dut, rs, 1_000.0)
        );
        assert!(
            (via_trait
                .expected_noise_figure_db(rs, 100.0, 1_000.0)
                .unwrap()
                - dut.expected_noise_figure_db(rs, 100.0, 1_000.0).unwrap())
            .abs()
                < 1e-12
        );
        assert!(via_trait.label().contains("OP27"));
    }

    #[test]
    fn inverting_band_average_brackets_endpoints() {
        let amp = InvertingAmplifier::new(
            OpampModel::ca3140(),
            Ohms::new(10_000.0),
            Ohms::new(1_000.0),
        )
        .unwrap();
        let rs = Ohms::new(1_000.0);
        let mean = Dut::mean_added_noise_density_sq(&amp, rs, 100.0, 1_000.0).unwrap();
        let lo = Dut::added_noise_density_sq(&amp, rs, 100.0);
        let hi = Dut::added_noise_density_sq(&amp, rs, 1_000.0);
        // 1/f noise falls with frequency, so the band mean sits between
        // the endpoint densities.
        assert!(mean <= lo && mean >= hi, "mean {mean} not in [{hi}, {lo}]");
        assert!(Dut::mean_added_noise_density_sq(&amp, rs, 0.0, 1e3).is_err());
    }

    #[test]
    fn passive_blocks_are_noiseless_duts() {
        let att = Attenuator::from_db(20.0).unwrap();
        let rs = Ohms::new(1_000.0);
        assert_eq!(Dut::added_noise_density_sq(&att, rs, 1e3), 0.0);
        assert!((Dut::gain(&att) - 0.1).abs() < 1e-12);
        let f = att.expected_noise_factor(rs, 100.0, 1_000.0).unwrap();
        assert_eq!(f, 1.0);
        let out = Dut::process(&att, &[1.0, -2.0], rs, 1e4, 0).unwrap();
        assert!((out[0] - 0.1).abs() < 1e-12);
        assert!(Dut::process(&att, &[], rs, 1e4, 0).is_err());

        let amp = Amplifier::ideal(5.0).unwrap();
        let out = Dut::process(&amp, &[2.0], rs, 1e4, 0).unwrap();
        assert!((out[0] - 10.0).abs() < 1e-12);
        assert_eq!(Dut::gain(&amp), 5.0);
    }

    #[test]
    fn chain_gain_and_noise_follow_friis_referral() {
        let rs = Ohms::new(2_000.0);
        let chain = DutChain::new()
            .stage(paper_dut())
            .stage(Amplifier::ideal(10.0).unwrap());
        assert!((chain.gain() - 1_010.0).abs() < 1e-9);
        // The noiseless second stage adds nothing, so the chain's
        // input-referred noise equals the first stage's.
        let solo = paper_dut();
        let d_chain = chain.added_noise_density_sq(rs, 1_000.0);
        let d_solo = Dut::added_noise_density_sq(&solo, rs, 1_000.0);
        assert!((d_chain - d_solo).abs() / d_solo < 1e-12);
        // And the expected NF matches the single-stage value.
        let nf_chain = chain.expected_noise_figure_db(rs, 100.0, 1_000.0).unwrap();
        let nf_solo = solo.expected_noise_figure_db(rs, 100.0, 1_000.0).unwrap();
        assert!((nf_chain - nf_solo).abs() < 1e-9);
    }

    #[test]
    fn chain_noise_dominated_by_first_stage() {
        // Friis through the trait: a noisy second stage behind the
        // paper's Av=101 first stage barely moves the input-referred
        // density.
        let rs = Ohms::new(2_000.0);
        let noisy_second =
            NonInvertingAmplifier::new(OpampModel::ca3140(), Ohms::new(10_000.0), Ohms::new(100.0))
                .unwrap();
        let chain = DutChain::new().stage(paper_dut()).stage(noisy_second);
        let d_chain = chain.added_noise_density_sq(rs, 1_000.0);
        let d_first = Dut::added_noise_density_sq(&paper_dut(), rs, 1_000.0);
        assert!(d_chain > d_first, "second stage must add something");
        assert!(
            (d_chain - d_first) / d_first < 0.02,
            "{d_chain} vs {d_first}"
        );
    }

    #[test]
    fn chain_processes_in_order_with_empty_identity() {
        let rs = Ohms::new(1_000.0);
        let empty = DutChain::new();
        assert!(empty.is_empty());
        assert_eq!(empty.gain(), 1.0);
        assert_eq!(empty.label(), "empty chain");
        let out = empty.process(&[1.5], rs, 1e4, 0).unwrap();
        assert_eq!(out, vec![1.5]);

        let mut chain = DutChain::new().stage(Amplifier::ideal(2.0).unwrap());
        chain.push(Box::new(Attenuator::from_db(6.020_599_913).unwrap()));
        assert_eq!(chain.len(), 2);
        let out = chain.process(&[1.0], rs, 1e4, 0).unwrap();
        assert!((out[0] - 1.0).abs() < 1e-9, "6 dB down from ×2: {}", out[0]);
        assert!(chain.label().contains("→"));
    }

    #[test]
    fn boxed_dut_delegates() {
        let boxed: Box<dyn Dut> = Box::new(paper_dut());
        assert_eq!(boxed.gain(), 101.0);
        let rs = Ohms::new(2_000.0);
        assert!(boxed.expected_noise_figure_db(rs, 100.0, 1_000.0).is_ok());
        let out = boxed.process(&[0.0; 16], rs, 2e4, 1).unwrap();
        assert_eq!(out.len(), 16);
    }
}

#[cfg(test)]
mod stream_tests {
    use super::*;
    use crate::opamp::OpampModel;

    fn paper_dut() -> NonInvertingAmplifier {
        NonInvertingAmplifier::new(OpampModel::op27(), Ohms::new(10_000.0), Ohms::new(100.0))
            .unwrap()
    }

    fn noise_input(n: usize, seed: u64) -> Vec<f64> {
        let mut w = crate::noise::WhiteNoise::new(1e-6, seed).unwrap();
        w.generate(n)
    }

    fn run_stream(dut: &dyn Dut, input: &[f64], chunk: usize) -> (Vec<f64>, bool) {
        let rs = Ohms::new(2_000.0);
        let mut stream = dut.process_stream(rs, 2e4, 99).unwrap();
        let incremental = stream.is_incremental();
        let mut out = Vec::new();
        for c in input.chunks(chunk) {
            stream.push(c, &mut out).unwrap();
        }
        stream.finish(&mut out).unwrap();
        (out, incremental)
    }

    #[test]
    fn streamed_noninverting_matches_batch_bitwise() {
        let dut = paper_dut();
        let input = noise_input(10_000, 5);
        let batch = Dut::process(&dut, &input, Ohms::new(2_000.0), 2e4, 99).unwrap();
        for chunk in [1usize, 777, 4_096, 10_000] {
            let (streamed, incremental) = run_stream(&dut, &input, chunk);
            assert!(incremental, "amplifier stream must be incremental");
            assert_eq!(streamed, batch, "chunk {chunk}");
        }
    }

    #[test]
    fn streamed_inverting_and_blocks_match_batch_bitwise() {
        let input = noise_input(5_000, 7);
        let rs = Ohms::new(2_000.0);
        let duts: Vec<Box<dyn Dut>> = vec![
            Box::new(
                InvertingAmplifier::new(
                    OpampModel::tl081(),
                    Ohms::new(10_000.0),
                    Ohms::new(1_000.0),
                )
                .unwrap(),
            ),
            Box::new(Amplifier::ideal(5.0).unwrap()),
            Box::new(Attenuator::from_db(6.0).unwrap()),
        ];
        for dut in &duts {
            let batch = dut.process(&input, rs, 2e4, 99).unwrap();
            let (streamed, incremental) = run_stream(dut.as_ref(), &input, 311);
            assert!(incremental, "{}", dut.label());
            assert_eq!(streamed, batch, "{}", dut.label());
        }
    }

    #[test]
    fn streamed_chain_matches_batch_bitwise() {
        let chain = DutChain::new()
            .stage(Attenuator::from_db(6.0).unwrap())
            .stage(paper_dut())
            .stage(Amplifier::ideal(2.0).unwrap());
        let input = noise_input(4_096, 11);
        let batch = chain.process(&input, Ohms::new(2_000.0), 2e4, 99).unwrap();
        for chunk in [63usize, 1_000, 4_096] {
            let (streamed, incremental) = run_stream(&chain, &input, chunk);
            assert!(incremental, "all-incremental chain");
            assert_eq!(streamed, batch, "chunk {chunk}");
        }
    }

    #[test]
    fn buffered_fallback_is_correct_for_unknown_duts() {
        /// A DUT with only the batch entry point implemented.
        struct Opaque;
        impl Dut for Opaque {
            fn label(&self) -> String {
                "opaque".into()
            }
            fn gain(&self) -> f64 {
                1.0
            }
            fn added_noise_density_sq(&self, _rs: Ohms, _f: f64) -> f64 {
                0.0
            }
            fn mean_added_noise_density_sq(
                &self,
                _rs: Ohms,
                _f_lo: f64,
                _f_hi: f64,
            ) -> Result<f64, AnalogError> {
                Ok(0.0)
            }
            fn process(
                &self,
                input: &[f64],
                _rs: Ohms,
                _sample_rate: f64,
                _seed: u64,
            ) -> Result<Vec<f64>, AnalogError> {
                if input.is_empty() {
                    return Err(AnalogError::EmptyInput { context: "process" });
                }
                // Deliberately non-causal: output depends on the whole
                // record, so only the buffered fallback can be right.
                let mean = input.iter().sum::<f64>() / input.len() as f64;
                Ok(input.iter().map(|v| v - mean).collect())
            }
        }
        let input = noise_input(1_000, 3);
        let batch = Opaque.process(&input, Ohms::new(1.0), 1e4, 0).unwrap();
        let mut stream = Opaque.process_stream(Ohms::new(1.0), 1e4, 0).unwrap();
        assert!(!stream.is_incremental(), "fallback is buffered");
        let mut out = Vec::new();
        for c in input.chunks(97) {
            stream.push(c, &mut out).unwrap();
        }
        assert!(out.is_empty(), "buffered stream emits only at finish");
        stream.finish(&mut out).unwrap();
        assert_eq!(out, batch);
    }

    #[test]
    fn empty_streams_error_like_batch() {
        let dut = paper_dut();
        let mut stream = dut.process_stream(Ohms::new(2_000.0), 2e4, 0).unwrap();
        let mut out = Vec::new();
        stream.push(&[], &mut out).unwrap();
        assert!(stream.finish(&mut out).is_err(), "no samples ever pushed");
        // Invalid source resistance is caught at stream construction.
        assert!(dut.process_stream(Ohms::new(0.0), 2e4, 0).is_err());
    }
}
