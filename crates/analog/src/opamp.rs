//! Datasheet-style op-amp noise models.
//!
//! The paper's Table 3 measures the noise figure of a non-inverting
//! amplifier built with four different op-amps (OP27, OP07, TL081,
//! CA3140), whose *expected* NF comes from datasheet equivalent input
//! noise (ref. \[13\], Burr-Brown AB-103). The same two quantities the
//! datasheets give — voltage noise density `en` and current noise
//! density `in`, each with a 1/f corner — parameterize this model; the
//! circuit analysis in [`crate::circuits`] and the noise synthesis both
//! consume it, so analysis and simulation are exercising identical
//! physics.

use crate::units::Hertz;
use crate::AnalogError;

/// Equivalent input noise model of an op-amp.
///
/// Densities follow the standard corner form:
/// `en²(f) = en_white²·(1 + f_ce/f)` and
/// `in²(f) = in_white²·(1 + f_ci/f)`.
///
/// # Examples
///
/// ```
/// use nfbist_analog::opamp::OpampModel;
///
/// let op27 = OpampModel::op27();
/// // White region: 3 nV/√Hz.
/// let en = op27.voltage_noise_density_sq(10_000.0).sqrt();
/// assert!((en - 3.0e-9).abs() < 1e-10);
/// // 1/f region: density rises below the corner.
/// assert!(op27.voltage_noise_density_sq(1.0) > op27.voltage_noise_density_sq(1_000.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OpampModel {
    name: String,
    en_white: f64,
    en_corner: Hertz,
    in_white: f64,
    in_corner: Hertz,
}

impl OpampModel {
    /// Builds a model from datasheet values.
    ///
    /// * `en_white` — broadband voltage noise density in V/√Hz.
    /// * `en_corner` — voltage-noise 1/f corner frequency.
    /// * `in_white` — broadband current noise density in A/√Hz.
    /// * `in_corner` — current-noise 1/f corner frequency.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for negative densities
    /// or corners.
    pub fn new(
        name: impl Into<String>,
        en_white: f64,
        en_corner: Hertz,
        in_white: f64,
        in_corner: Hertz,
    ) -> Result<Self, AnalogError> {
        if !(en_white >= 0.0) || !en_white.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "en_white",
                reason: "must be non-negative and finite",
            });
        }
        if !(in_white >= 0.0) || !in_white.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "in_white",
                reason: "must be non-negative and finite",
            });
        }
        if !(en_corner.value() >= 0.0) || !(in_corner.value() >= 0.0) {
            return Err(AnalogError::InvalidParameter {
                name: "corner",
                reason: "corner frequencies must be non-negative",
            });
        }
        Ok(OpampModel {
            name: name.into(),
            en_white,
            en_corner,
            in_white,
            in_corner,
        })
    }

    /// Part name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Broadband voltage noise density in V/√Hz.
    pub fn en_white(&self) -> f64 {
        self.en_white
    }

    /// Broadband current noise density in A/√Hz.
    pub fn in_white(&self) -> f64 {
        self.in_white
    }

    /// Voltage noise density **squared** at frequency `f`, in V²/Hz.
    ///
    /// Below 0.01 Hz the density is clamped to its 0.01 Hz value to keep
    /// integrals finite (DC never enters the measurement band anyway).
    pub fn voltage_noise_density_sq(&self, f: f64) -> f64 {
        let f = f.max(0.01);
        self.en_white * self.en_white * (1.0 + self.en_corner.value() / f)
    }

    /// Current noise density **squared** at frequency `f`, in A²/Hz.
    pub fn current_noise_density_sq(&self, f: f64) -> f64 {
        let f = f.max(0.01);
        self.in_white * self.in_white * (1.0 + self.in_corner.value() / f)
    }

    /// Mean voltage-noise density squared over `[f_lo, f_hi]`
    /// (analytic integral of the corner form divided by the width).
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] unless
    /// `0 < f_lo < f_hi`.
    pub fn mean_voltage_noise_density_sq(&self, f_lo: f64, f_hi: f64) -> Result<f64, AnalogError> {
        Self::check_band(f_lo, f_hi)?;
        let w = self.en_white * self.en_white;
        let fc = self.en_corner.value();
        Ok(w * (1.0 + fc * (f_hi / f_lo).ln() / (f_hi - f_lo)))
    }

    /// Mean current-noise density squared over `[f_lo, f_hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] unless
    /// `0 < f_lo < f_hi`.
    pub fn mean_current_noise_density_sq(&self, f_lo: f64, f_hi: f64) -> Result<f64, AnalogError> {
        Self::check_band(f_lo, f_hi)?;
        let w = self.in_white * self.in_white;
        let fc = self.in_corner.value();
        Ok(w * (1.0 + fc * (f_hi / f_lo).ln() / (f_hi - f_lo)))
    }

    fn check_band(f_lo: f64, f_hi: f64) -> Result<(), AnalogError> {
        if !(f_lo > 0.0 && f_hi > f_lo) {
            return Err(AnalogError::InvalidParameter {
                name: "band",
                reason: "requires 0 < f_lo < f_hi",
            });
        }
        Ok(())
    }

    // ----- The paper's four parts (typical datasheet values) -----

    /// Analog Devices OP27 — precision bipolar, the quietest of the
    /// paper's set (expected NF 3.7 dB in Table 3).
    pub fn op27() -> Self {
        OpampModel::new("OP27", 3.0e-9, Hertz::new(2.7), 0.4e-12, Hertz::new(140.0))
            .expect("static datasheet values are valid")
    }

    /// OP07 — precision bipolar (expected NF 6.5 dB in Table 3).
    pub fn op07() -> Self {
        OpampModel::new("OP07", 9.6e-9, Hertz::new(10.0), 0.12e-12, Hertz::new(50.0))
            .expect("static datasheet values are valid")
    }

    /// TL081 — JFET input (expected NF 10.1 dB in Table 3).
    pub fn tl081() -> Self {
        OpampModel::new(
            "TL081",
            18.0e-9,
            Hertz::new(300.0),
            0.01e-12,
            Hertz::new(0.0),
        )
        .expect("static datasheet values are valid")
    }

    /// CA3140 — MOSFET input, the noisiest of the set (expected NF
    /// 16.2 dB in Table 3).
    pub fn ca3140() -> Self {
        OpampModel::new(
            "CA3140",
            40.0e-9,
            Hertz::new(100.0),
            0.01e-12,
            Hertz::new(0.0),
        )
        .expect("static datasheet values are valid")
    }

    /// The paper's four op-amps in Table 3 order.
    pub fn paper_set() -> Vec<OpampModel> {
        vec![Self::op27(), Self::op07(), Self::tl081(), Self::ca3140()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(OpampModel::new("x", -1.0, Hertz::new(1.0), 0.0, Hertz::new(0.0)).is_err());
        assert!(OpampModel::new("x", 1e-9, Hertz::new(-1.0), 0.0, Hertz::new(0.0)).is_err());
        assert!(OpampModel::new("x", 1e-9, Hertz::new(1.0), f64::NAN, Hertz::new(0.0)).is_err());
    }

    #[test]
    fn white_region_density() {
        let m = OpampModel::op07();
        let en = m.voltage_noise_density_sq(100_000.0).sqrt();
        assert!((en - 9.6e-9).abs() < 1e-11);
        assert_eq!(m.name(), "OP07");
        assert_eq!(m.en_white(), 9.6e-9);
        assert_eq!(m.in_white(), 0.12e-12);
    }

    #[test]
    fn corner_doubles_power_density() {
        // At exactly the corner frequency the density is 2× white.
        let m = OpampModel::op27();
        let at_corner = m.voltage_noise_density_sq(2.7);
        let white = m.en_white() * m.en_white();
        assert!((at_corner / white - 2.0).abs() < 1e-9);
    }

    #[test]
    fn mean_density_exceeds_white_when_band_touches_corner() {
        let m = OpampModel::ca3140(); // 100 Hz corner
        let mean = m.mean_voltage_noise_density_sq(10.0, 1_000.0).unwrap();
        let white = m.en_white() * m.en_white();
        // Analytic: 1 + fc·ln(f_hi/f_lo)/(f_hi−f_lo) ≈ 1.465.
        assert!(mean > 1.3 * white && mean < 1.7 * white);
        // Far above the corner the mean converges to white.
        let hi = m.mean_voltage_noise_density_sq(1e6, 2e6).unwrap();
        assert!((hi / white - 1.0).abs() < 0.01);
    }

    #[test]
    fn mean_density_band_validation() {
        let m = OpampModel::op27();
        assert!(m.mean_voltage_noise_density_sq(0.0, 10.0).is_err());
        assert!(m.mean_voltage_noise_density_sq(10.0, 10.0).is_err());
        assert!(m.mean_current_noise_density_sq(100.0, 10.0).is_err());
    }

    #[test]
    fn mean_matches_numerical_integral() {
        let m = OpampModel::tl081();
        let (lo, hi) = (50.0, 1_000.0);
        let analytic = m.mean_voltage_noise_density_sq(lo, hi).unwrap();
        let steps = 100_000;
        let df = (hi - lo) / steps as f64;
        let numeric: f64 = (0..steps)
            .map(|i| m.voltage_noise_density_sq(lo + (i as f64 + 0.5) * df) * df)
            .sum::<f64>()
            / (hi - lo);
        assert!(
            (analytic - numeric).abs() / numeric < 1e-6,
            "{analytic} vs {numeric}"
        );
    }

    #[test]
    fn paper_set_ordering_by_noise() {
        // The paper's parts in Table 3 order are monotonically noisier.
        let set = OpampModel::paper_set();
        assert_eq!(set.len(), 4);
        let names: Vec<&str> = set.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["OP27", "OP07", "TL081", "CA3140"]);
        for w in set.windows(2) {
            assert!(
                w[1].en_white() > w[0].en_white(),
                "{} should be noisier than {}",
                w[1].name(),
                w[0].name()
            );
        }
    }

    #[test]
    fn density_clamped_near_dc() {
        let m = OpampModel::op27();
        assert_eq!(
            m.voltage_noise_density_sq(0.0),
            m.voltage_noise_density_sq(0.01)
        );
        assert_eq!(
            m.current_noise_density_sq(0.0),
            m.current_noise_density_sq(0.01)
        );
    }
}
