//! Square-wave reference source with optional harmonic truncation and
//! amplitude drift.

use crate::source::Waveform;
use crate::AnalogError;

/// A square wave of level `±A`, optionally band-limited to its first `H`
/// odd harmonics and optionally carrying slow amplitude drift.
///
/// The paper's simulated experiments (§5.2) use an ideal constant-
/// amplitude square wave as the reference. §6 argues that a *low-cost*
/// generator with imperfect harmonics is fine because the normalization
/// tracks only the fundamental; `with_harmonics` lets tests distort the
/// waveform and verify that claim, while `with_amplitude_drift` violates
/// the one assumption that does matter ("the amplitude of the main
/// component should be constant") to show the method degrade.
///
/// # Examples
///
/// ```
/// use nfbist_analog::source::{SquareSource, Waveform};
///
/// # fn main() -> Result<(), nfbist_analog::AnalogError> {
/// let sq = SquareSource::new(60.0, 0.3)?;
/// assert_eq!(sq.value_at(0.001), 0.3);   // first half-cycle high
/// assert_eq!(sq.value_at(0.010), -0.3);  // second half-cycle low
/// // Fundamental of a ±A square wave is 4A/π.
/// assert!((sq.fundamental_amplitude() - 4.0 * 0.3 / std::f64::consts::PI).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SquareSource {
    frequency: f64,
    level: f64,
    harmonics: Option<usize>,
    drift_fraction: f64,
    drift_frequency: f64,
}

impl SquareSource {
    /// Creates an ideal square wave at `frequency` Hz switching between
    /// `±level` volts.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for a non-positive
    /// frequency or negative level.
    pub fn new(frequency: f64, level: f64) -> Result<Self, AnalogError> {
        if !(frequency > 0.0) || !frequency.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "frequency",
                reason: "must be positive and finite",
            });
        }
        if !(level >= 0.0) || !level.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "level",
                reason: "must be non-negative and finite",
            });
        }
        Ok(SquareSource {
            frequency,
            level,
            harmonics: None,
            drift_fraction: 0.0,
            drift_frequency: 0.0,
        })
    }

    /// Returns a copy band-limited to the first `count` odd harmonics
    /// (Fourier synthesis). `count = 1` keeps only the fundamental.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for `count == 0`.
    pub fn with_harmonics(mut self, count: usize) -> Result<Self, AnalogError> {
        if count == 0 {
            return Err(AnalogError::InvalidParameter {
                name: "count",
                reason: "must keep at least the fundamental",
            });
        }
        self.harmonics = Some(count);
        Ok(self)
    }

    /// Returns a copy whose level is modulated by
    /// `1 + fraction·sin(2π·f_drift·t)` — a slowly drifting generator.
    pub fn with_amplitude_drift(mut self, fraction: f64, drift_frequency: f64) -> Self {
        self.drift_fraction = fraction;
        self.drift_frequency = drift_frequency;
        self
    }

    /// The switching level `A` (the waveform is `±A`).
    pub fn level(&self) -> f64 {
        self.level
    }
}

impl Waveform for SquareSource {
    fn value_at(&self, t: f64) -> f64 {
        let level = self.level
            * (1.0
                + self.drift_fraction * (std::f64::consts::TAU * self.drift_frequency * t).sin());
        match self.harmonics {
            None => {
                let phase = (t * self.frequency).rem_euclid(1.0);
                if phase < 0.5 {
                    level
                } else {
                    -level
                }
            }
            Some(h) => {
                // Fourier synthesis: Σ (4A/π)·sin(2π(2k+1)ft)/(2k+1).
                let mut acc = 0.0;
                for k in 0..h {
                    let m = (2 * k + 1) as f64;
                    acc += (std::f64::consts::TAU * m * self.frequency * t).sin() / m;
                }
                4.0 * level / std::f64::consts::PI * acc
            }
        }
    }

    fn frequency(&self) -> f64 {
        self.frequency
    }

    fn fundamental_amplitude(&self) -> f64 {
        4.0 * self.level / std::f64::consts::PI
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(SquareSource::new(0.0, 1.0).is_err());
        assert!(SquareSource::new(100.0, -1.0).is_err());
        assert!(SquareSource::new(100.0, 1.0)
            .unwrap()
            .with_harmonics(0)
            .is_err());
    }

    #[test]
    fn ideal_square_levels() {
        let sq = SquareSource::new(100.0, 2.0).unwrap();
        let fs = 10_000.0;
        let x = sq.generate(200, fs).unwrap();
        assert!(x.iter().all(|&v| v == 2.0 || v == -2.0));
        // 50 % duty cycle.
        let high = x.iter().filter(|&&v| v > 0.0).count();
        assert_eq!(high, 100);
        assert_eq!(sq.level(), 2.0);
    }

    #[test]
    fn harmonic_truncation_to_fundamental_is_a_sine() {
        let sq = SquareSource::new(50.0, 1.0)
            .unwrap()
            .with_harmonics(1)
            .unwrap();
        let expected_amp = 4.0 / std::f64::consts::PI;
        // Compare against a sine of amplitude 4A/π point by point.
        for i in 0..100 {
            let t = i as f64 * 1e-4;
            let expect = expected_amp * (std::f64::consts::TAU * 50.0 * t).sin();
            assert!((sq.value_at(t) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn many_harmonics_approach_ideal_square() {
        let ideal = SquareSource::new(50.0, 1.0).unwrap();
        let synth = ideal.with_harmonics(200).unwrap();
        // Compare away from switching edges (Gibbs ringing is local).
        for i in 1..10 {
            let t = 0.002 + i as f64 * 0.0008; // inside the first half-cycle
            assert!(
                (synth.value_at(t) - ideal.value_at(t)).abs() < 0.01,
                "t={t}"
            );
        }
    }

    #[test]
    fn fundamental_amplitude_spectral_check() {
        let fs = 32_768.0;
        let n = 32_768;
        let f0 = 512.0;
        let sq = SquareSource::new(f0, 1.0).unwrap();
        let x = sq.generate(n, fs).unwrap();
        let psd = nfbist_dsp::psd::periodogram(&x, fs).unwrap();
        let tone = psd.tone_power(512, 1).unwrap();
        let expected = sq.fundamental_amplitude().powi(2) / 2.0;
        assert!(
            (tone - expected).abs() / expected < 0.01,
            "fundamental power {tone} vs {expected}"
        );
        // Third harmonic carries 1/9 of the fundamental power.
        let third = psd.tone_power(1536, 1).unwrap();
        assert!((third / tone - 1.0 / 9.0).abs() < 0.01);
    }

    #[test]
    fn amplitude_drift_modulates_level() {
        let sq = SquareSource::new(100.0, 1.0)
            .unwrap()
            .with_amplitude_drift(0.5, 1.0);
        // At drift phase π/2 (t = 0.25 s) the level is 1.5.
        let v = sq.value_at(0.25 + 1e-4);
        assert!((v.abs() - 1.5).abs() < 1e-3, "drifted level {v}");
    }
}
