//! Deterministic waveform sources: the reference signals presented to
//! the BIST comparator.
//!
//! The paper uses a constant-amplitude square wave in simulation (§5.2)
//! and a 3 kHz, 300 mVpp sine from an HP33120A in the prototype (§5.4).
//! Section 6 notes that even a *low-quality* generator is acceptable
//! because the normalization only tracks the fundamental — the
//! [`SquareSource`] exposes harmonic truncation and amplitude drift to
//! test exactly that claim.

mod sine;
mod square;

pub use sine::SineSource;
pub use square::SquareSource;

use crate::AnalogError;

/// A deterministic, time-parameterized waveform.
///
/// Object-safe so heterogeneous reference generators can be boxed into a
/// test setup.
pub trait Waveform {
    /// Instantaneous value at time `t` seconds.
    fn value_at(&self, t: f64) -> f64;

    /// Fundamental frequency in hertz.
    fn frequency(&self) -> f64;

    /// Amplitude of the fundamental component in volts (half the
    /// peak-to-peak value for a sine; `4A/π` relates a square wave's
    /// level `A` to its fundamental).
    fn fundamental_amplitude(&self) -> f64;

    /// Samples `n` points at `sample_rate` Hz starting from `t = 0`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for a non-positive
    /// sample rate.
    fn generate(&self, n: usize, sample_rate: f64) -> Result<Vec<f64>, AnalogError> {
        // Delegates to the chunked form so the two defaults cannot
        // drift apart — an impl overriding either one keeps
        // `generate(n) == concat(generate_chunk(..))` by construction.
        self.generate_chunk(0, n, sample_rate)
    }

    /// Samples `n` points starting at absolute sample index `offset` —
    /// the chunked form of [`Waveform::generate`]. Because every sample
    /// is computed from its absolute index, concatenated chunks are
    /// **bitwise identical** to one [`Waveform::generate`] call over the
    /// whole record; streaming acquisition relies on that.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for a non-positive
    /// sample rate.
    ///
    /// # Examples
    ///
    /// ```
    /// use nfbist_analog::source::{SineSource, Waveform};
    ///
    /// # fn main() -> Result<(), nfbist_analog::AnalogError> {
    /// let s = SineSource::new(50.0, 1.0)?;
    /// let whole = s.generate(100, 1_000.0)?;
    /// let mut chunked = s.generate_chunk(0, 33, 1_000.0)?;
    /// chunked.extend(s.generate_chunk(33, 67, 1_000.0)?);
    /// assert_eq!(whole, chunked);
    /// # Ok(())
    /// # }
    /// ```
    fn generate_chunk(
        &self,
        offset: usize,
        n: usize,
        sample_rate: f64,
    ) -> Result<Vec<f64>, AnalogError> {
        if !(sample_rate > 0.0) {
            return Err(AnalogError::InvalidParameter {
                name: "sample_rate",
                reason: "must be positive",
            });
        }
        Ok((offset..offset + n)
            .map(|i| self.value_at(i as f64 / sample_rate))
            .collect())
    }
}

/// A waveform defined by a lookup table, repeated cyclically.
///
/// # Examples
///
/// ```
/// use nfbist_analog::source::{ArbitrarySource, Waveform};
///
/// # fn main() -> Result<(), nfbist_analog::AnalogError> {
/// let w = ArbitrarySource::new(vec![0.0, 1.0, 0.0, -1.0], 100.0)?;
/// assert_eq!(w.frequency(), 100.0);
/// let x = w.generate(8, 400.0)?;
/// assert_eq!(x, vec![0.0, 1.0, 0.0, -1.0, 0.0, 1.0, 0.0, -1.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ArbitrarySource {
    table: Vec<f64>,
    frequency: f64,
}

impl ArbitrarySource {
    /// Creates a source that replays `table` at `frequency` cycles per
    /// second (one table pass per cycle).
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::EmptyInput`] for an empty table and
    /// [`AnalogError::InvalidParameter`] for a non-positive frequency.
    pub fn new(table: Vec<f64>, frequency: f64) -> Result<Self, AnalogError> {
        if table.is_empty() {
            return Err(AnalogError::EmptyInput {
                context: "arbitrary source table",
            });
        }
        if !(frequency > 0.0) || !frequency.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "frequency",
                reason: "must be positive and finite",
            });
        }
        Ok(ArbitrarySource { table, frequency })
    }

    /// The lookup table.
    pub fn table(&self) -> &[f64] {
        &self.table
    }
}

impl Waveform for ArbitrarySource {
    fn value_at(&self, t: f64) -> f64 {
        let phase = (t * self.frequency).rem_euclid(1.0);
        let idx = (phase * self.table.len() as f64) as usize % self.table.len();
        self.table[idx]
    }

    fn frequency(&self) -> f64 {
        self.frequency
    }

    fn fundamental_amplitude(&self) -> f64 {
        // First Fourier coefficient magnitude of the table.
        let n = self.table.len() as f64;
        let (mut re, mut im) = (0.0, 0.0);
        for (i, &v) in self.table.iter().enumerate() {
            let theta = std::f64::consts::TAU * i as f64 / n;
            re += v * theta.cos();
            im += v * theta.sin();
        }
        2.0 * (re.hypot(im)) / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arbitrary_validation() {
        assert!(ArbitrarySource::new(vec![], 100.0).is_err());
        assert!(ArbitrarySource::new(vec![1.0], 0.0).is_err());
        assert!(ArbitrarySource::new(vec![1.0], f64::NAN).is_err());
    }

    #[test]
    fn arbitrary_replays_table() {
        let w = ArbitrarySource::new(vec![1.0, 2.0], 1.0).unwrap();
        let x = w.generate(4, 2.0).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 1.0, 2.0]);
        assert_eq!(w.table(), &[1.0, 2.0]);
    }

    #[test]
    fn arbitrary_fundamental_of_sine_table() {
        let n = 256;
        let table: Vec<f64> = (0..n)
            .map(|i| 3.0 * (std::f64::consts::TAU * i as f64 / n as f64).sin())
            .collect();
        let w = ArbitrarySource::new(table, 50.0).unwrap();
        assert!((w.fundamental_amplitude() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn generate_rejects_bad_rate() {
        let w = ArbitrarySource::new(vec![1.0], 10.0).unwrap();
        assert!(w.generate(4, 0.0).is_err());
    }

    #[test]
    fn waveform_is_object_safe() {
        let sources: Vec<Box<dyn Waveform>> = vec![
            Box::new(SineSource::new(100.0, 1.0).unwrap()),
            Box::new(SquareSource::new(100.0, 1.0).unwrap()),
            Box::new(ArbitrarySource::new(vec![0.5], 100.0).unwrap()),
        ];
        for s in &sources {
            assert!(s.frequency() > 0.0);
            assert!(s.value_at(0.0).is_finite());
        }
    }
}
