//! Sine-wave reference source.

use crate::source::Waveform;
use crate::AnalogError;

/// A sine wave `A·sin(2πft + φ)`.
///
/// This models the prototype's HP33120A reference: 3 kHz at 300 mVpp
/// (amplitude 0.15 V).
///
/// # Examples
///
/// ```
/// use nfbist_analog::source::{SineSource, Waveform};
///
/// # fn main() -> Result<(), nfbist_analog::AnalogError> {
/// let s = SineSource::new(3_000.0, 0.15)?;
/// assert_eq!(s.frequency(), 3_000.0);
/// assert_eq!(s.fundamental_amplitude(), 0.15);
/// let x = s.generate(100, 100_000.0)?;
/// assert!(x.iter().all(|v| v.abs() <= 0.15 + 1e-12));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SineSource {
    frequency: f64,
    amplitude: f64,
    phase: f64,
}

impl SineSource {
    /// Creates a sine at `frequency` Hz with the given peak `amplitude`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for a non-positive
    /// frequency or negative amplitude.
    pub fn new(frequency: f64, amplitude: f64) -> Result<Self, AnalogError> {
        if !(frequency > 0.0) || !frequency.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "frequency",
                reason: "must be positive and finite",
            });
        }
        if !(amplitude >= 0.0) || !amplitude.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "amplitude",
                reason: "must be non-negative and finite",
            });
        }
        Ok(SineSource {
            frequency,
            amplitude,
            phase: 0.0,
        })
    }

    /// Returns a copy with the given starting phase in radians.
    pub fn with_phase(mut self, phase: f64) -> Self {
        self.phase = phase;
        self
    }

    /// Peak amplitude in volts.
    pub fn amplitude(&self) -> f64 {
        self.amplitude
    }

    /// RMS value `A/√2`.
    pub fn rms(&self) -> f64 {
        self.amplitude * std::f64::consts::FRAC_1_SQRT_2
    }
}

impl Waveform for SineSource {
    fn value_at(&self, t: f64) -> f64 {
        self.amplitude * (std::f64::consts::TAU * self.frequency * t + self.phase).sin()
    }

    fn frequency(&self) -> f64 {
        self.frequency
    }

    fn fundamental_amplitude(&self) -> f64 {
        self.amplitude
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(SineSource::new(0.0, 1.0).is_err());
        assert!(SineSource::new(-5.0, 1.0).is_err());
        assert!(SineSource::new(100.0, -1.0).is_err());
        assert!(SineSource::new(100.0, 0.0).is_ok());
    }

    #[test]
    fn rms_of_unit_sine() {
        let s = SineSource::new(100.0, 1.0).unwrap();
        assert!((s.rms() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-15);
        let x = s.generate(10_000, 100_000.0).unwrap();
        let measured = nfbist_dsp::stats::rms(&x).unwrap();
        assert!((measured - s.rms()).abs() < 1e-3);
    }

    #[test]
    fn phase_shift() {
        let s = SineSource::new(100.0, 1.0)
            .unwrap()
            .with_phase(std::f64::consts::FRAC_PI_2);
        assert!((s.value_at(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn periodicity() {
        let s = SineSource::new(50.0, 2.0).unwrap();
        let period = 1.0 / 50.0;
        for k in 0..10 {
            let t = k as f64 * 1.7e-3;
            assert!((s.value_at(t) - s.value_at(t + period)).abs() < 1e-9);
        }
    }

    #[test]
    fn spectral_purity() {
        // All power concentrates at the fundamental.
        let fs = 32_768.0;
        let n = 32_768;
        let f0 = 1024.0; // exactly bin 1024
        let s = SineSource::new(f0, 1.0).unwrap();
        let x = s.generate(n, fs).unwrap();
        let psd = nfbist_dsp::psd::periodogram(&x, fs).unwrap();
        let tone = psd.tone_power(1024, 1).unwrap();
        assert!((tone - 0.5).abs() < 1e-6);
        let residue = psd.total_power() - tone;
        assert!(residue < 1e-9, "residue {residue}");
    }
}
