//! Compact storage for 1-bit digitizer output, with bit-domain DSP
//! kernels.
//!
//! The SoC BIST stores comparator output in on-chip memory; one bit per
//! sample is the whole point of the low-cost digitizer (paper §4.3), so
//! the container is bit-packed and reports its memory footprint.
//!
//! The packing is not just storage: because the expanded samples are
//! exactly `±1`, several estimators reduce to integer bit arithmetic
//! on the packed words, 64 samples at a time:
//!
//! * lag products — `Σ x[i]·x[i+k] = (N−k) − 2·popcount(x ⊕ (x≫k))`,
//!   since a product of ±1 samples is `−1` exactly where the bits
//!   differ ([`Bitstream::lag_product`],
//!   [`Bitstream::autocorrelation`]);
//! * mean / bias — `Σ x[i] = 2·ones − N` ([`Bitstream::bipolar_sum`]);
//! * expansion — when a float buffer *is* needed (the Welch FFT path),
//!   [`Bitstream::expand_bipolar_into`] fills a caller-owned buffer
//!   word-by-word instead of allocating a fresh vector per record.
//!
//! All of these are bit-exact against the corresponding float-domain
//! computation on the expanded record: every intermediate is an
//! integer well inside the `f64` mantissa.
//!
//! The word-level kernels themselves (popcount, XOR-lag, bipolar
//! expansion) are delegated to the runtime-dispatched SIMD layer in
//! [`nfbist_dsp::simd`]; being integer/bit kernels they are
//! **bit-identical on every dispatch arm**, so nothing here depends on
//! which CPU runs the test.

use crate::AnalogError;
use nfbist_dsp::correlation::Bias;
use nfbist_dsp::simd;
use nfbist_dsp::soa::SoaRecords;

/// A packed record of comparator decisions.
///
/// Bits expand to `±1.0` samples for DSP processing via
/// [`Bitstream::to_bipolar`]; the bit-domain kernels listed in the
/// [module docs](self) avoid the expansion entirely.
///
/// # Examples
///
/// ```
/// use nfbist_analog::bitstream::Bitstream;
///
/// let bits: Bitstream = [true, false, true].into_iter().collect();
/// assert_eq!(bits.len(), 3);
/// assert_eq!(bits.to_bipolar(), vec![1.0, -1.0, 1.0]);
/// assert_eq!(bits.ones(), 2);
/// // Lag-1 products of the ±1 expansion, via XOR + popcount.
/// assert_eq!(bits.lag_product(1), Some(-2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitstream {
    words: Vec<u64>,
    len: usize,
}

impl Bitstream {
    /// Creates an empty bitstream.
    pub fn new() -> Self {
        Bitstream::default()
    }

    /// Creates an empty bitstream with capacity for `n` bits.
    pub fn with_capacity(n: usize) -> Self {
        Bitstream {
            words: Vec::with_capacity(n.div_ceil(64)),
            len: 0,
        }
    }

    /// Appends one bit.
    ///
    /// Bulk producers (acquisition loops) should prefer
    /// [`Bitstream::extend_from_bits`], which assembles whole `u64`
    /// words in a register instead of re-deriving the word/bit index
    /// per sample.
    pub fn push(&mut self, bit: bool) {
        let word_idx = self.len / 64;
        let bit_idx = self.len % 64;
        if word_idx == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word_idx] |= 1u64 << bit_idx;
        }
        self.len += 1;
    }

    /// Appends every bit of `bits` — the bulk fast path behind
    /// [`FromIterator`] and [`Extend`], and the acquisition loop of the
    /// 1-bit digitizer.
    ///
    /// Incoming bits are packed into a local `u64` that is flushed once
    /// per 64 samples, so the per-bit cost is one shift-or instead of a
    /// division, a bounds-checked word load and a read-modify-write.
    ///
    /// # Examples
    ///
    /// ```
    /// use nfbist_analog::bitstream::Bitstream;
    ///
    /// let mut bits = Bitstream::new();
    /// bits.extend_from_bits((0..130).map(|i| i % 3 == 0));
    /// assert_eq!(bits.len(), 130);
    /// assert_eq!(bits.get(129), Some(true));
    /// assert_eq!(bits.get(128), Some(false));
    /// ```
    pub fn extend_from_bits<I: IntoIterator<Item = bool>>(&mut self, bits: I) {
        let iter = bits.into_iter();
        self.words.reserve(iter.size_hint().0.div_ceil(64));
        // Resume inside the current partial word, if any.
        let mut fill = (self.len % 64) as u32;
        let mut word = if fill == 0 {
            0
        } else {
            self.words
                .pop()
                .expect("partial word exists when len % 64 != 0")
        };
        for bit in iter {
            word |= (bit as u64) << fill;
            fill += 1;
            if fill == 64 {
                self.words.push(word);
                word = 0;
                fill = 0;
            }
            self.len += 1;
        }
        if fill > 0 {
            self.words.push(word);
        }
    }

    /// Number of stored bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no bits are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// Returns `None` past the end.
    pub fn get(&self, i: usize) -> Option<bool> {
        if i >= self.len {
            return None;
        }
        Some(self.words[i / 64] >> (i % 64) & 1 == 1)
    }

    /// Count of `true` bits (vectorized popcount on the packed words).
    pub fn ones(&self) -> usize {
        simd::popcount_words(&self.words) as usize
    }

    /// Fraction of `true` bits (0.5 for an unbiased comparator looking
    /// at zero-mean noise).
    ///
    /// Returns NaN for an empty stream.
    pub fn duty(&self) -> f64 {
        self.ones() as f64 / self.len as f64
    }

    /// Sum of the `±1` expansion, `Σ x[i] = 2·ones − N`, via popcount —
    /// no per-bit work, no float accumulation error.
    pub fn bipolar_sum(&self) -> i64 {
        2 * self.ones() as i64 - self.len as i64
    }

    /// Mean of the `±1` expansion (the comparator's DC bias, 0 for an
    /// ideal comparator on zero-mean noise).
    ///
    /// Returns NaN for an empty stream.
    pub fn bipolar_mean(&self) -> f64 {
        self.bipolar_sum() as f64 / self.len as f64
    }

    /// Number of positions `i < len − lag` where bit `i` differs from
    /// bit `i + lag`, computed word-by-word as
    /// `popcount(x ⊕ (x ≫ lag))`.
    ///
    /// Returns `None` when `lag >= len`.
    ///
    /// The word walk runs on the dispatched SIMD kernel
    /// ([`nfbist_dsp::simd::xor_popcount_lag`]): on AVX2+POPCNT the
    /// shifted stream is assembled and XOR-popcounted four words per
    /// register, with a scalar tail handling the ragged end — both arms
    /// count the exact same integer.
    pub fn xor_popcount_lag(&self, lag: usize) -> Option<usize> {
        if lag >= self.len {
            return None;
        }
        Some(simd::xor_popcount_lag(&self.words, self.len, lag))
    }

    /// Sum of lag-`lag` products of the `±1` expansion,
    /// `Σ_{i<N−lag} x[i]·x[i+lag]`: each product is `+1` where the bits
    /// agree and `−1` where they differ, so the sum is
    /// `(N − lag) − 2·popcount(x ⊕ (x ≫ lag))`.
    ///
    /// Returns `None` when `lag >= len`.
    pub fn lag_product(&self, lag: usize) -> Option<i64> {
        let differing = self.xor_popcount_lag(lag)?;
        Some((self.len - lag) as i64 - 2 * differing as i64)
    }

    /// Autocorrelation of the `±1` expansion for lags `0..=max_lag`
    /// via XOR + popcount — bit-exact with
    /// [`nfbist_dsp::correlation::autocorrelation`] on
    /// [`Bitstream::to_bipolar`] (the lag sums are integers, exactly
    /// representable in `f64`) at roughly a 64th of the work.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::EmptyInput`] for an empty stream and
    /// [`AnalogError::InvalidParameter`] if `max_lag >= len`.
    ///
    /// # Examples
    ///
    /// ```
    /// use nfbist_analog::bitstream::Bitstream;
    /// use nfbist_dsp::correlation::Bias;
    ///
    /// # fn main() -> Result<(), nfbist_analog::AnalogError> {
    /// // The alternating stream anti-correlates at lag 1.
    /// let bits: Bitstream = (0..4).map(|i| i % 2 == 0).collect();
    /// let r = bits.autocorrelation(1, Bias::Biased)?;
    /// assert_eq!(r, vec![1.0, -0.75]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn autocorrelation(&self, max_lag: usize, bias: Bias) -> Result<Vec<f64>, AnalogError> {
        if self.is_empty() {
            return Err(AnalogError::EmptyInput {
                context: "bitstream autocorrelation",
            });
        }
        if max_lag >= self.len {
            return Err(AnalogError::InvalidParameter {
                name: "max_lag",
                reason: "must be smaller than the stream length",
            });
        }
        let n = self.len;
        Ok((0..=max_lag)
            .map(|lag| {
                let acc = self.lag_product(lag).expect("lag < len") as f64;
                let denom = match bias {
                    Bias::Biased => n as f64,
                    Bias::Unbiased => (n - lag) as f64,
                };
                acc / denom
            })
            .collect())
    }

    /// Normalized autocorrelation `ρ[k] = R[k]/R[0]` of the `±1`
    /// expansion — the quantity inside the arcsine law (paper eq. 12).
    /// For a ±1 signal `R[0] = 1` exactly, so this is the biased
    /// [`Bitstream::autocorrelation`].
    ///
    /// # Errors
    ///
    /// Same as [`Bitstream::autocorrelation`].
    pub fn normalized_autocorrelation(&self, max_lag: usize) -> Result<Vec<f64>, AnalogError> {
        self.autocorrelation(max_lag, Bias::Biased)
    }

    /// Expands to `±1.0` samples (`true → +1`).
    pub fn to_bipolar(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.len];
        self.expand_bipolar_into(&mut out)
            .expect("freshly sized buffer");
        out
    }

    /// Expands the `±1.0` samples into a caller-owned buffer — the
    /// zero-allocation variant of [`Bitstream::to_bipolar`] used by the
    /// 1-bit estimator hot path. Samples are produced word-by-word
    /// (one shift-and per bit, no per-bit word indexing).
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::LengthMismatch`] unless
    /// `out.len() == self.len()`.
    pub fn expand_bipolar_into(&self, out: &mut [f64]) -> Result<(), AnalogError> {
        if out.len() != self.len {
            return Err(AnalogError::LengthMismatch {
                expected: self.len,
                actual: out.len(),
                context: "bitstream expand_bipolar_into",
            });
        }
        simd::expand_bipolar(&self.words, out);
        Ok(())
    }

    /// Expands several equal-length bitstreams into one sample-major
    /// [`SoaRecords`] batch — the fan-out layout the SIMD Goertzel
    /// readout ([`nfbist_dsp::goertzel::Goertzel::power_soa`]) consumes,
    /// with repeat `l` of sample `i` at `data[i * lanes + l]`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::EmptyInput`] for an empty list or
    /// zero-length streams and [`AnalogError::LengthMismatch`] when the
    /// streams disagree on length.
    ///
    /// # Examples
    ///
    /// ```
    /// use nfbist_analog::bitstream::Bitstream;
    ///
    /// # fn main() -> Result<(), nfbist_analog::AnalogError> {
    /// let a: Bitstream = [true, false, true].into_iter().collect();
    /// let b: Bitstream = [false, false, true].into_iter().collect();
    /// let batch = Bitstream::expand_many_bipolar(&[a, b])?;
    /// assert_eq!(batch.lanes(), 2);
    /// assert_eq!(batch.copy_lane(1), vec![-1.0, -1.0, 1.0]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn expand_many_bipolar(streams: &[Bitstream]) -> Result<SoaRecords, AnalogError> {
        let first = streams.first().ok_or(AnalogError::EmptyInput {
            context: "bitstream expand_many_bipolar",
        })?;
        let samples = first.len();
        if samples == 0 {
            return Err(AnalogError::EmptyInput {
                context: "bitstream expand_many_bipolar",
            });
        }
        let mut batch = SoaRecords::new(streams.len(), samples);
        let mut scratch = vec![0.0f64; samples];
        for (l, s) in streams.iter().enumerate() {
            if s.len() != samples {
                return Err(AnalogError::LengthMismatch {
                    expected: samples,
                    actual: s.len(),
                    context: "bitstream expand_many_bipolar",
                });
            }
            simd::expand_bipolar(&s.words, &mut scratch);
            batch.set_lane(l, &scratch);
        }
        Ok(batch)
    }

    /// Scalar word-walk expansion: applies `f` to each bit (0 or 1) of
    /// the stream, 64 samples per word load. `out` must be at most
    /// `self.len()` long. The hot `±1` path goes through the dispatched
    /// [`nfbist_dsp::simd::expand_bipolar`] instead; this generic form
    /// serves the remaining (cold) expansions such as
    /// [`Bitstream::to_unipolar`].
    fn expand_words_into(&self, out: &mut [f64], f: impl Fn(u64) -> f64) {
        for (chunk, &w) in out.chunks_mut(64).zip(&self.words) {
            let mut word = w;
            for o in chunk {
                *o = f(word & 1);
                word >>= 1;
            }
        }
    }

    /// Iterates over the `±1.0` expansion without materializing it
    /// (e.g. for single-bin Goertzel readout of a bitstream).
    pub fn iter_bipolar(&self) -> impl ExactSizeIterator<Item = f64> + '_ {
        self.iter().map(|b| if b { 1.0 } else { -1.0 })
    }

    /// Expands to `0.0 / 1.0` samples.
    pub fn to_unipolar(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.len];
        self.expand_words_into(&mut out, |bit| bit as f64);
        out
    }

    /// Memory footprint of the packed representation in bytes.
    ///
    /// The SoC resource accountant uses this to budget acquisitions.
    pub fn memory_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Iterates over the bits.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            stream: self,
            pos: 0,
        }
    }
}

/// A chunked accumulator for the popcount lag kernels: lag products
/// (and with them autocorrelations) of an arbitrarily long 1-bit stream
/// in `O(max_lag)` memory.
///
/// The batch kernels ([`Bitstream::lag_product`],
/// [`Bitstream::autocorrelation`]) need the whole packed record; this
/// accumulator consumes it chunk by chunk, carrying only the last
/// `max_lag` bits across chunk boundaries so boundary-straddling pairs
/// are counted exactly once. Every count is an exact integer, so the
/// result is **bit-identical** to the batch kernel over the
/// concatenated stream — for any chunking, word-aligned or not.
///
/// # Examples
///
/// ```
/// use nfbist_analog::bitstream::{Bitstream, StreamingLagAccumulator};
/// use nfbist_dsp::correlation::Bias;
///
/// # fn main() -> Result<(), nfbist_analog::AnalogError> {
/// let whole: Bitstream = (0..1_000).map(|i| i % 3 == 0).collect();
/// let mut acc = StreamingLagAccumulator::new(4);
/// // Push in ragged, non-word-aligned chunks.
/// let bits: Vec<bool> = whole.iter().collect();
/// for chunk in bits.chunks(77) {
///     acc.push(&chunk.iter().copied().collect::<Bitstream>());
/// }
/// assert_eq!(
///     acc.autocorrelation(Bias::Biased)?,
///     whole.autocorrelation(4, Bias::Biased)?,
/// );
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StreamingLagAccumulator {
    max_lag: usize,
    /// The last `min(max_lag, len)` bits seen, for boundary pairs.
    tail: Bitstream,
    /// Differing-pair counts per lag `1..=max_lag` (`differing[k-1]`).
    differing: Vec<u64>,
    len: usize,
    ones: usize,
}

impl StreamingLagAccumulator {
    /// Creates an accumulator tracking lags `0..=max_lag`.
    pub fn new(max_lag: usize) -> Self {
        StreamingLagAccumulator {
            max_lag,
            tail: Bitstream::new(),
            differing: vec![0; max_lag],
            len: 0,
            ones: 0,
        }
    }

    /// The largest tracked lag.
    pub fn max_lag(&self) -> usize {
        self.max_lag
    }

    /// Total bits consumed so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` before any bit has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Count of `true` bits consumed so far.
    pub fn ones(&self) -> usize {
        self.ones
    }

    /// Sum of the `±1` expansion of everything consumed so far.
    pub fn bipolar_sum(&self) -> i64 {
        2 * self.ones as i64 - self.len as i64
    }

    /// Consumes one chunk of the stream.
    ///
    /// Pairs that straddle the previous chunk boundary are counted
    /// against the carried tail; pairs wholly inside the tail were
    /// counted on an earlier push and are subtracted back out.
    pub fn push(&mut self, chunk: &Bitstream) {
        if chunk.is_empty() {
            return;
        }
        // tail ++ chunk: every not-yet-counted pair for lags <= max_lag
        // lives inside this window.
        let mut ext = self.tail.clone();
        ext.extend_from_bits(chunk.iter());
        let count = |s: &Bitstream, lag: usize| s.xor_popcount_lag(lag).unwrap_or(0) as u64;
        for lag in 1..=self.max_lag {
            self.differing[lag - 1] += count(&ext, lag) - count(&self.tail, lag);
        }
        self.ones += chunk.ones();
        self.len += chunk.len();
        let keep = self.max_lag.min(ext.len());
        self.tail = ext.iter().skip(ext.len() - keep).collect();
    }

    /// Sum of lag-`lag` products of the `±1` expansion of everything
    /// consumed so far — the streaming counterpart of
    /// [`Bitstream::lag_product`].
    ///
    /// Returns `None` when `lag >= len` or `lag > max_lag`.
    pub fn lag_product(&self, lag: usize) -> Option<i64> {
        if lag >= self.len || lag > self.max_lag {
            return None;
        }
        if lag == 0 {
            return Some(self.len as i64);
        }
        Some((self.len - lag) as i64 - 2 * self.differing[lag - 1] as i64)
    }

    /// Autocorrelation for lags `0..=max_lag`, bit-identical to
    /// [`Bitstream::autocorrelation`] over the concatenated stream.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::EmptyInput`] before any bit arrived and
    /// [`AnalogError::InvalidParameter`] while `max_lag >= len`.
    pub fn autocorrelation(&self, bias: Bias) -> Result<Vec<f64>, AnalogError> {
        if self.is_empty() {
            return Err(AnalogError::EmptyInput {
                context: "bitstream autocorrelation",
            });
        }
        if self.max_lag >= self.len {
            return Err(AnalogError::InvalidParameter {
                name: "max_lag",
                reason: "must be smaller than the stream length",
            });
        }
        let n = self.len;
        Ok((0..=self.max_lag)
            .map(|lag| {
                let acc = self.lag_product(lag).expect("lag < len") as f64;
                let denom = match bias {
                    Bias::Biased => n as f64,
                    Bias::Unbiased => (n - lag) as f64,
                };
                acc / denom
            })
            .collect())
    }

    /// Normalized autocorrelation `ρ[k] = R[k]/R[0]` (for ±1 samples,
    /// identical to the biased autocorrelation) — the streaming side of
    /// the arcsine-law readout.
    ///
    /// # Errors
    ///
    /// Same as [`StreamingLagAccumulator::autocorrelation`].
    pub fn normalized_autocorrelation(&self) -> Result<Vec<f64>, AnalogError> {
        self.autocorrelation(Bias::Biased)
    }
}

/// A sliding-window lag accumulator: lag products over exactly the
/// last `window_bits` bits of the stream, older bits retired as new
/// ones arrive.
///
/// Every count is an exact integer maintained incrementally (each new
/// bit adds its pairs, each evicted bit subtracts the pairs it formed
/// with its `max_lag` successors), so the result is **bit-identical**
/// to [`Bitstream::lag_product`] / [`Bitstream::autocorrelation`] run
/// over a batch copy of the retained bits — for any chunking of the
/// pushes. The ring and count buffers are sized at construction;
/// pushing never allocates.
///
/// # Examples
///
/// ```
/// use nfbist_analog::bitstream::{Bitstream, SlidingLagAccumulator};
///
/// # fn main() -> Result<(), nfbist_analog::AnalogError> {
/// let stream: Bitstream = (0..1_000).map(|i| i % 3 == 0).collect();
/// let mut acc = SlidingLagAccumulator::new(4, 256)?;
/// acc.push(&stream);
/// // The window holds the last 256 bits; a batch kernel over exactly
/// // those bits agrees on every lag product.
/// let tail: Bitstream = stream.iter().skip(stream.len() - 256).collect();
/// for lag in 0..=4 {
///     assert_eq!(acc.lag_product(lag), tail.lag_product(lag));
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SlidingLagAccumulator {
    max_lag: usize,
    /// Circular window storage, `window_bits` capacity.
    ring: Vec<bool>,
    /// Index of the oldest retained bit.
    start: usize,
    /// Retained bit count, `min(pushed, window_bits)`.
    filled: usize,
    /// Differing-pair counts per lag `1..=max_lag` over the window.
    differing: Vec<u64>,
    /// `true` bits in the window.
    ones: usize,
    /// Total bits consumed over the whole stream.
    pushed: usize,
}

impl SlidingLagAccumulator {
    /// Creates an accumulator tracking lags `0..=max_lag` over the last
    /// `window_bits` bits.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] unless
    /// `window_bits > max_lag` (the batch kernel's `max_lag < len`
    /// requirement, applied to the retained window).
    pub fn new(max_lag: usize, window_bits: usize) -> Result<Self, AnalogError> {
        if window_bits <= max_lag {
            return Err(AnalogError::InvalidParameter {
                name: "window_bits",
                reason: "sliding window must be longer than max_lag",
            });
        }
        Ok(SlidingLagAccumulator {
            max_lag,
            ring: vec![false; window_bits],
            start: 0,
            filled: 0,
            differing: vec![0; max_lag],
            ones: 0,
            pushed: 0,
        })
    }

    /// The largest tracked lag.
    pub fn max_lag(&self) -> usize {
        self.max_lag
    }

    /// The window capacity in bits.
    pub fn window_bits(&self) -> usize {
        self.ring.len()
    }

    /// Bits currently retained (`min(pushed, window_bits)`).
    pub fn len(&self) -> usize {
        self.filled
    }

    /// `true` before any bit has been pushed.
    pub fn is_empty(&self) -> bool {
        self.filled == 0
    }

    /// Count of `true` bits in the window.
    pub fn ones(&self) -> usize {
        self.ones
    }

    /// Sum of the `±1` expansion of the window.
    pub fn bipolar_sum(&self) -> i64 {
        2 * self.ones as i64 - self.filled as i64
    }

    /// Total bits consumed over the whole stream, including retired
    /// ones.
    pub fn bits_seen(&self) -> usize {
        self.pushed
    }

    /// Absolute positions `[start, end)` of the retained bits within
    /// the pushed stream, or `None` before the first bit.
    pub fn retained_range(&self) -> Option<(usize, usize)> {
        if self.filled == 0 {
            return None;
        }
        Some((self.pushed - self.filled, self.pushed))
    }

    /// A batch copy of the retained window, oldest bit first — the
    /// record [`SlidingLagAccumulator::lag_product`] is exact against.
    pub fn window_contents(&self) -> Bitstream {
        (0..self.filled)
            .map(|i| self.ring[(self.start + i) % self.ring.len()])
            .collect()
    }

    fn push_bit(&mut self, bit: bool) {
        let cap = self.ring.len();
        if self.filled == cap {
            // Evict the oldest bit: remove the pairs it forms with its
            // successors still in the window.
            let evicted = self.ring[self.start];
            for lag in 1..=self.max_lag.min(self.filled - 1) {
                if evicted != self.ring[(self.start + lag) % cap] {
                    self.differing[lag - 1] -= 1;
                }
            }
            if evicted {
                self.ones -= 1;
            }
            self.start = (self.start + 1) % cap;
            self.filled -= 1;
        }
        // Add the new bit: count the pairs it forms looking back.
        for lag in 1..=self.max_lag.min(self.filled) {
            if bit != self.ring[(self.start + self.filled - lag) % cap] {
                self.differing[lag - 1] += 1;
            }
        }
        self.ring[(self.start + self.filled) % cap] = bit;
        self.filled += 1;
        if bit {
            self.ones += 1;
        }
        self.pushed += 1;
    }

    /// Consumes one chunk of the stream, retiring bits that fall out of
    /// the window.
    pub fn push(&mut self, chunk: &Bitstream) {
        for bit in chunk.iter() {
            self.push_bit(bit);
        }
    }

    /// Sum of lag-`lag` products of the `±1` expansion of the window —
    /// exact against [`Bitstream::lag_product`] on
    /// [`SlidingLagAccumulator::window_contents`].
    ///
    /// Returns `None` when `lag >= len` or `lag > max_lag`.
    pub fn lag_product(&self, lag: usize) -> Option<i64> {
        if lag >= self.filled || lag > self.max_lag {
            return None;
        }
        if lag == 0 {
            return Some(self.filled as i64);
        }
        Some((self.filled - lag) as i64 - 2 * self.differing[lag - 1] as i64)
    }

    /// Autocorrelation of the window for lags `0..=max_lag`,
    /// bit-identical to [`Bitstream::autocorrelation`] over the
    /// retained bits.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::EmptyInput`] before any bit arrived and
    /// [`AnalogError::InvalidParameter`] while `max_lag >= len`.
    pub fn autocorrelation(&self, bias: Bias) -> Result<Vec<f64>, AnalogError> {
        if self.is_empty() {
            return Err(AnalogError::EmptyInput {
                context: "bitstream autocorrelation",
            });
        }
        if self.max_lag >= self.filled {
            return Err(AnalogError::InvalidParameter {
                name: "max_lag",
                reason: "must be smaller than the stream length",
            });
        }
        let n = self.filled;
        Ok((0..=self.max_lag)
            .map(|lag| {
                let acc = self.lag_product(lag).expect("lag < len") as f64;
                let denom = match bias {
                    Bias::Biased => n as f64,
                    Bias::Unbiased => (n - lag) as f64,
                };
                acc / denom
            })
            .collect())
    }

    /// Normalized autocorrelation `ρ[k] = R[k]/R[0]` of the window.
    ///
    /// # Errors
    ///
    /// Same as [`SlidingLagAccumulator::autocorrelation`].
    pub fn normalized_autocorrelation(&self) -> Result<Vec<f64>, AnalogError> {
        self.autocorrelation(Bias::Biased)
    }
}

/// An exponentially-forgetting lag accumulator: per-block lag products
/// decayed by `lambda` at every completed block of `block_bits` bits,
/// so the autocorrelation tracks the recent past with an effective
/// depth of about `(1 + λ)/(1 - λ)` blocks.
///
/// Within a block every count is the same exact integer the streaming
/// kernel produces ([`StreamingLagAccumulator`]'s extend-minus-tail
/// counting); the decay is applied once per completed block, at an
/// absolute stream position independent of chunking — so the readout is
/// **bit-identical across chunk sizes**, like every streaming path in
/// this workspace.
///
/// # Examples
///
/// ```
/// use nfbist_analog::bitstream::{Bitstream, ForgettingLagAccumulator};
///
/// # fn main() -> Result<(), nfbist_analog::AnalogError> {
/// let stream: Bitstream = (0..1_024).map(|i| i % 3 == 0).collect();
/// let mut a = ForgettingLagAccumulator::new(4, 256, 0.5)?;
/// let mut b = ForgettingLagAccumulator::new(4, 256, 0.5)?;
/// a.push(&stream);
/// let bits: Vec<bool> = stream.iter().collect();
/// for chunk in bits.chunks(77) {
///     b.push(&chunk.iter().copied().collect::<Bitstream>());
/// }
/// assert_eq!(a.lag_product(2), b.lag_product(2)); // chunking invisible
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ForgettingLagAccumulator {
    max_lag: usize,
    block_bits: usize,
    lambda: f64,
    /// The last `min(max_lag, consumed)` completed-stream bits, for
    /// pairs straddling block boundaries.
    tail: Bitstream,
    /// Bits of the current incomplete block.
    partial: Bitstream,
    /// Decayed lag-product sums per lag `1..=max_lag`.
    weighted: Vec<f64>,
    /// Decayed pair counts per lag (the unbiased denominators).
    weight_pairs: Vec<f64>,
    /// Decayed bit count (the lag-0 product and biased denominator).
    weight_len: f64,
    /// `Σ λ^j` over completed blocks.
    weight: f64,
    /// `Σ λ^{2j}`, for the effective depth.
    weight_sq: f64,
    blocks: usize,
    /// Bits in completed blocks.
    consumed: usize,
    pushed: usize,
}

impl ForgettingLagAccumulator {
    /// Creates an accumulator decaying by `lambda` every `block_bits`
    /// bits.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for a zero block
    /// length or a `lambda` outside the open interval `(0, 1)`.
    pub fn new(max_lag: usize, block_bits: usize, lambda: f64) -> Result<Self, AnalogError> {
        if block_bits == 0 {
            return Err(AnalogError::InvalidParameter {
                name: "block_bits",
                reason: "forgetting block must hold at least one bit",
            });
        }
        if !(lambda > 0.0 && lambda < 1.0) {
            return Err(AnalogError::InvalidParameter {
                name: "lambda",
                reason: "forgetting factor must lie in (0, 1)",
            });
        }
        Ok(ForgettingLagAccumulator {
            max_lag,
            block_bits,
            lambda,
            tail: Bitstream::new(),
            partial: Bitstream::new(),
            weighted: vec![0.0; max_lag],
            weight_pairs: vec![0.0; max_lag],
            weight_len: 0.0,
            weight: 0.0,
            weight_sq: 0.0,
            blocks: 0,
            consumed: 0,
            pushed: 0,
        })
    }

    /// The largest tracked lag.
    pub fn max_lag(&self) -> usize {
        self.max_lag
    }

    /// The decay block length in bits.
    pub fn block_bits(&self) -> usize {
        self.block_bits
    }

    /// The per-block decay factor.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Completed blocks so far.
    pub fn blocks_seen(&self) -> usize {
        self.blocks
    }

    /// Total bits consumed (including the current partial block).
    pub fn bits_seen(&self) -> usize {
        self.pushed
    }

    /// The equivalent number of equally-weighted blocks,
    /// `(Σλ^j)² / Σλ^{2j}` — 0 before the first completed block,
    /// growing toward `(1 + λ)/(1 - λ)`.
    pub fn effective_blocks(&self) -> f64 {
        if self.blocks == 0 {
            return 0.0;
        }
        self.weight * self.weight / self.weight_sq
    }

    fn complete_block(&mut self) {
        let t = self.tail.len();
        let b = self.partial.len();
        let mut ext = self.tail.clone();
        ext.extend_from_bits(self.partial.iter());
        let count = |s: &Bitstream, lag: usize| s.xor_popcount_lag(lag).unwrap_or(0) as u64;
        for lag in 1..=self.max_lag {
            // Pairs whose second element lies in this block: second
            // index ranges over [max(t, lag), t + b).
            let pairs = (t + b).saturating_sub(t.max(lag));
            let diff = count(&ext, lag) - count(&self.tail, lag);
            let contrib = pairs as i64 - 2 * diff as i64;
            self.weighted[lag - 1] = self.lambda * self.weighted[lag - 1] + contrib as f64;
            self.weight_pairs[lag - 1] = self.lambda * self.weight_pairs[lag - 1] + pairs as f64;
        }
        self.weight_len = self.lambda * self.weight_len + b as f64;
        self.weight = self.lambda * self.weight + 1.0;
        self.weight_sq = self.lambda * self.lambda * self.weight_sq + 1.0;
        self.blocks += 1;
        self.consumed += b;
        let keep = self.max_lag.min(ext.len());
        self.tail = ext.iter().skip(ext.len() - keep).collect();
        self.partial = Bitstream::new();
    }

    /// Consumes one chunk of the stream; every block boundary the chunk
    /// crosses applies one decay step.
    pub fn push(&mut self, chunk: &Bitstream) {
        for bit in chunk.iter() {
            self.partial.push(bit);
            self.pushed += 1;
            if self.partial.len() == self.block_bits {
                self.complete_block();
            }
        }
    }

    /// Decayed sum of lag-`lag` products over completed blocks (newer
    /// blocks weighted more). Lag 0 returns the decayed bit count.
    ///
    /// Returns `None` when `lag >= consumed bits` or `lag > max_lag`.
    pub fn lag_product(&self, lag: usize) -> Option<f64> {
        if lag >= self.consumed || lag > self.max_lag {
            return None;
        }
        if lag == 0 {
            return Some(self.weight_len);
        }
        Some(self.weighted[lag - 1])
    }

    /// Forgetting autocorrelation for lags `0..=max_lag`: decayed lag
    /// products over decayed denominators (bit count for
    /// [`Bias::Biased`], per-lag pair count for [`Bias::Unbiased`]).
    /// With a single completed block this is exactly the batch
    /// autocorrelation of that block.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::EmptyInput`] before the first completed
    /// block and [`AnalogError::InvalidParameter`] while
    /// `max_lag >= consumed bits`.
    pub fn autocorrelation(&self, bias: Bias) -> Result<Vec<f64>, AnalogError> {
        if self.blocks == 0 {
            return Err(AnalogError::EmptyInput {
                context: "bitstream autocorrelation",
            });
        }
        if self.max_lag >= self.consumed {
            return Err(AnalogError::InvalidParameter {
                name: "max_lag",
                reason: "must be smaller than the stream length",
            });
        }
        Ok((0..=self.max_lag)
            .map(|lag| {
                if lag == 0 {
                    return 1.0;
                }
                let denom = match bias {
                    Bias::Biased => self.weight_len,
                    Bias::Unbiased => self.weight_pairs[lag - 1],
                };
                self.weighted[lag - 1] / denom
            })
            .collect())
    }

    /// Normalized forgetting autocorrelation `ρ[k] = R[k]/R[0]`.
    ///
    /// # Errors
    ///
    /// Same as [`ForgettingLagAccumulator::autocorrelation`].
    pub fn normalized_autocorrelation(&self) -> Result<Vec<f64>, AnalogError> {
        self.autocorrelation(Bias::Biased)
    }
}

impl FromIterator<bool> for Bitstream {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut bs = Bitstream::new();
        bs.extend_from_bits(iter);
        bs
    }
}

impl Extend<bool> for Bitstream {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        self.extend_from_bits(iter);
    }
}

/// Iterator over the bits of a [`Bitstream`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    stream: &'a Bitstream,
    pos: usize,
}

impl Iterator for Iter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        let b = self.stream.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.stream.len - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

impl<'a> IntoIterator for &'a Bitstream {
    type Item = bool;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut bs = Bitstream::new();
        assert!(bs.is_empty());
        for i in 0..130 {
            bs.push(i % 3 == 0);
        }
        assert_eq!(bs.len(), 130);
        for i in 0..130 {
            assert_eq!(bs.get(i), Some(i % 3 == 0), "bit {i}");
        }
        assert_eq!(bs.get(130), None);
    }

    #[test]
    fn ones_and_duty() {
        let bs: Bitstream = [true, true, false, false].into_iter().collect();
        assert_eq!(bs.ones(), 2);
        assert_eq!(bs.duty(), 0.5);
        assert!(Bitstream::new().duty().is_nan());
    }

    #[test]
    fn bipolar_and_unipolar_expansion() {
        let bs: Bitstream = [true, false].into_iter().collect();
        assert_eq!(bs.to_bipolar(), vec![1.0, -1.0]);
        assert_eq!(bs.to_unipolar(), vec![1.0, 0.0]);
    }

    #[test]
    fn memory_footprint_is_one_bit_per_sample() {
        let bs: Bitstream = (0..1_000_000).map(|i| i % 2 == 0).collect();
        // 10⁶ bits ≈ 125 kB — the paper's full acquisition fits in
        // modest SoC memory.
        assert_eq!(bs.memory_bytes(), 1_000_000_usize.div_ceil(64) * 8);
        assert!(bs.memory_bytes() < 126_000);
    }

    #[test]
    fn iteration() {
        let bits = [true, false, true, true];
        let bs: Bitstream = bits.into_iter().collect();
        let collected: Vec<bool> = bs.iter().collect();
        assert_eq!(collected, bits);
        assert_eq!(bs.iter().len(), 4);
        let from_ref: Vec<bool> = (&bs).into_iter().collect();
        assert_eq!(from_ref, bits);
    }

    #[test]
    fn extend_appends() {
        let mut bs: Bitstream = [true].into_iter().collect();
        bs.extend([false, true]);
        assert_eq!(bs.to_bipolar(), vec![1.0, -1.0, 1.0]);
    }

    #[test]
    fn word_boundary_crossing() {
        let mut bs = Bitstream::with_capacity(65);
        for _ in 0..64 {
            bs.push(false);
        }
        bs.push(true);
        assert_eq!(bs.get(64), Some(true));
        assert_eq!(bs.ones(), 1);
    }

    /// Deterministic pseudo-random bit pattern for kernel tests.
    fn random_bits(n: usize, seed: u64) -> Vec<bool> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 60) & 1 == 1
            })
            .collect()
    }

    #[test]
    fn extend_from_bits_matches_push_across_offsets() {
        // Start from every in-word offset so the resume-partial-word
        // path is exercised, including straddling word boundaries.
        for prefix in [0usize, 1, 37, 63, 64, 65, 127, 128] {
            let head = random_bits(prefix, 1);
            let tail = random_bits(200, 2);
            let mut by_push = Bitstream::new();
            for &b in head.iter().chain(&tail) {
                by_push.push(b);
            }
            let mut by_bulk = Bitstream::new();
            by_bulk.extend_from_bits(head.iter().copied());
            by_bulk.extend_from_bits(tail.iter().copied());
            assert_eq!(by_push, by_bulk, "prefix {prefix}");
        }
    }

    #[test]
    fn bipolar_sum_and_mean_via_popcount() {
        let bs: Bitstream = [true, true, false, true].into_iter().collect();
        assert_eq!(bs.bipolar_sum(), 2);
        assert_eq!(bs.bipolar_mean(), 0.5);
        let balanced: Bitstream = (0..1000).map(|i| i % 2 == 0).collect();
        assert_eq!(balanced.bipolar_sum(), 0);
    }

    #[test]
    fn lag_product_matches_float_products() {
        for n in [3usize, 63, 64, 65, 130, 1000] {
            let bits = random_bits(n, n as u64);
            let bs: Bitstream = bits.iter().copied().collect();
            let x = bs.to_bipolar();
            for lag in [0usize, 1, 2, 63, 64, 65, n - 1] {
                if lag >= n {
                    continue;
                }
                let expect: f64 = (0..n - lag).map(|i| x[i] * x[i + lag]).sum();
                assert_eq!(bs.lag_product(lag), Some(expect as i64), "n {n} lag {lag}");
            }
            assert_eq!(bs.lag_product(n), None);
        }
    }

    #[test]
    fn autocorrelation_matches_float_reference_bitwise() {
        use nfbist_dsp::correlation::autocorrelation;
        for n in [5usize, 64, 100, 129] {
            let bits = random_bits(n, 7 + n as u64);
            let bs: Bitstream = bits.iter().copied().collect();
            let x = bs.to_bipolar();
            for bias in [Bias::Biased, Bias::Unbiased] {
                let fast = bs.autocorrelation(n.min(20) - 1, bias).unwrap();
                let reference = autocorrelation(&x, n.min(20) - 1, bias).unwrap();
                assert_eq!(fast, reference, "n {n} bias {bias:?}");
            }
        }
        assert!(Bitstream::new().autocorrelation(0, Bias::Biased).is_err());
        let one: Bitstream = [true].into_iter().collect();
        assert!(one.autocorrelation(1, Bias::Biased).is_err());
        assert_eq!(one.normalized_autocorrelation(0).unwrap(), vec![1.0]);
    }

    #[test]
    fn expand_bipolar_into_matches_to_bipolar() {
        let bits = random_bits(130, 9);
        let bs: Bitstream = bits.iter().copied().collect();
        let mut out = vec![9.0; 130];
        bs.expand_bipolar_into(&mut out).unwrap();
        assert_eq!(out, bs.to_bipolar());
        assert!(bs.expand_bipolar_into(&mut out[..129]).is_err());
        let collected: Vec<f64> = bs.iter_bipolar().collect();
        assert_eq!(collected, out);
        assert_eq!(bs.iter_bipolar().len(), 130);
    }

    #[test]
    fn expand_many_bipolar_matches_per_stream_expansion() {
        let streams: Vec<Bitstream> = (0..5)
            .map(|r| random_bits(130, 40 + r).into_iter().collect())
            .collect();
        let batch = Bitstream::expand_many_bipolar(&streams).unwrap();
        assert_eq!(batch.lanes(), 5);
        assert_eq!(batch.samples(), 130);
        for (l, s) in streams.iter().enumerate() {
            assert_eq!(batch.copy_lane(l), s.to_bipolar(), "lane {l}");
        }
        // Validation: empty list, zero-length streams, ragged lengths.
        assert!(Bitstream::expand_many_bipolar(&[]).is_err());
        assert!(Bitstream::expand_many_bipolar(&[Bitstream::new()]).is_err());
        let ragged = [
            random_bits(10, 1).into_iter().collect::<Bitstream>(),
            random_bits(11, 2).into_iter().collect::<Bitstream>(),
        ];
        assert!(Bitstream::expand_many_bipolar(&ragged).is_err());
    }
}

#[cfg(test)]
mod streaming_lag_tests {
    use super::*;

    fn pseudo_stream(n: usize, seed: u64) -> Bitstream {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) & 1 == 1
            })
            .collect()
    }

    #[test]
    fn chunked_lag_products_are_bit_exact() {
        let whole = pseudo_stream(5_000, 9);
        let bits: Vec<bool> = whole.iter().collect();
        // Word-aligned, ragged, tiny and huge chunkings all agree.
        for chunk in [1usize, 63, 64, 65, 777, 5_000] {
            let mut acc = StreamingLagAccumulator::new(16);
            for c in bits.chunks(chunk) {
                acc.push(&c.iter().copied().collect::<Bitstream>());
            }
            assert_eq!(acc.len(), whole.len());
            assert_eq!(acc.ones(), whole.ones());
            assert_eq!(acc.bipolar_sum(), whole.bipolar_sum());
            for lag in 0..=16 {
                assert_eq!(
                    acc.lag_product(lag),
                    whole.lag_product(lag),
                    "chunk {chunk} lag {lag}"
                );
            }
            assert_eq!(
                acc.autocorrelation(Bias::Unbiased).unwrap(),
                whole.autocorrelation(16, Bias::Unbiased).unwrap(),
                "chunk {chunk}"
            );
            assert_eq!(
                acc.normalized_autocorrelation().unwrap(),
                whole.normalized_autocorrelation(16).unwrap(),
            );
        }
    }

    #[test]
    fn error_and_edge_semantics_mirror_the_batch_kernel() {
        let mut acc = StreamingLagAccumulator::new(4);
        assert!(acc.is_empty());
        assert!(acc.autocorrelation(Bias::Biased).is_err(), "empty");
        assert_eq!(acc.lag_product(0), None);
        acc.push(&Bitstream::new()); // empty chunk is a no-op
        assert!(acc.is_empty());
        acc.push(&pseudo_stream(3, 1));
        // max_lag >= len still errors, like the batch kernel.
        assert!(acc.autocorrelation(Bias::Biased).is_err());
        acc.push(&pseudo_stream(10, 2));
        assert!(acc.autocorrelation(Bias::Biased).is_ok());
        assert_eq!(acc.max_lag(), 4);
        // Lags beyond the configured window are not tracked.
        assert_eq!(acc.lag_product(5), None);
    }

    #[test]
    fn sliding_window_is_exact_against_batch_on_retained_bits() {
        let whole = pseudo_stream(3_000, 41);
        let bits: Vec<bool> = whole.iter().collect();
        for window in [17usize, 64, 500] {
            for chunk in [1usize, 63, 64, 65, 777, 3_000] {
                let mut acc = SlidingLagAccumulator::new(8, window).unwrap();
                for c in bits.chunks(chunk) {
                    acc.push(&c.iter().copied().collect::<Bitstream>());
                }
                assert_eq!(acc.bits_seen(), bits.len());
                assert_eq!(acc.len(), window.min(bits.len()));
                let (start, end) = acc.retained_range().unwrap();
                let tail: Bitstream = bits[start..end].iter().copied().collect();
                assert_eq!(acc.window_contents(), tail);
                assert_eq!(acc.ones(), tail.ones());
                assert_eq!(acc.bipolar_sum(), tail.bipolar_sum());
                for lag in 0..=8 {
                    assert_eq!(
                        acc.lag_product(lag),
                        tail.lag_product(lag),
                        "window {window} chunk {chunk} lag {lag}"
                    );
                }
                assert_eq!(
                    acc.autocorrelation(Bias::Unbiased).unwrap(),
                    tail.autocorrelation(8, Bias::Unbiased).unwrap(),
                );
                assert_eq!(
                    acc.normalized_autocorrelation().unwrap(),
                    tail.normalized_autocorrelation(8).unwrap(),
                );
            }
        }
    }

    #[test]
    fn sliding_window_edge_semantics() {
        assert!(
            SlidingLagAccumulator::new(8, 8).is_err(),
            "window too short"
        );
        let mut acc = SlidingLagAccumulator::new(4, 32).unwrap();
        assert!(acc.is_empty());
        assert!(acc.retained_range().is_none());
        assert!(acc.autocorrelation(Bias::Biased).is_err(), "empty");
        acc.push(&pseudo_stream(3, 1));
        assert!(acc.autocorrelation(Bias::Biased).is_err(), "len <= max_lag");
        acc.push(&pseudo_stream(40, 2));
        assert_eq!(acc.len(), 32);
        assert_eq!(acc.window_bits(), 32);
        assert_eq!(acc.max_lag(), 4);
        assert!(acc.autocorrelation(Bias::Biased).is_ok());
        assert_eq!(acc.lag_product(5), None, "beyond max_lag");
    }

    #[test]
    fn forgetting_lags_are_chunk_invariant_bitwise() {
        let whole = pseudo_stream(4_096, 51);
        let bits: Vec<bool> = whole.iter().collect();
        let mut reference = ForgettingLagAccumulator::new(8, 512, 0.75).unwrap();
        reference.push(&whole);
        let want = reference.autocorrelation(Bias::Biased).unwrap();
        for chunk in [1usize, 63, 512, 513, 777] {
            let mut acc = ForgettingLagAccumulator::new(8, 512, 0.75).unwrap();
            for c in bits.chunks(chunk) {
                acc.push(&c.iter().copied().collect::<Bitstream>());
            }
            assert_eq!(acc.blocks_seen(), reference.blocks_seen());
            for lag in 0..=8 {
                assert_eq!(
                    acc.lag_product(lag).map(f64::to_bits),
                    reference.lag_product(lag).map(f64::to_bits),
                    "chunk {chunk} lag {lag}"
                );
            }
            let got = acc.autocorrelation(Bias::Biased).unwrap();
            let as_bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(as_bits(&got), as_bits(&want), "chunk {chunk}");
        }
    }

    #[test]
    fn forgetting_single_block_matches_batch() {
        let block = pseudo_stream(512, 61);
        let mut acc = ForgettingLagAccumulator::new(8, 512, 0.5).unwrap();
        acc.push(&block);
        assert_eq!(acc.blocks_seen(), 1);
        assert_eq!(acc.effective_blocks(), 1.0);
        for bias in [Bias::Biased, Bias::Unbiased] {
            assert_eq!(
                acc.autocorrelation(bias).unwrap(),
                block.autocorrelation(8, bias).unwrap(),
            );
        }
    }

    #[test]
    fn forgetting_validation_and_depth() {
        assert!(ForgettingLagAccumulator::new(4, 0, 0.5).is_err());
        assert!(ForgettingLagAccumulator::new(4, 64, 0.0).is_err());
        assert!(ForgettingLagAccumulator::new(4, 64, 1.0).is_err());
        let mut acc = ForgettingLagAccumulator::new(4, 64, 0.5).unwrap();
        assert_eq!(acc.effective_blocks(), 0.0);
        assert!(acc.autocorrelation(Bias::Biased).is_err(), "no block yet");
        acc.push(&pseudo_stream(64 * 50, 3));
        let depth = acc.effective_blocks();
        let asymptote = (1.0 + 0.5) / (1.0 - 0.5);
        assert!((depth - asymptote).abs() < 1e-6, "depth {depth}");
        assert_eq!(acc.block_bits(), 64);
        assert_eq!(acc.lambda(), 0.5);
    }

    #[test]
    fn matches_float_reference_on_expanded_stream() {
        let whole = pseudo_stream(2_000, 33);
        let mut acc = StreamingLagAccumulator::new(8);
        let bits: Vec<bool> = whole.iter().collect();
        for c in bits.chunks(131) {
            acc.push(&c.iter().copied().collect::<Bitstream>());
        }
        let float_ref =
            nfbist_dsp::correlation::autocorrelation(&whole.to_bipolar(), 8, Bias::Biased).unwrap();
        assert_eq!(acc.autocorrelation(Bias::Biased).unwrap(), float_ref);
    }
}
