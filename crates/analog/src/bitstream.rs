//! Compact storage for 1-bit digitizer output.
//!
//! The SoC BIST stores comparator output in on-chip memory; one bit per
//! sample is the whole point of the low-cost digitizer (paper §4.3), so
//! the container is bit-packed and reports its memory footprint.

/// A packed record of comparator decisions.
///
/// Bits expand to `±1.0` samples for DSP processing via
/// [`Bitstream::to_bipolar`].
///
/// # Examples
///
/// ```
/// use nfbist_analog::bitstream::Bitstream;
///
/// let bits: Bitstream = [true, false, true].into_iter().collect();
/// assert_eq!(bits.len(), 3);
/// assert_eq!(bits.to_bipolar(), vec![1.0, -1.0, 1.0]);
/// assert_eq!(bits.ones(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitstream {
    words: Vec<u64>,
    len: usize,
}

impl Bitstream {
    /// Creates an empty bitstream.
    pub fn new() -> Self {
        Bitstream::default()
    }

    /// Creates an empty bitstream with capacity for `n` bits.
    pub fn with_capacity(n: usize) -> Self {
        Bitstream {
            words: Vec::with_capacity(n.div_ceil(64)),
            len: 0,
        }
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        let word_idx = self.len / 64;
        let bit_idx = self.len % 64;
        if word_idx == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word_idx] |= 1u64 << bit_idx;
        }
        self.len += 1;
    }

    /// Number of stored bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no bits are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// Returns `None` past the end.
    pub fn get(&self, i: usize) -> Option<bool> {
        if i >= self.len {
            return None;
        }
        Some(self.words[i / 64] >> (i % 64) & 1 == 1)
    }

    /// Count of `true` bits.
    pub fn ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of `true` bits (0.5 for an unbiased comparator looking
    /// at zero-mean noise).
    ///
    /// Returns NaN for an empty stream.
    pub fn duty(&self) -> f64 {
        self.ones() as f64 / self.len as f64
    }

    /// Expands to `±1.0` samples (`true → +1`).
    pub fn to_bipolar(&self) -> Vec<f64> {
        (0..self.len)
            .map(|i| {
                if self.get(i).unwrap_or(false) {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect()
    }

    /// Expands to `0.0 / 1.0` samples.
    pub fn to_unipolar(&self) -> Vec<f64> {
        (0..self.len)
            .map(|i| {
                if self.get(i).unwrap_or(false) {
                    1.0
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Memory footprint of the packed representation in bytes.
    ///
    /// The SoC resource accountant uses this to budget acquisitions.
    pub fn memory_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Iterates over the bits.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            stream: self,
            pos: 0,
        }
    }
}

impl FromIterator<bool> for Bitstream {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut bs = Bitstream::with_capacity(iter.size_hint().0);
        for b in iter {
            bs.push(b);
        }
        bs
    }
}

impl Extend<bool> for Bitstream {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        for b in iter {
            self.push(b);
        }
    }
}

/// Iterator over the bits of a [`Bitstream`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    stream: &'a Bitstream,
    pos: usize,
}

impl Iterator for Iter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        let b = self.stream.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.stream.len - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

impl<'a> IntoIterator for &'a Bitstream {
    type Item = bool;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut bs = Bitstream::new();
        assert!(bs.is_empty());
        for i in 0..130 {
            bs.push(i % 3 == 0);
        }
        assert_eq!(bs.len(), 130);
        for i in 0..130 {
            assert_eq!(bs.get(i), Some(i % 3 == 0), "bit {i}");
        }
        assert_eq!(bs.get(130), None);
    }

    #[test]
    fn ones_and_duty() {
        let bs: Bitstream = [true, true, false, false].into_iter().collect();
        assert_eq!(bs.ones(), 2);
        assert_eq!(bs.duty(), 0.5);
        assert!(Bitstream::new().duty().is_nan());
    }

    #[test]
    fn bipolar_and_unipolar_expansion() {
        let bs: Bitstream = [true, false].into_iter().collect();
        assert_eq!(bs.to_bipolar(), vec![1.0, -1.0]);
        assert_eq!(bs.to_unipolar(), vec![1.0, 0.0]);
    }

    #[test]
    fn memory_footprint_is_one_bit_per_sample() {
        let bs: Bitstream = (0..1_000_000).map(|i| i % 2 == 0).collect();
        // 10⁶ bits ≈ 125 kB — the paper's full acquisition fits in
        // modest SoC memory.
        assert_eq!(bs.memory_bytes(), 1_000_000_usize.div_ceil(64) * 8);
        assert!(bs.memory_bytes() < 126_000);
    }

    #[test]
    fn iteration() {
        let bits = [true, false, true, true];
        let bs: Bitstream = bits.into_iter().collect();
        let collected: Vec<bool> = bs.iter().collect();
        assert_eq!(collected, bits);
        assert_eq!(bs.iter().len(), 4);
        let from_ref: Vec<bool> = (&bs).into_iter().collect();
        assert_eq!(from_ref, bits);
    }

    #[test]
    fn extend_appends() {
        let mut bs: Bitstream = [true].into_iter().collect();
        bs.extend([false, true]);
        assert_eq!(bs.to_bipolar(), vec![1.0, -1.0, 1.0]);
    }

    #[test]
    fn word_boundary_crossing() {
        let mut bs = Bitstream::with_capacity(65);
        for _ in 0..64 {
            bs.push(false);
        }
        bs.push(true);
        assert_eq!(bs.get(64), Some(true));
        assert_eq!(bs.ones(), 1);
    }
}
