use std::fmt;

/// Error type for the analog simulation crate.
///
/// # Examples
///
/// ```
/// use nfbist_analog::source::SineSource;
///
/// let err = SineSource::new(-1.0, 1.0).unwrap_err();
/// assert!(err.to_string().contains("frequency"));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AnalogError {
    /// A physical parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable constraint description.
        reason: &'static str,
    },
    /// Two buffers that must align had different lengths.
    LengthMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
        /// The operation that failed.
        context: &'static str,
    },
    /// An empty buffer was supplied where samples are required.
    EmptyInput {
        /// The operation that failed.
        context: &'static str,
    },
    /// A DSP-layer operation failed.
    Dsp(nfbist_dsp::DspError),
}

impl fmt::Display for AnalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalogError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            AnalogError::LengthMismatch {
                expected,
                actual,
                context,
            } => write!(
                f,
                "length mismatch in {context}: expected {expected}, got {actual}"
            ),
            AnalogError::EmptyInput { context } => write!(f, "empty input in {context}"),
            AnalogError::Dsp(e) => write!(f, "dsp error: {e}"),
        }
    }
}

impl std::error::Error for AnalogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalogError::Dsp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nfbist_dsp::DspError> for AnalogError {
    fn from(e: nfbist_dsp::DspError) -> Self {
        AnalogError::Dsp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = AnalogError::InvalidParameter {
            name: "sigma",
            reason: "must be non-negative",
        };
        assert!(e.to_string().contains("sigma"));
        let e = AnalogError::from(nfbist_dsp::DspError::EmptyInput { context: "mean" });
        assert!(e.to_string().contains("dsp error"));
    }

    #[test]
    fn source_chains_dsp_errors() {
        use std::error::Error;
        let e = AnalogError::from(nfbist_dsp::DspError::EmptyInput { context: "mean" });
        assert!(e.source().is_some());
        let e = AnalogError::EmptyInput { context: "x" };
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AnalogError>();
    }
}
