//! Physical constants used by the noise models.

/// Boltzmann constant in joules per kelvin (exact, 2019 SI).
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// IEEE standard reference temperature T₀ for noise figure, in kelvin.
///
/// Paper eq. 4 defines the noise factor against `k·T0·B·G` with
/// `T0 = 290 K`.
pub const T0_KELVIN: f64 = 290.0;

/// Available thermal noise power density `k·T` in watts per hertz at a
/// given temperature.
///
/// # Examples
///
/// ```
/// use nfbist_analog::constants::{thermal_noise_density, T0_KELVIN};
/// // kT at 290 K ≈ 4.004e-21 W/Hz (the famous −174 dBm/Hz).
/// let kt = thermal_noise_density(T0_KELVIN);
/// assert!((kt - 4.0039e-21).abs() < 1e-24);
/// ```
#[inline]
pub fn thermal_noise_density(temperature_kelvin: f64) -> f64 {
    BOLTZMANN * temperature_kelvin
}

/// Available thermal noise power `k·T·B` in watts over a bandwidth.
///
/// # Examples
///
/// ```
/// use nfbist_analog::constants::thermal_noise_power;
/// let p = thermal_noise_power(290.0, 1_000.0);
/// assert!((p - 4.0039e-18).abs() < 1e-21);
/// ```
#[inline]
pub fn thermal_noise_power(temperature_kelvin: f64, bandwidth_hz: f64) -> f64 {
    BOLTZMANN * temperature_kelvin * bandwidth_hz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kt_at_reference_temperature() {
        let kt = thermal_noise_density(T0_KELVIN);
        assert!((kt - 1.380_649e-23 * 290.0).abs() < 1e-30);
    }

    #[test]
    fn ktb_scales_linearly() {
        let p1 = thermal_noise_power(290.0, 1.0);
        let p2 = thermal_noise_power(580.0, 2.0);
        assert!((p2 - 4.0 * p1).abs() < 1e-30);
    }

    #[test]
    fn minus_174_dbm_per_hz() {
        // kT0 expressed in dBm/Hz is the textbook −174.
        let dbm = 10.0 * (thermal_noise_density(T0_KELVIN) / 1e-3).log10();
        assert!((dbm + 174.0).abs() < 0.1, "kT0 = {dbm} dBm/Hz");
    }
}
