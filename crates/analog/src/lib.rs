//! # nfbist-analog — analog signal-level simulation substrate
//!
//! The DATE'05 paper *"Noise Figure Evaluation Using Low Cost BIST"*
//! evaluated its method on a physical prototype: an HP33120A noise
//! generator, a programmable attenuator, a non-inverting amplifier DUT
//! built around four different op-amps, a high-gain post-amplifier and a
//! voltage comparator acting as a 1-bit digitizer. This crate rebuilds
//! that bench as a sampled-signal simulator:
//!
//! * [`units`] / [`constants`] — physical quantities ([`units::Kelvin`],
//!   [`units::Ohms`], …) and the Boltzmann constant / 290 K reference.
//! * [`noise`] — white Gaussian synthesis, Johnson–Nyquist thermal noise,
//!   arbitrary-PSD shaped noise, 1/f noise, and the calibrated hot/cold
//!   [`noise::CalibratedNoiseSource`] the Y-factor method requires.
//! * [`source`] — deterministic waveforms (sine, square with optional
//!   harmonic truncation, arbitrary tables) for the reference input.
//! * [`opamp`] — datasheet-style op-amp noise models (`en`, `in`, 1/f
//!   corners) with the paper's four parts built in.
//! * [`circuits`] — the non-inverting amplifier DUT with full
//!   Motchenbacher-style noise analysis (expected noise figure), and
//!   Friis cascades.
//! * [`component`] — behavioural blocks: amplifiers with finite bandwidth
//!   and saturation, programmable attenuators, summers, analog muxes.
//! * [`converter`] — the 1-bit comparator digitizer (the paper's BIST
//!   cell), a conventional N-bit ADC used as a baseline, and the
//!   [`converter::Digitizer`] trait + [`converter::AdcDigitizer`]
//!   front-end that let the measurement layer drive either
//!   interchangeably.
//! * [`dut`] — the [`dut::Dut`] trait every measurable circuit
//!   implements (gain, input-referred noise model, noisy transfer
//!   simulation), including [`dut::DutChain`] cascades.
//! * [`fault`] — parametric fault injection: [`fault::FaultyDut`]
//!   composes analog defects (input-path loss, gain drift, excess
//!   noise, lost bandwidth, interference) onto any `Dut`, and
//!   [`fault::FaultyDigitizer`] composes stuck/flipped-cell defects
//!   onto any front-end's 1-bit stream — the raw material of
//!   defect-coverage campaigns.
//! * [`wafer`] — fleet-scale population synthesis: wafer-disc die
//!   maps, seeded per-die process variation, spatially correlated
//!   defect models (edge rings, cluster blobs) and the [`wafer::Lot`]
//!   type whose every die is a pure function of `(lot seed, index)`.
//! * [`signal`] / [`bitstream`] — sampled-signal and bit-record
//!   containers.
//!
//! ## Example: digitize noise against a sine reference
//!
//! ```
//! use nfbist_analog::converter::OneBitDigitizer;
//! use nfbist_analog::noise::WhiteNoise;
//! use nfbist_analog::source::{SineSource, Waveform};
//!
//! # fn main() -> Result<(), nfbist_analog::AnalogError> {
//! let fs = 100_000.0;
//! let n = 4096;
//! let mut noise = WhiteNoise::new(1.0, 7)?; // σ = 1 V, seed 7
//! let noise_v = noise.generate(n);
//! let reference = SineSource::new(3_000.0, 0.15)?.generate(n, fs)?;
//!
//! let digitizer = OneBitDigitizer::ideal();
//! let bits = digitizer.digitize(&noise_v, &reference)?;
//! assert_eq!(bits.len(), n);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bitstream;
pub mod circuits;
pub mod component;
pub mod constants;
pub mod converter;
pub mod dut;
pub mod fault;
pub mod noise;
pub mod opamp;
pub mod signal;
pub mod source;
pub mod units;
pub mod wafer;

mod error;

pub use error::AnalogError;
