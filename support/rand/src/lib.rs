//! A minimal, dependency-free `rand` shim.
//!
//! The container this workspace builds in has no network access, so the
//! real `rand` crate cannot be fetched. This local crate provides the
//! subset the workspace uses — [`rngs::StdRng`], [`SeedableRng`] and
//! [`Rng`] with `gen::<f64>()`/`gen::<u64>()`/`gen::<bool>()` — with
//! the same call-site syntax. The generator is xoshiro256++ seeded via
//! splitmix64; sequences are deterministic per seed (they differ from
//! the real `StdRng`'s ChaCha stream, which is fine: the workspace
//! relies on determinism, not on a specific stream).

#![forbid(unsafe_code)]

/// Sources of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Types drawable from an RNG via [`Rng::gen`] (stand-in for the real
/// crate's `Standard` distribution).
pub trait StandardDraw: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardDraw for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardDraw for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl StandardDraw for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardDraw for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardDraw for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing sampling interface (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of `T`.
    fn gen<T: StandardDraw>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a 64-bit seed (mirror of
/// `rand::SeedableRng`, reduced to the one constructor the workspace
/// uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with splitmix64
    /// seeding.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(123);
        let mut b = StdRng::seed_from_u64(123);
        let mut c = StdRng::seed_from_u64(124);
        let xs: Vec<u64> = (0..64).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_uniform_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        let xs: Vec<f64> = (0..100_000).map(|_| rng.gen::<f64>()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        // Second moment of U(0,1) is 1/3.
        let m2 = xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64;
        assert!((m2 - 1.0 / 3.0).abs() < 0.01, "m2 {m2}");
    }

    #[test]
    fn bool_is_balanced() {
        let mut rng = StdRng::seed_from_u64(9);
        let ones = (0..100_000).filter(|_| rng.gen::<bool>()).count();
        assert!((ones as f64 / 100_000.0 - 0.5).abs() < 0.01);
    }
}
