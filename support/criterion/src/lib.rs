//! A minimal, dependency-free benchmarking shim.
//!
//! The container this workspace builds in has no network access, so the
//! real `criterion` crate cannot be fetched. This local crate provides
//! the subset of criterion's API the workspace's benches use —
//! `Criterion`, benchmark groups, `bench_function`/`bench_with_input`,
//! `Throughput`, `BenchmarkId`, `black_box` and the
//! `criterion_group!`/`criterion_main!` macros — with wall-clock
//! measurement and plain-text reporting. Statistical analysis, plots
//! and HTML reports are intentionally out of scope; the benches would
//! compile unchanged against the real crate.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark (split across samples).
const TARGET_TIME: Duration = Duration::from_millis(400);

/// Work-rate annotation for a benchmark, reported as a derived
/// elements/bytes-per-second figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per
    /// iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter display.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Creates an id from the parameter display alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing harness handed to the benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly, recording the mean wall-clock time per
    /// iteration. One warm-up call calibrates the iteration count so
    /// the measured phase lasts roughly `TARGET_TIME`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));

        let iters = (TARGET_TIME.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let total = start.elapsed();
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }

    /// Mean time per iteration from the last [`Bencher::iter`] run, in
    /// nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        self.mean_ns
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let mut line = format!(
        "{name:<40} time: {:>12}  ({} iters)",
        human_time(bencher.mean_ns),
        bencher.iters
    );
    if bencher.mean_ns > 0.0 {
        match throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / (bencher.mean_ns * 1e-9);
                line.push_str(&format!("  thrpt: {:.3} Melem/s", rate / 1e6));
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 / (bencher.mean_ns * 1e-9);
                line.push_str(&format!("  thrpt: {:.3} MiB/s", rate / (1024.0 * 1024.0)));
            }
            None => {}
        }
    }
    println!("{line}");
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by wall
    /// clock, not by sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report(
            &format!("{}/{}", self.name, id.id),
            &bencher,
            self.throughput,
        );
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        report(
            &format!("{}/{}", self.name, id.id),
            &bencher,
            self.throughput,
        );
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report(&id.id, &bencher, None);
        self
    }
}

/// Mirror of `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirror of `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.mean_ns() > 0.0);
    }

    #[test]
    fn ids_and_groups_compose() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(10)
            .throughput(Throughput::Elements(100))
            .bench_function(BenchmarkId::new("sum", 100), |b| {
                b.iter(|| (0..100u64).sum::<u64>())
            });
        g.bench_with_input(BenchmarkId::new("sum_input", 7), &7u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
    }

    #[test]
    fn human_time_units() {
        assert!(human_time(12.0).ends_with("ns"));
        assert!(human_time(12_000.0).ends_with("µs"));
        assert!(human_time(12_000_000.0).ends_with("ms"));
        assert!(human_time(12e9).ends_with(" s"));
    }
}
