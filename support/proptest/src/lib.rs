//! A minimal, dependency-free property-testing shim.
//!
//! The container this workspace builds in has no network access, so the
//! real `proptest` crate cannot be fetched. This local crate implements
//! the small subset of proptest's API that the workspace's test suites
//! use — deterministic random generation from range/`any`/tuple/vec
//! strategies, `prop_map` adapters, the `proptest!` macro, and the
//! `prop_assert*`/`prop_assume!` macros — with identical call-site
//! syntax, so the tests would compile unchanged against the real crate.
//!
//! Shrinking is intentionally not implemented: a failing case panics
//! with the generating seed so it can be reproduced, which is enough
//! for CI.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Configuration and per-test case driving.

    /// Mirror of `proptest::test_runner::Config` (the parts we use).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case did not complete.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject,
        /// A `prop_assert*` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure with a rendered message.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }

        /// Builds an input rejection.
        pub fn reject() -> Self {
            TestCaseError::Reject
        }

        /// `true` for `prop_assume!` rejections.
        pub fn is_rejection(&self) -> bool {
            matches!(self, TestCaseError::Reject)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Reject => write!(f, "input rejected by prop_assume!"),
                TestCaseError::Fail(msg) => write!(f, "{msg}"),
            }
        }
    }

    /// Deterministic xorshift64* generator; seeded per test from the
    /// test name so runs are reproducible without any global state.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator (zero is remapped to a fixed constant).
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: if seed == 0 {
                    0x9E37_79B9_7F4A_7C15
                } else {
                    seed
                },
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Drives the cases of one property test.
    #[derive(Debug)]
    pub struct TestRunner {
        cases: u32,
        rng: TestRng,
    }

    impl TestRunner {
        /// Creates a runner for a named test (the name seeds the RNG).
        pub fn new(config: ProptestConfig, name: &str) -> Self {
            // FNV-1a over the test name: stable across runs and rustc
            // versions, unique enough per test.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRunner {
                cases: config.cases,
                rng: TestRng::new(h),
            }
        }

        /// Number of cases to attempt.
        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// The case RNG.
        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }

        /// Current RNG state, reported on failure for reproduction.
        pub fn state(&self) -> u64 {
            self.rng.state
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (mirror of proptest's
        /// `prop_map`).
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The `prop_map` adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end - self.start) as u64;
                    if span == 0 {
                        self.start
                    } else {
                        self.start + (rng.next_u64() % span) as $t
                    }
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i64 - self.start as i64) as u64;
                    if span == 0 {
                        self.start
                    } else {
                        (self.start as i64 + (rng.next_u64() % span) as i64) as $t
                    }
                }
            }
        )*};
    }

    signed_range_strategy!(isize, i64, i32, i16, i8);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Types with a canonical "any value" strategy.
    pub trait ArbitraryValue: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitraryValue for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl ArbitraryValue for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl ArbitraryValue for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }

    impl ArbitraryValue for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl ArbitraryValue for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, wide dynamic range.
            let mag = (rng.next_f64() * 600.0 - 300.0).exp2();
            if rng.next_u64() & 1 == 1 {
                mag
            } else {
                -mag
            }
        }
    }

    /// The `any::<T>()` strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Mirror of `proptest::prelude::any`.
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }

    /// Mirror of `proptest::strategy::Just`.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification accepted by [`vec()`]: an exact `usize` or
    /// a half-open `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    /// Strategy generating `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::strategy::{any, Any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Mirrors `proptest::proptest!` for the
/// `fn name(binding in strategy, ...) { body }` form with an optional
/// leading `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner =
                    $crate::test_runner::TestRunner::new(config, stringify!($name));
                for _case in 0..runner.cases() {
                    let seed = runner.state();
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> = {
                        $(
                            let $arg = $crate::strategy::Strategy::generate(&$strat, runner.rng());
                        )+
                        #[allow(unreachable_code)]
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })()
                    };
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(e) if e.is_rejection() => {}
                        ::std::result::Result::Err(e) => panic!(
                            "property '{}' failed at case {} (rng state {:#x}): {}",
                            stringify!($name),
                            _case,
                            seed,
                            e
                        ),
                    }
                }
            }
        )*
    };
}

/// Mirror of `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Mirror of `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($lhs),
            stringify!($rhs),
            lhs,
            rhs
        );
    }};
}

/// Mirror of `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}

/// Mirror of `proptest::prop_assume!`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1_000 {
            let x = Strategy::generate(&(1.5f64..9.25), &mut rng);
            assert!((1.5..9.25).contains(&x));
            let n = Strategy::generate(&(3usize..17), &mut rng);
            assert!((3..17).contains(&n));
        }
    }

    #[test]
    fn vec_strategy_length_in_range() {
        let mut rng = TestRng::new(9);
        for _ in 0..200 {
            let v = Strategy::generate(&prop::collection::vec(0.0f64..1.0, 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let v = Strategy::generate(&prop::collection::vec(any::<bool>(), 9), &mut rng);
        assert_eq!(v.len(), 9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(x in 0.0f64..1.0, (a, b) in (1u32..5, 1u32..5)) {
            prop_assume!(x != 0.5);
            prop_assert!(x < 1.0, "x {x}");
            prop_assert_eq!(a * b, b * a);
        }
    }
}
