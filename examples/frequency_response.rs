//! The BIST cell's second trick (paper §7): measuring an amplifier's
//! frequency response — and its −3 dB corner — with the same 1-bit
//! comparator, using the DUT's own noise as dither and a Goertzel
//! readout of the bitstream.
//!
//! Run with `cargo run --release --example frequency_response`.

use nfbist_analog::component::Amplifier;
use nfbist_soc::freqresp::FrequencyResponseTester;
use nfbist_soc::report::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fs = 40_000.0;
    let true_corner = 2_500.0;

    // The DUT: a gain-of-4 amplifier with a one-pole bandwidth limit.
    let dut = Amplifier::ideal(4.0)?.with_bandwidth(true_corner, fs)?;

    // Log-spaced sweep from 200 Hz to 10 kHz; the first point anchors
    // the normalization in the passband.
    let frequencies: Vec<f64> = (0..12)
        .map(|i| 200.0 * 10f64.powf(i as f64 * 1.7 / 11.0))
        .collect();
    let tester = FrequencyResponseTester::new(fs, 150_000, 0.25, 1.0, frequencies, 7)?;

    let m = tester.measure(&dut)?;

    let mut table = Table::new(vec![
        "Frequency (Hz)",
        "Relative gain (dB)",
        "One-pole model (dB)",
    ]);
    for (f, g) in &m.response {
        let model = -10.0 * (1.0 + (f / true_corner) * (f / true_corner)).log10()
            + 10.0 * (1.0 + (m.response[0].0 / true_corner).powi(2)).log10();
        table.row(vec![
            format!("{f:.0}"),
            format!("{g:+.2}"),
            format!("{model:+.2}"),
        ]);
    }
    print!("{table}");
    match m.corner_hz {
        Some(corner) => println!(
            "\nmeasured -3 dB corner: {corner:.0} Hz (true {true_corner:.0} Hz, {:+.1} %)",
            (corner - true_corner) / true_corner * 100.0
        ),
        None => println!("\nsweep did not cross -3 dB"),
    }
    println!(
        "the same comparator that measured noise figure just measured bandwidth —\n\
         the paper's §7 claim, reproduced."
    );
    Ok(())
}
