//! Quickstart: measure a noise power ratio — and a noise figure — with
//! the 1-bit BIST digitizer.
//!
//! Run with `cargo run --release --example quickstart`.

use nfbist_analog::converter::OneBitDigitizer;
use nfbist_analog::noise::WhiteNoise;
use nfbist_analog::source::{SineSource, Waveform};
use nfbist_core::estimator::NfMeasurement;
use nfbist_core::power_ratio::OneBitPowerRatio;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- The scene: a DUT with F = 4 (NF ≈ 6 dB) observed with a
    //      10:1 hot/cold noise source (Th = 2900 K, Tc = 290 K).
    let fs = 20_000.0;
    let n = 1 << 19;
    let f_true = nfbist_core::figure::NoiseFactor::new(4.0)?;
    let y_true = nfbist_core::yfactor::expected_y(f_true, 2_900.0, 290.0)?;
    println!("ground truth: F = 4 (6.02 dB), expected Y = {y_true:.4}");

    // ---- Analog side: hot/cold noise records with that power ratio,
    //      plus a 3 kHz reference sine at 30 % of the cold RMS.
    let sigma_cold = 0.5;
    let sigma_hot = sigma_cold * y_true.sqrt();
    let hot = WhiteNoise::new(sigma_hot, 1)?.generate(n);
    let cold = WhiteNoise::new(sigma_cold, 2)?.generate(n);
    let reference = SineSource::new(3_000.0, 0.3 * sigma_cold)?.generate(n, fs)?;

    // ---- The BIST cell: one comparator.
    let digitizer = OneBitDigitizer::ideal();
    let bits_hot = digitizer.digitize(&hot, &reference)?;
    let bits_cold = digitizer.digitize(&cold, &reference)?;
    println!(
        "stored {} + {} bytes of 1-bit records",
        bits_hot.memory_bytes(),
        bits_cold.memory_bytes()
    );

    // ---- The DSP side: reference-normalized power ratio, then the
    //      Y-factor equation.
    let estimator = OneBitPowerRatio::new(fs, 4_096, 3_000.0, (100.0, 1_500.0))?;
    let ratio = estimator.estimate(&bits_hot, &bits_cold)?;
    let nf = NfMeasurement::from_y(ratio.ratio, 2_900.0, 290.0)?;

    println!("measured: {nf}");
    println!(
        "error vs truth: {:+.2} dB",
        nf.figure.db() - f_true.to_figure().db()
    );
    Ok(())
}
