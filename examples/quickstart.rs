//! Quickstart: measure a noise figure with one `MeasurementSession`,
//! then swap each axis — DUT, digitizer, estimator — without touching
//! the rest of the bench.
//!
//! Run with `cargo run --release --example quickstart`.

use nfbist_analog::circuits::NonInvertingAmplifier;
use nfbist_analog::converter::AdcDigitizer;
use nfbist_analog::opamp::OpampModel;
use nfbist_analog::units::Ohms;
use nfbist_core::power_ratio::PsdRatioEstimator;
use nfbist_soc::session::MeasurementSession;
use nfbist_soc::setup::BistSetup;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- The paper's bench (Fig. 11): TL081 non-inverting DUT,
    //      1-bit comparator cell, 1-bit reference-normalized estimator.
    let setup = BistSetup::quick(42);
    let dut =
        || NonInvertingAmplifier::new(OpampModel::tl081(), Ohms::new(10_000.0), Ohms::new(100.0));

    let one_bit = MeasurementSession::new(setup.clone())?
        .dut(dut()?)
        .repeats(2)
        .run()?;
    println!("1-bit BIST     : {one_bit}");
    println!(
        "                 record memory: {} bytes (1 bit/sample)",
        one_bit.usage.record_bytes
    );

    // ---- Same session, conventional acquisition (Fig. 4): ADC behind
    //      a mux, PSD band-power estimator, no reference needed.
    let adc = MeasurementSession::new(setup.clone())?
        .dut(dut()?)
        .digitizer(AdcDigitizer::new(12)?)
        .estimator(PsdRatioEstimator::new(
            setup.sample_rate,
            setup.nfft,
            setup.noise_band,
        )?)
        .run()?;
    println!("ADC baseline   : {adc}");
    println!(
        "                 record memory: {} bytes (12 bits/sample)",
        adc.usage.record_bytes
    );

    // ---- The headline comparison, reproduced in two lines of diff.
    println!(
        "\nagreement: {:.2} dB (1-bit) vs {:.2} dB (ADC), expected {:.2} dB",
        one_bit.nf.figure.db(),
        adc.nf.figure.db(),
        one_bit.expected_nf_db
    );
    println!(
        "memory ratio: ADC stores {}x more per record",
        adc.usage.record_bytes / one_bit.usage.record_bytes
    );
    Ok(())
}
