//! Why the paper picks the Y-factor method over the direct method:
//! sensitivity to conditioning-amplifier gain error (paper §4.1 vs
//! §4.2, eqs. 10–11).
//!
//! The direct method divides the measured output power by the
//! *believed* gain, so any gain drift lands straight in the NF
//! estimate. The Y-factor ratio contains the (unknown, drifted) gain in
//! both numerator and denominator and cancels it.
//!
//! Run with `cargo run --release --example yfactor_vs_direct`.

use nfbist_analog::constants::BOLTZMANN;
use nfbist_core::direct;
use nfbist_core::figure::NoiseFactor;
use nfbist_core::yfactor;
use nfbist_soc::report::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let f_true = NoiseFactor::new(2.0)?; // a 3 dB LNA
    let nf_true = f_true.to_figure().db();
    let bandwidth = 1_000.0;
    let believed_power_gain = 1e8;
    let (th, tc) = (2_900.0, 290.0);

    println!("DUT truth: NF = {nf_true:.2} dB; sweeping conditioning-amplifier gain error\n");
    let mut table = Table::new(vec![
        "Gain error (%)",
        "Direct method NF (dB)",
        "Direct error (dB)",
        "Y-factor NF (dB)",
        "Y-factor error (dB)",
    ]);

    for gain_error in [-0.10, -0.05, -0.02, 0.0, 0.02, 0.05, 0.10] {
        let actual_power_gain = believed_power_gain * (1.0 + gain_error) * (1.0 + gain_error);

        // Direct method: measures F·kT0·B·G_actual, divides by
        // kT0·B·G_believed (eq. 10).
        let measured_power = f_true.value() * BOLTZMANN * 290.0 * bandwidth * actual_power_gain;
        let direct_f = direct::noise_factor_direct(measured_power, bandwidth, believed_power_gain)?;
        let direct_nf = direct_f.to_figure().db();

        // Y-factor: both hot and cold powers scale with the actual
        // gain, so Y — and therefore F — is untouched (eq. 11).
        let te = f_true.equivalent_temperature();
        let hot_power = BOLTZMANN * (th + te) * bandwidth * actual_power_gain;
        let cold_power = BOLTZMANN * (tc + te) * bandwidth * actual_power_gain;
        let y = yfactor::y_from_powers(hot_power, cold_power)?;
        let yf_nf = yfactor::noise_factor_from_temperatures(y, th, tc)?
            .to_figure()
            .db();

        table.row(vec![
            format!("{:+.0}", gain_error * 100.0),
            format!("{direct_nf:.3}"),
            format!("{:+.3}", direct_nf - nf_true),
            format!("{yf_nf:.3}"),
            format!("{:+.3}", yf_nf - nf_true),
        ]);
    }
    print!("{table}");
    println!(
        "\nanalytic check: a ±5 % gain error biases the direct method by\n\
         ±{:.2} dB on any DUT, while the Y-factor cancels it exactly.",
        direct::nf_error_db_for_gain_error(0.05)
    );
    Ok(())
}
