//! Sweep the paper's four op-amps through the full prototype
//! measurement session and sweep the source resistance for one of
//! them — the workload behind Table 3, as a library user would script
//! it.
//!
//! Run with `cargo run --release --example opamp_nf_sweep`.

use nfbist_analog::circuits::NonInvertingAmplifier;
use nfbist_analog::opamp::OpampModel;
use nfbist_analog::units::Ohms;
use nfbist_soc::report::Table;
use nfbist_soc::session::MeasurementSession;
use nfbist_soc::setup::BistSetup;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Part 1: the four op-amps, measured end to end through the
    //      same session with only the DUT axis changing.
    let mut table = Table::new(vec!["Opamp", "Expected NF (dB)", "Measured NF (dB)", "Y"]);
    for (i, opamp) in OpampModel::paper_set().into_iter().enumerate() {
        let name = opamp.name().to_string();
        let dut = NonInvertingAmplifier::new(opamp, Ohms::new(10_000.0), Ohms::new(100.0))?;
        let m = MeasurementSession::new(BistSetup::quick(40 + i as u64))?
            .dut(dut)
            .repeats(2)
            .run()?;
        table.row(vec![
            name,
            format!("{:.2}", m.expected_nf_db),
            format!("{:.2}", m.nf.figure.db()),
            format!("{:.3}", m.nf.y),
        ]);
    }
    println!("Four op-amps through the BIST measurement session:\n{table}");

    // ---- Part 2: expected NF vs source resistance for the TL081.
    //      Voltage-noise-dominated amplifiers look quieter against
    //      larger source resistances — the classic noise-matching
    //      curve, straight from the analysis module.
    let dut =
        NonInvertingAmplifier::new(OpampModel::tl081(), Ohms::new(10_000.0), Ohms::new(100.0))?;
    let mut sweep = Table::new(vec!["Rs (Ohm)", "Expected NF (dB)"]);
    for rs in [
        100.0, 300.0, 1_000.0, 3_000.0, 10_000.0, 30_000.0, 100_000.0,
    ] {
        let nf = dut.expected_noise_figure_db(Ohms::new(rs), 100.0, 1_000.0)?;
        sweep.row(vec![format!("{rs:.0}"), format!("{nf:.2}")]);
    }
    println!("TL081 expected NF vs source resistance:\n{sweep}");
    Ok(())
}
