//! Simultaneous noise-figure observation at several analog test points
//! — the SoC observability argument of paper §4.3.
//!
//! A three-stage amplifier chain gets one permanently attached 1-bit
//! digitizer per stage output; a single hot/cold acquisition pair
//! yields the cumulative NF at every point, verifying Friis along the
//! way. The hot/cold acquisitions and the per-point estimates run on
//! the `nfbist-runtime` batch engine — output identical to the
//! sequential `measure_all`, wall clock divided by the core count.
//!
//! Run with `cargo run --release --example multipoint_bist`.

use nfbist_analog::circuits::NonInvertingAmplifier;
use nfbist_analog::dut::Dut;
use nfbist_analog::opamp::OpampModel;
use nfbist_analog::units::Ohms;
use nfbist_runtime::BatchPlan;
use nfbist_soc::multipoint::MultipointBist;
use nfbist_soc::report::Table;
use nfbist_soc::setup::BistSetup;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A realistic front end: quiet low-gain input stage, then two
    // progressively noisier stages. Any `Dut` implementor can sit at
    // any position.
    let stages: Vec<Box<dyn Dut>> = vec![
        Box::new(NonInvertingAmplifier::new(
            OpampModel::op27(),
            Ohms::new(1_000.0),
            Ohms::new(1_000.0),
        )?),
        Box::new(NonInvertingAmplifier::new(
            OpampModel::tl081(),
            Ohms::new(2_200.0),
            Ohms::new(1_000.0),
        )?),
        Box::new(NonInvertingAmplifier::new(
            OpampModel::ca3140(),
            Ohms::new(4_700.0),
            Ohms::new(1_000.0),
        )?),
    ];
    let bist = MultipointBist::new(BistSetup::quick(99), stages)?;
    println!(
        "observing {} test points from one hot/cold acquisition pair\n",
        bist.points()
    );

    let points = BatchPlan::new().run_multipoint(&bist)?;
    let mut table = Table::new(vec![
        "Test point",
        "Expected cumulative NF (dB)",
        "Measured NF (dB)",
        "Y",
    ]);
    for p in &points {
        table.row(vec![
            format!("stage {} output", p.stage),
            format!("{:.2}", p.expected_nf_db),
            format!("{:.2}", p.nf.figure.db()),
            format!("{:.3}", p.nf.y),
        ]);
    }
    print!("{table}");
    println!(
        "\nFriis in action: the cumulative NF grows along the cascade, dominated\n\
         by the first stage — and every point was observed *simultaneously*,\n\
         which a shared-ADC/mux test cannot do."
    );
    Ok(())
}
