#!/usr/bin/env python3
"""Dead-relative-link check over the repository's markdown docs.

Scans README.md, ARCHITECTURE.md and docs/*.md for markdown links and
images, and fails if a relative target does not exist on disk.
External (http/https/mailto) and pure-anchor links are ignored;
fragments are stripped before the existence check.

Run from the repository root: `python3 scripts/check_doc_links.py`.
"""

import pathlib
import re
import sys

LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")

def targets(md: pathlib.Path):
    # Strip fenced code blocks: `](` inside them is code, not a link.
    text = re.sub(r"```.*?```", "", md.read_text(encoding="utf-8"), flags=re.S)
    for m in LINK.finditer(text):
        yield m.group(1)

def main() -> int:
    root = pathlib.Path(__file__).resolve().parent.parent
    docs = [root / "README.md", root / "ARCHITECTURE.md"]
    docs += sorted((root / "docs").glob("*.md"))
    broken = []
    for md in docs:
        if not md.exists():
            broken.append(f"{md}: file listed for checking does not exist")
            continue
        for raw in targets(md):
            if raw.startswith(("http://", "https://", "mailto:")):
                continue
            target = raw.split("#", 1)[0]
            if not target:  # pure in-page anchor
                continue
            resolved = (md.parent / target).resolve()
            if not resolved.exists():
                broken.append(f"{md.relative_to(root)}: broken link -> {raw}")
    for b in broken:
        print(b, file=sys.stderr)
    if broken:
        print(f"{len(broken)} broken relative link(s)", file=sys.stderr)
        return 1
    print(f"doc links OK across {len(docs)} file(s)")
    return 0

if __name__ == "__main__":
    sys.exit(main())
