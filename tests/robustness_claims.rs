//! Robustness claims from the paper's §6 ("Analysis"), tested
//! end-to-end:
//!
//! * a *low-quality* reference generator is fine — the normalization
//!   tracks only the fundamental, so harmonic distortion is harmless;
//! * the one property that matters is a *constant amplitude* of the
//!   main component — amplitude drift degrades the estimate;
//! * out-of-band interference (mains-style hum) does not disturb the
//!   in-band ratio;
//! * a slightly off-frequency reference is tolerated by the tracker's
//!   search window.

use nfbist_analog::component::sum_signals;
use nfbist_analog::converter::OneBitDigitizer;
use nfbist_analog::noise::WhiteNoise;
use nfbist_analog::source::{SineSource, SquareSource, Waveform};
use nfbist_core::power_ratio::OneBitPowerRatio;

const FS: f64 = 20_000.0;
const N: usize = 1 << 18;
const TRUE_RATIO: f64 = 2.0;

/// Builds hot/cold noise with the canonical 2:1 ratio.
fn noise_pair(seed: u64) -> (Vec<f64>, Vec<f64>) {
    let sigma_cold = 1.0;
    let sigma_hot = sigma_cold * TRUE_RATIO.sqrt();
    (
        WhiteNoise::new(sigma_hot, seed).expect("noise").generate(N),
        WhiteNoise::new(sigma_cold, seed ^ 0xBEEF)
            .expect("noise")
            .generate(N),
    )
}

fn estimate_with_reference(reference: &[f64], seed: u64, ref_freq: f64) -> f64 {
    let (hot, cold) = noise_pair(seed);
    let d = OneBitDigitizer::ideal();
    let bh = d.digitize(&hot, reference).expect("digitize");
    let bc = d.digitize(&cold, reference).expect("digitize");
    OneBitPowerRatio::new(FS, 2_048, ref_freq, (100.0, 1_500.0))
        .expect("estimator")
        .estimate_bits(&bh, &bc)
        .expect("estimate")
        .ratio
}

#[test]
fn distorted_square_reference_works_like_a_clean_sine() {
    // §6: "this would enable the use of low quality reference
    // waveforms, as the harmonics are not used in the normalization
    // process". Compare a clean sine against a 3-harmonic band-limited
    // square (a heavily distorted "sine") of the same fundamental.
    let clean = SineSource::new(3_000.0, 0.3)
        .expect("sine")
        .generate(N, FS)
        .expect("generate");
    // Fundamental amplitude 4A/π·(…), choose the level so the
    // fundamental matches the sine's 0.3.
    let level = 0.3 * std::f64::consts::PI / 4.0;
    let distorted = SquareSource::new(3_000.0, level)
        .expect("square")
        .with_harmonics(3)
        .expect("harmonics")
        .generate(N, FS)
        .expect("generate");

    let r_clean = estimate_with_reference(&clean, 1, 3_000.0);
    let r_distorted = estimate_with_reference(&distorted, 1, 3_000.0);
    assert!(
        (r_clean - TRUE_RATIO).abs() / TRUE_RATIO < 0.12,
        "clean {r_clean}"
    );
    assert!(
        (r_distorted - TRUE_RATIO).abs() / TRUE_RATIO < 0.12,
        "distorted {r_distorted}"
    );
    // The two estimates agree closely: harmonics did not matter.
    assert!((r_clean - r_distorted).abs() / TRUE_RATIO < 0.10);
}

#[test]
fn amplitude_drift_between_acquisitions_biases_the_ratio() {
    // §6: "the amplitude of the main component, however, should be
    // constant". Emulate a generator that drifted 20 % between the hot
    // and cold acquisitions: the normalization mistakes the drift for
    // a noise-level change, biasing Y by the drift squared.
    let (hot, cold) = noise_pair(2);
    let ref_hot = SineSource::new(3_000.0, 0.30)
        .expect("sine")
        .generate(N, FS)
        .expect("generate");
    let ref_cold = SineSource::new(3_000.0, 0.36) // +20 % drift
        .expect("sine")
        .generate(N, FS)
        .expect("generate");
    let d = OneBitDigitizer::ideal();
    let bh = d.digitize(&hot, &ref_hot).expect("digitize");
    let bc = d.digitize(&cold, &ref_cold).expect("digitize");
    let est = OneBitPowerRatio::new(FS, 2_048, 3_000.0, (100.0, 1_500.0))
        .expect("estimator")
        .estimate_bits(&bh, &bc)
        .expect("estimate");
    // Expected bias: the cold line is 1.2× too strong in amplitude, so
    // the cold spectrum is scaled down by an extra 1.44 and Y inflates
    // by ≈1.44.
    let biased_expectation = TRUE_RATIO * 1.44;
    assert!(
        (est.ratio - biased_expectation).abs() / biased_expectation < 0.12,
        "ratio {} (unbiased would be {TRUE_RATIO})",
        est.ratio
    );
}

#[test]
fn out_of_band_hum_does_not_disturb_the_ratio() {
    // A strong 60 Hz mains-style tone *below* the 100–1500 Hz noise
    // band: the band-limited integration ignores it.
    let (hot, cold) = noise_pair(3);
    let hum = SineSource::new(60.0, 0.5)
        .expect("hum")
        .generate(N, FS)
        .expect("generate");
    let hot_hum = sum_signals(&[&hot[..], &hum[..]]).expect("sum");
    let cold_hum = sum_signals(&[&cold[..], &hum[..]]).expect("sum");
    let reference = SineSource::new(3_000.0, 0.3)
        .expect("sine")
        .generate(N, FS)
        .expect("generate");
    let d = OneBitDigitizer::ideal();
    let bh = d.digitize(&hot_hum, &reference).expect("digitize");
    let bc = d.digitize(&cold_hum, &reference).expect("digitize");
    let r = OneBitPowerRatio::new(FS, 2_048, 3_000.0, (100.0, 1_500.0))
        .expect("estimator")
        .estimate_bits(&bh, &bc)
        .expect("estimate")
        .ratio;
    assert!((r - TRUE_RATIO).abs() / TRUE_RATIO < 0.10, "ratio {r}");
}

#[test]
fn off_frequency_reference_is_tracked() {
    // The estimator is told 3 kHz but the generator actually runs at
    // 2.97 kHz (−1 %): the tracker's search window locks on anyway.
    let actual = SineSource::new(2_970.0, 0.3)
        .expect("sine")
        .generate(N, FS)
        .expect("generate");
    let r = estimate_with_reference(&actual, 4, 3_000.0);
    assert!((r - TRUE_RATIO).abs() / TRUE_RATIO < 0.08, "ratio {r}");
}

#[test]
fn in_band_interference_is_the_known_failure_mode() {
    // A tone *inside* the noise band that is present in both states
    // pulls the ratio toward 1 — the same mechanism as an unexcluded
    // reference. This is a documented limitation, not a regression.
    let (hot, cold) = noise_pair(5);
    let hum = SineSource::new(700.0, 0.8)
        .expect("hum")
        .generate(N, FS)
        .expect("generate");
    let hot_hum = sum_signals(&[&hot[..], &hum[..]]).expect("sum");
    let cold_hum = sum_signals(&[&cold[..], &hum[..]]).expect("sum");
    let reference = SineSource::new(3_000.0, 0.3)
        .expect("sine")
        .generate(N, FS)
        .expect("generate");
    let d = OneBitDigitizer::ideal();
    let bh = d.digitize(&hot_hum, &reference).expect("digitize");
    let bc = d.digitize(&cold_hum, &reference).expect("digitize");
    let r = OneBitPowerRatio::new(FS, 2_048, 3_000.0, (100.0, 1_500.0))
        .expect("estimator")
        .estimate_bits(&bh, &bc)
        .expect("estimate")
        .ratio;
    assert!(
        r < TRUE_RATIO * 0.95,
        "in-band interference should compress the ratio, got {r}"
    );
}
