//! The redesigned measurement API, exercised end to end:
//!
//! * all three Table 2 `PowerRatioEstimator` impls recover a synthetic
//!   2:1 hot/cold ratio through the trait object;
//! * `MeasurementSession` with `repeats(8)` shrinks the NF spread
//!   versus single acquisitions;
//! * three distinct `Dut` impls (non-inverting, inverting, chain) run
//!   end to end through the same session API.

use nfbist_analog::circuits::{InvertingAmplifier, NonInvertingAmplifier};
use nfbist_analog::component::Attenuator;
use nfbist_analog::converter::OneBitDigitizer;
use nfbist_analog::dut::{Dut, DutChain};
use nfbist_analog::noise::WhiteNoise;
use nfbist_analog::opamp::OpampModel;
use nfbist_analog::source::{SineSource, Waveform};
use nfbist_analog::units::Ohms;
use nfbist_core::power_ratio::{
    MeanSquareEstimator, OneBitPowerRatio, PowerRatioEstimator, PsdRatioEstimator,
};
use nfbist_soc::session::MeasurementSession;
use nfbist_soc::setup::BistSetup;

const FS: f64 = 20_000.0;

#[test]
fn all_three_estimators_recover_a_2_to_1_ratio_through_the_trait() {
    let n = 1 << 18;
    let sigma_cold = 1.0;
    let sigma_hot = sigma_cold * 2f64.sqrt(); // 2:1 power ratio
    let hot = WhiteNoise::new(sigma_hot, 501).expect("noise").generate(n);
    let cold = WhiteNoise::new(sigma_cold, 502).expect("noise").generate(n);

    // Analog-domain estimators consume the raw records.
    let analog_estimators: Vec<Box<dyn PowerRatioEstimator>> = vec![
        Box::new(MeanSquareEstimator),
        Box::new(PsdRatioEstimator::new(FS, 2_048, (100.0, 9_000.0)).expect("psd estimator")),
    ];
    for est in &analog_estimators {
        let r = est.estimate(&hot, &cold).expect("estimate");
        assert!(
            (r.ratio - 2.0).abs() / 2.0 < 0.05,
            "{}: ratio {}",
            est.label(),
            r.ratio
        );
    }

    // The 1-bit estimator consumes digitized ±1 records.
    let reference = SineSource::new(3_000.0, 0.3 * sigma_cold)
        .expect("reference")
        .generate(n, FS)
        .expect("generate");
    let d = OneBitDigitizer::ideal();
    let bh = d.digitize(&hot, &reference).expect("digitize");
    let bc = d.digitize(&cold, &reference).expect("digitize");
    let one_bit: Box<dyn PowerRatioEstimator> =
        Box::new(OneBitPowerRatio::new(FS, 2_048, 3_000.0, (100.0, 1_500.0)).expect("estimator"));
    let r = one_bit
        .estimate(&bh.to_bipolar(), &bc.to_bipolar())
        .expect("estimate");
    assert!(
        (r.ratio - 2.0).abs() / 2.0 < 0.10,
        "{}: ratio {}",
        one_bit.label(),
        r.ratio
    );
    // The uniform report carries the 1-bit intermediates.
    assert!(r.one_bit().expect("detail").normalization.scale > 0.0);
}

#[test]
fn repeats_shrink_nf_spread_versus_single_acquisitions() {
    // Five independent single-acquisition measurements versus five
    // 8-repeat averaged measurements of the same bench: the averaged
    // estimates must scatter visibly less (expected ~1/sqrt(8)).
    let small = |seed: u64| BistSetup {
        samples: 1 << 15,
        nfft: 1_024,
        ..BistSetup::paper_prototype(seed)
    };
    let dut =
        || NonInvertingAmplifier::new(OpampModel::tl081(), Ohms::new(10_000.0), Ohms::new(100.0));

    let run = |repeats: usize, seed: u64| -> f64 {
        MeasurementSession::new(small(seed))
            .expect("session")
            .dut(dut().expect("dut"))
            .repeats(repeats)
            .run()
            .expect("measurement")
            .nf
            .figure
            .db()
    };

    let singles: Vec<f64> = (0..5).map(|i| run(1, 100 + 37 * i)).collect();
    let averaged: Vec<f64> = (0..5).map(|i| run(8, 300 + 37 * i)).collect();

    let spread = |xs: &[f64]| {
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        (xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
    };
    let s1 = spread(&singles);
    let s8 = spread(&averaged);
    assert!(
        s8 < s1,
        "averaging must shrink the spread: single {s1:.3} dB vs repeats(8) {s8:.3} dB \
         ({singles:?} vs {averaged:?})"
    );
}

#[test]
fn three_distinct_dut_impls_measure_through_one_session() {
    // (1) the paper's non-inverting amplifier, (2) the inverting
    // topology with its input resistor as the source, (3) an
    // attenuator → amplifier chain. Same session code path for all.
    let setup = BistSetup::quick(77);

    let non_inverting =
        NonInvertingAmplifier::new(OpampModel::op27(), Ohms::new(10_000.0), Ohms::new(100.0))
            .expect("non-inverting");
    let inverting =
        InvertingAmplifier::new(OpampModel::op27(), Ohms::new(20_000.0), Ohms::new(2_000.0))
            .expect("inverting");
    let chain = DutChain::new()
        .stage(Attenuator::from_db(3.0).expect("attenuator"))
        .stage(
            NonInvertingAmplifier::new(OpampModel::tl081(), Ohms::new(10_000.0), Ohms::new(100.0))
                .expect("gain stage"),
        );

    let duts: Vec<Box<dyn Dut>> = vec![
        Box::new(non_inverting),
        Box::new(inverting),
        Box::new(chain),
    ];
    for dut in duts {
        let label = dut.label();
        let expected = dut
            .expected_noise_figure_db(setup.source_resistance, 100.0, 1_000.0)
            .expect("expectation");
        let m = MeasurementSession::new(setup.clone())
            .expect("session")
            .dut(dut)
            .repeats(2)
            .run()
            .expect("measurement");
        assert!(
            (m.nf.figure.db() - m.expected_nf_db).abs() < 2.5,
            "{label}: measured {:.2} dB vs expected {:.2} dB",
            m.nf.figure.db(),
            m.expected_nf_db
        );
        assert!((m.expected_nf_db - expected).abs() < 1e-9);
        assert_eq!(m.dut, label);
    }
}
