//! Cross-crate integration: the three Table 2 estimators agree on
//! synthesized physics, and the Y-factor equations round-trip through
//! signal-level simulation.

use nfbist_bench::Table2Scenario;
use nfbist_core::figure::NoiseFactor;
use nfbist_core::power_ratio::{mean_square_ratio, psd_ratio};
use nfbist_core::yfactor;

#[test]
fn three_methods_agree_on_the_table2_scenario() {
    let scenario = Table2Scenario::build(1 << 19, 0.3, 42).expect("scenario");
    let truth = scenario.true_ratio;

    let y_ms = mean_square_ratio(&scenario.hot, &scenario.cold).expect("mean square");
    let y_psd = psd_ratio(
        &scenario.hot,
        &scenario.cold,
        scenario.sample_rate,
        2_000,
        (500.0, 4_500.0),
    )
    .expect("psd ratio");
    let y_bit = scenario
        .estimator(2_000)
        .expect("estimator")
        .estimate_bits(&scenario.bits_hot, &scenario.bits_cold)
        .expect("one-bit")
        .ratio;

    // Analog-domain methods: within 2 %.
    assert!(
        (y_ms - truth).abs() / truth < 0.02,
        "mean-square {y_ms} vs {truth}"
    );
    assert!(
        (y_psd - truth).abs() / truth < 0.02,
        "psd {y_psd} vs {truth}"
    );
    // 1-bit method: the paper saw 2.5 % on 10⁶ samples; allow 8 % on
    // this shorter record.
    assert!(
        (y_bit - truth).abs() / truth < 0.08,
        "one-bit {y_bit} vs {truth}"
    );

    // All three feed eq. 8 and land near NF 10 dB.
    for (name, y) in [("ms", y_ms), ("psd", y_psd), ("bit", y_bit)] {
        let nf = yfactor::noise_factor_from_temperatures(y, 10_000.0, 1_000.0)
            .expect("eq 8")
            .to_figure()
            .db();
        assert!((nf - 10.0).abs() < 0.7, "{name}: NF {nf}");
    }
}

#[test]
fn one_bit_error_grows_for_out_of_range_references() {
    // Fig. 10's two failure regimes, verified relative to the sweet
    // spot.
    let good = Table2Scenario::build(1 << 17, 0.25, 50).expect("scenario");
    let weak = Table2Scenario::build(1 << 17, 0.02, 51).expect("scenario");
    let strong = Table2Scenario::build(1 << 17, 0.70, 52).expect("scenario");

    let run = |s: &Table2Scenario| {
        s.estimator(1_024)
            .expect("estimator")
            .estimate_bits(&s.bits_hot, &s.bits_cold)
            .map(|r| (r.ratio - s.true_ratio).abs() / s.true_ratio)
    };
    let err_good = run(&good).expect("sweet spot must estimate");
    // The weak-reference case may fail outright (line below floor) or
    // produce a worse error; both count as "unusable versus the sweet
    // spot".
    if let Ok(err) = run(&weak) {
        assert!(err > err_good, "weak ref err {err} vs good {err_good}");
    } // a degenerate error is also an expected outcome
    let err_strong = run(&strong).expect("strong ref still estimates, with distortion");
    assert!(
        err_strong > err_good,
        "strong ref err {err_strong} vs good {err_good}"
    );
    assert!(err_good < 0.1, "sweet-spot error {err_good}");
}

#[test]
fn y_factor_equations_roundtrip_through_simulation() {
    // Forward: pick F, synthesize powers, measure, solve — recover F.
    for nf_db in [3.0, 6.5, 10.1] {
        let f = nfbist_core::figure::NoiseFigure::from_db(nf_db)
            .expect("figure")
            .to_factor();
        let y = yfactor::expected_y(f, 2_900.0, 290.0).expect("forward model");

        let sigma_cold = 1.0;
        let sigma_hot = sigma_cold * y.sqrt();
        let hot = nfbist_analog::noise::WhiteNoise::new(sigma_hot, 60)
            .expect("noise")
            .generate(200_000);
        let cold = nfbist_analog::noise::WhiteNoise::new(sigma_cold, 61)
            .expect("noise")
            .generate(200_000);
        let y_meas = mean_square_ratio(&hot, &cold).expect("ratio");
        let f_back = yfactor::noise_factor_from_temperatures(y_meas, 2_900.0, 290.0)
            .expect("eq 8")
            .to_figure()
            .db();
        assert!((f_back - nf_db).abs() < 0.4, "NF {nf_db}: back {f_back}");
    }
}

#[test]
fn noise_factor_estimates_clamp_at_physical_limit() {
    // A Y slightly above the temperature ratio (estimator variance on a
    // noiseless DUT) must clamp to F = 1, not fail.
    let y = 10.02; // ratio for Th/Tc = 10 with F = 1 is exactly 10
    let f = yfactor::noise_factor_from_temperatures(y, 2_900.0, 290.0).expect("clamped");
    assert_eq!(f, NoiseFactor::NOISELESS);
}
