//! End-to-end streaming acquisition: the chunked session pipeline
//! (source → DUT → conditioning → digitizer → streaming estimator)
//! against the batch pipeline, at the workspace level where every
//! crate's streaming piece composes.
//!
//! The contract under test is the PR's acceptance criterion: for the
//! same seed, streaming and batch measurements are **bitwise
//! identical** (`f64::to_bits`) for every chunk size — including
//! chunk sizes smaller than, equal to, and non-divisors of the Welch
//! segment length — and for both the incremental fast path and the
//! buffered fallback that unknown DUTs get.

use nfbist_analog::circuits::NonInvertingAmplifier;
use nfbist_analog::fault::{AnalogFault, FaultyDut};
use nfbist_analog::opamp::OpampModel;
use nfbist_analog::units::Ohms;
use nfbist_runtime::BatchPlan;
use nfbist_soc::session::MeasurementSession;
use nfbist_soc::setup::BistSetup;

fn paper_dut(opamp: OpampModel) -> NonInvertingAmplifier {
    NonInvertingAmplifier::new(opamp, Ohms::new(10_000.0), Ohms::new(100.0))
        .expect("paper DUT values are valid")
}

fn reduced_setup(seed: u64) -> BistSetup {
    let mut setup = BistSetup::quick(seed);
    setup.samples = 1 << 15;
    setup.nfft = 2_048;
    setup
}

#[test]
fn one_bit_streaming_session_matches_batch_at_scale() {
    let setup = reduced_setup(3);
    let build = || {
        MeasurementSession::new(setup.clone())
            .expect("session")
            .dut(paper_dut(OpampModel::tl081()))
            .repeats(2)
    };
    let batch = build().run().expect("batch run");
    // The chunk sizes of the acceptance criterion: below, at, and off
    // the 2048-point segment length.
    for chunk in [1_000usize, 2_048, 2_049, 5_000] {
        let streamed = build()
            .memory_budget(1) // record always exceeds it -> streaming
            .streaming_chunk_len(chunk)
            .run()
            .expect("streaming run");
        assert_eq!(
            streamed.nf.y.to_bits(),
            batch.nf.y.to_bits(),
            "chunk {chunk}"
        );
        assert_eq!(
            streamed.nf.figure.db().to_bits(),
            batch.nf.figure.db().to_bits()
        );
        assert_eq!(
            streamed.nf_spread_db.to_bits(),
            batch.nf_spread_db.to_bits()
        );
        for (s, b) in streamed.repeats.iter().zip(&batch.repeats) {
            assert_eq!(s.ratio.ratio.to_bits(), b.ratio.ratio.to_bits());
        }
        // The 1-bit intermediates survive streaming estimation intact.
        let sd = streamed.one_bit_detail().expect("one-bit detail");
        let bd = batch.one_bit_detail().expect("one-bit detail");
        assert_eq!(
            sd.normalization.scale.to_bits(),
            bd.normalization.scale.to_bits()
        );
        assert_eq!(sd.hot_spectrum.density(), bd.hot_spectrum.density());
    }
}

#[test]
fn faulty_dut_streams_through_the_buffered_fallback() {
    // FaultyDut has no incremental stream — it exercises the buffered
    // DutStream fallback inside a streaming session, which must still
    // be bit-identical to the batch run (the fallback literally calls
    // the batch `process`).
    let setup = reduced_setup(5);
    let build = || {
        let dut = FaultyDut::new(paper_dut(OpampModel::tl081()))
            .with_fault(AnalogFault::ExcessNoise { factor: 2.0 })
            .expect("fault");
        MeasurementSession::new(setup.clone())
            .expect("session")
            .dut(dut)
    };
    let batch = build().run().expect("batch run");
    let streamed = build()
        .memory_budget(8 * 1024)
        .run()
        .expect("streaming run");
    assert_eq!(streamed.nf.y.to_bits(), batch.nf.y.to_bits());
    // The defect still shows up, streamed or not.
    assert!(streamed.nf.figure.db() > streamed.expected_nf_db + 2.0);
}

#[test]
fn streaming_monte_carlo_fans_out_bit_identically() {
    // Whole streaming sessions as Monte Carlo trials across workers.
    let plan_seq = BatchPlan::sequential();
    let plan_par = BatchPlan::new().workers(3);
    let build = |trial: usize| {
        let setup = reduced_setup(nfbist_runtime::batch::derive_seed(11, trial as u64));
        Ok(MeasurementSession::new(setup)?
            .dut(paper_dut(OpampModel::tl081()))
            .memory_budget(64 * 1024))
    };
    let seq = plan_seq.run_monte_carlo(4, build).expect("sequential");
    let par = plan_par.run_monte_carlo(4, build).expect("parallel");
    assert_eq!(seq.len(), par.len());
    for (a, b) in seq.measurements().iter().zip(par.measurements()) {
        assert_eq!(a.nf.y.to_bits(), b.nf.y.to_bits());
    }
    assert_eq!(
        seq.mean_nf_db().unwrap().to_bits(),
        par.mean_nf_db().unwrap().to_bits()
    );
}
