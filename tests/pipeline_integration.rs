//! Cross-crate integration: the full BIST pipeline against its analytic
//! expectations and the ADC baseline.

use nfbist_analog::circuits::NonInvertingAmplifier;
use nfbist_analog::noise::NoiseSourceState;
use nfbist_analog::opamp::OpampModel;
use nfbist_analog::units::Ohms;
use nfbist_soc::baseline::AdcYFactorBaseline;
use nfbist_soc::pipeline::BistPipeline;
use nfbist_soc::resources::{one_bit_usage, ResourceBudget};
use nfbist_soc::setup::BistSetup;

fn paper_dut(opamp: OpampModel) -> NonInvertingAmplifier {
    NonInvertingAmplifier::new(opamp, Ohms::new(10_000.0), Ohms::new(100.0))
        .expect("paper DUT values are valid")
}

#[test]
fn table3_ranking_is_preserved_end_to_end() {
    // The paper's core experimental claim, on reduced records: the four
    // op-amps rank OP27 < OP07 < TL081 < CA3140 in *measured* NF, and
    // every measurement lands within 2 dB of its analytic expectation.
    let mut measured = Vec::new();
    for (i, opamp) in OpampModel::paper_set().into_iter().enumerate() {
        let pipeline = BistPipeline::new(BistSetup::quick(1000 + i as u64), paper_dut(opamp))
            .expect("pipeline");
        let m = pipeline.measure().expect("measurement");
        assert!(
            (m.nf.figure.db() - m.expected_nf_db).abs() < 2.0,
            "opamp {i}: measured {:.2} dB vs expected {:.2} dB",
            m.nf.figure.db(),
            m.expected_nf_db
        );
        measured.push(m.nf.figure.db());
    }
    for w in measured.windows(2) {
        assert!(
            w[1] > w[0],
            "measured ranking violated: {measured:?}"
        );
    }
    // Span comparable to the paper's 3.69 → 14.02 dB.
    assert!(measured[3] - measured[0] > 6.0, "span too narrow: {measured:?}");
}

#[test]
fn one_bit_and_adc_baseline_agree() {
    let dut = paper_dut(OpampModel::tl081());
    let one_bit = BistPipeline::new(BistSetup::quick(2000), dut.clone())
        .expect("pipeline")
        .measure()
        .expect("one-bit measurement");
    let adc = AdcYFactorBaseline::new(BistSetup::quick(2001), dut, 12)
        .expect("baseline")
        .measure()
        .expect("adc measurement");
    // Both estimate the same physical NF.
    assert!(
        (one_bit.nf.figure.db() - adc.nf.figure.db()).abs() < 1.5,
        "one-bit {:.2} dB vs adc {:.2} dB",
        one_bit.nf.figure.db(),
        adc.nf.figure.db()
    );
    // But the 1-bit record is an order of magnitude smaller.
    assert!(adc.usage.record_bytes >= 16 * one_bit.usage.record_bytes);
}

#[test]
fn paper_acquisition_fits_soc_sram_budget() {
    let budget = ResourceBudget::new(512 * 1024);
    budget
        .check(&one_bit_usage(1_000_000, 10_000))
        .expect("the paper's full acquisition fits 512 kB");
}

#[test]
fn acquisitions_are_deterministic_per_seed() {
    let dut = paper_dut(OpampModel::op27());
    let p1 = BistPipeline::new(BistSetup::quick(7), dut.clone()).expect("pipeline");
    let p2 = BistPipeline::new(BistSetup::quick(7), dut).expect("pipeline");
    let a = p1.acquire(NoiseSourceState::Hot).expect("acquire");
    let b = p2.acquire(NoiseSourceState::Hot).expect("acquire");
    assert_eq!(a, b, "same seed must reproduce the same bitstream");
}

#[test]
fn hot_and_cold_records_differ() {
    let dut = paper_dut(OpampModel::op27());
    let p = BistPipeline::new(BistSetup::quick(8), dut).expect("pipeline");
    let hot = p.acquire(NoiseSourceState::Hot).expect("acquire hot");
    let cold = p.acquire(NoiseSourceState::Cold).expect("acquire cold");
    assert_ne!(hot, cold);
}

#[test]
fn comparator_imperfections_tolerated() {
    use nfbist_analog::converter::{Comparator, OneBitDigitizer};
    let dut = paper_dut(OpampModel::tl081());
    let setup = BistSetup::quick(3000);
    // Offset at 2 % of the cold comparator-input RMS, plus slight
    // hysteresis: the method should degrade gracefully, not break.
    let clean = BistPipeline::new(setup.clone(), dut.clone()).expect("pipeline");
    let rms = clean
        .comparator_noise_rms(NoiseSourceState::Cold)
        .expect("rms");
    let comparator = Comparator::ideal()
        .with_offset(0.02 * rms)
        .expect("offset")
        .with_hysteresis(0.01 * rms)
        .expect("hysteresis");
    let rough = BistPipeline::new(setup, dut)
        .expect("pipeline")
        .with_digitizer(OneBitDigitizer::with_comparator(comparator));
    let m = rough.measure().expect("measurement with imperfect comparator");
    assert!(
        (m.nf.figure.db() - m.expected_nf_db).abs() < 2.5,
        "measured {:.2} dB vs expected {:.2} dB",
        m.nf.figure.db(),
        m.expected_nf_db
    );
}
