//! End-to-end defect-coverage acceptance: the whole stack — faulted
//! DUT synthesis (analog), 1-bit session (soc), guard-banded screening
//! with retest escalation, and parallel campaign fan-out (runtime) —
//! must catch a gross fault essentially always while rejecting
//! essentially no healthy parts.

use nfbist_analog::circuits::NonInvertingAmplifier;
use nfbist_analog::fault::{AnalogFault, FaultyDut};
use nfbist_analog::opamp::OpampModel;
use nfbist_analog::units::Ohms;
use nfbist_runtime::BatchPlan;
use nfbist_soc::coverage::{CoverageCampaign, FaultUniverse};
use nfbist_soc::screening::{RetestPolicy, Screen};
use nfbist_soc::setup::BistSetup;

fn tl081() -> NonInvertingAmplifier {
    NonInvertingAmplifier::new(OpampModel::tl081(), Ohms::new(10_000.0), Ohms::new(100.0))
        .expect("dut")
}

/// The ISSUE's acceptance numbers: a 2× input attenuation (a gross
/// defect — the added-noise term quadruples) is detected at ≥ 99 %
/// while healthy yield loss stays ≤ 1 %.
#[test]
fn gross_attenuation_fault_detected_with_negligible_yield_loss() {
    let setup = BistSetup {
        samples: 1 << 15,
        nfft: 2_048,
        seed: 424_242,
        ..BistSetup::paper_prototype(0)
    };
    let expected = tl081()
        .expected_noise_figure_db(Ohms::new(2_000.0), 100.0, 1_000.0)
        .expect("expected NF");
    let universe = FaultUniverse::new()
        .input_attenuation(&[2.0])
        .expect("universe");
    let campaign = CoverageCampaign::new(
        setup,
        Screen::new(expected + 1.2, 3.0).expect("screen"),
        universe,
    )
    .expect("campaign")
    .trials(12)
    // A gross attenuation fault drags Y toward 1, which *inflates*
    // single-shot estimator variance (low outliers can masquerade as
    // confident passes); Y-averaging over repeats is the paper's
    // prescribed stabilizer for near-unity-Y measurements.
    .repeats(4)
    .retest(RetestPolicy::new(3, 4).expect("policy"));

    let report = BatchPlan::new()
        .workers(4)
        .run_coverage(&campaign)
        .expect("campaign run");

    let faulty = report.class("input_attenuation").expect("faulty class");
    let healthy = report.class("healthy").expect("healthy class");
    assert!(
        faulty.detection_rate() >= 0.99,
        "gross fault detection {:.3} below 99 %:\n{report}",
        faulty.detection_rate()
    );
    assert!(
        report.yield_loss().expect("healthy trials") <= 0.01,
        "healthy yield loss {:.3} above 1 %:\n{report}",
        report.yield_loss().unwrap()
    );
    // The defective parts measure far worse than the healthy ones, in
    // the direction the analytic fault model predicts.
    let predicted = FaultyDut::new(tl081())
        .with_fault(AnalogFault::InputAttenuation { factor: 2.0 })
        .expect("fault")
        .faulty_expected_noise_figure_db(Ohms::new(2_000.0), 100.0, 1_000.0)
        .expect("faulty NF");
    assert!(predicted > expected + 3.0);
    assert!(
        faulty.mean_nf_db > healthy.mean_nf_db + 2.0,
        "faulty {:.2} dB vs healthy {:.2} dB",
        faulty.mean_nf_db,
        healthy.mean_nf_db
    );
}
