//! Cross-crate integration: the generic measurement session against
//! its analytic expectations and the ADC front-end, reproducing what
//! the deleted concrete `BistPipeline`/`AdcYFactorBaseline` pair used
//! to cover.

use nfbist_analog::circuits::NonInvertingAmplifier;
use nfbist_analog::converter::AdcDigitizer;
use nfbist_analog::noise::NoiseSourceState;
use nfbist_analog::opamp::OpampModel;
use nfbist_analog::units::Ohms;
use nfbist_core::power_ratio::PsdRatioEstimator;
use nfbist_soc::resources::{one_bit_usage, ResourceBudget};
use nfbist_soc::session::MeasurementSession;
use nfbist_soc::setup::BistSetup;

fn paper_dut(opamp: OpampModel) -> NonInvertingAmplifier {
    NonInvertingAmplifier::new(opamp, Ohms::new(10_000.0), Ohms::new(100.0))
        .expect("paper DUT values are valid")
}

#[test]
fn table3_ranking_is_preserved_end_to_end() {
    // The paper's core experimental claim, on reduced records: the four
    // op-amps rank OP27 < OP07 < TL081 < CA3140 in *measured* NF, and
    // every measurement lands within 2 dB of its analytic expectation.
    // Y-averaging over a few repeats keeps the noisy CA3140 stable.
    let mut measured = Vec::new();
    for (i, opamp) in OpampModel::paper_set().into_iter().enumerate() {
        let m = MeasurementSession::new(BistSetup::quick(1000 + i as u64))
            .expect("session")
            .dut(paper_dut(opamp))
            .repeats(3)
            .run()
            .expect("measurement");
        assert!(
            (m.nf.figure.db() - m.expected_nf_db).abs() < 2.0,
            "opamp {i}: measured {:.2} dB vs expected {:.2} dB",
            m.nf.figure.db(),
            m.expected_nf_db
        );
        measured.push(m.nf.figure.db());
    }
    for w in measured.windows(2) {
        assert!(w[1] > w[0], "measured ranking violated: {measured:?}");
    }
    // Span comparable to the paper's 3.69 → 14.02 dB.
    assert!(
        measured[3] - measured[0] > 6.0,
        "span too narrow: {measured:?}"
    );
}

#[test]
fn one_bit_and_adc_sessions_agree() {
    let setup_adc = BistSetup::quick(2001);
    let one_bit = MeasurementSession::new(BistSetup::quick(2000))
        .expect("session")
        .dut(paper_dut(OpampModel::tl081()))
        .run()
        .expect("one-bit measurement");
    let adc = MeasurementSession::new(setup_adc.clone())
        .expect("session")
        .dut(paper_dut(OpampModel::tl081()))
        .digitizer(AdcDigitizer::new(12).expect("adc"))
        .estimator(
            PsdRatioEstimator::new(setup_adc.sample_rate, setup_adc.nfft, setup_adc.noise_band)
                .expect("estimator"),
        )
        .run()
        .expect("adc measurement");
    // Both estimate the same physical NF.
    assert!(
        (one_bit.nf.figure.db() - adc.nf.figure.db()).abs() < 1.5,
        "one-bit {:.2} dB vs adc {:.2} dB",
        one_bit.nf.figure.db(),
        adc.nf.figure.db()
    );
    // But the 1-bit record is an order of magnitude smaller.
    assert!(adc.usage.record_bytes >= 16 * one_bit.usage.record_bytes);
}

#[test]
fn paper_acquisition_fits_soc_sram_budget() {
    let budget = ResourceBudget::new(512 * 1024);
    budget
        .check(&one_bit_usage(1_000_000, 10_000))
        .expect("the paper's full acquisition fits 512 kB");
}

#[test]
fn acquisitions_are_deterministic_per_seed() {
    let s1 = MeasurementSession::new(BistSetup::quick(7))
        .expect("session")
        .dut(paper_dut(OpampModel::op27()));
    let s2 = MeasurementSession::new(BistSetup::quick(7))
        .expect("session")
        .dut(paper_dut(OpampModel::op27()));
    let a = s1.acquire(NoiseSourceState::Hot, 0).expect("acquire");
    let b = s2.acquire(NoiseSourceState::Hot, 0).expect("acquire");
    assert_eq!(a, b, "same seed must reproduce the same record");
}

#[test]
fn hot_and_cold_records_differ() {
    let s = MeasurementSession::new(BistSetup::quick(8))
        .expect("session")
        .dut(paper_dut(OpampModel::op27()));
    let hot = s.acquire(NoiseSourceState::Hot, 0).expect("acquire hot");
    let cold = s.acquire(NoiseSourceState::Cold, 0).expect("acquire cold");
    assert_ne!(hot, cold);
}

#[test]
fn comparator_imperfections_tolerated() {
    use nfbist_analog::converter::{Comparator, OneBitDigitizer};
    let setup = BistSetup::quick(3000);
    // Offset at 2 % of the cold comparator-input RMS, plus slight
    // hysteresis: the method should degrade gracefully, not break.
    let clean = MeasurementSession::new(setup.clone())
        .expect("session")
        .dut(paper_dut(OpampModel::tl081()));
    let rms = clean
        .digitizer_noise_rms(NoiseSourceState::Cold)
        .expect("rms");
    let comparator = Comparator::ideal()
        .with_offset(0.02 * rms)
        .expect("offset")
        .with_hysteresis(0.01 * rms)
        .expect("hysteresis");
    let m = MeasurementSession::new(setup)
        .expect("session")
        .dut(paper_dut(OpampModel::tl081()))
        .digitizer(OneBitDigitizer::with_comparator(comparator))
        .run()
        .expect("measurement with imperfect comparator");
    assert!(
        (m.nf.figure.db() - m.expected_nf_db).abs() < 2.5,
        "measured {:.2} dB vs expected {:.2} dB",
        m.nf.figure.db(),
        m.expected_nf_db
    );
}
