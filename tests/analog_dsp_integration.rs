//! Cross-crate integration between the analog simulator and the DSP
//! layer: the arcsine law, shaped-noise synthesis closing the loop
//! through Welch estimation, and deterministic waveform spectra.

use nfbist_analog::converter::OneBitDigitizer;
use nfbist_analog::noise::{ShapedNoise, WhiteNoise};
use nfbist_analog::source::{SquareSource, Waveform};
use nfbist_core::arcsine;
use nfbist_dsp::correlation::normalized_autocorrelation;
use nfbist_dsp::psd::WelchConfig;

#[test]
fn arcsine_law_closes_the_loop() {
    // Correlated Gaussian noise → hard limiter → measured bitstream
    // autocorrelation must match eq. 12, and the inverse mapping must
    // recover the analog correlation.
    let n = 400_000;
    let raw = WhiteNoise::new(1.0, 77).expect("noise").generate(n);
    let mut x = vec![0.0f64; n];
    let a = 0.7;
    for i in 1..n {
        x[i] = a * x[i - 1] + raw[i];
    }
    let bits = OneBitDigitizer::ideal()
        .digitize_sign(&x)
        .expect("digitize");

    let rho_x = normalized_autocorrelation(&x, 8).expect("analog acf");
    // The bitstream correlation comes straight from the packed words
    // (XOR + popcount) — no ±1 expansion. Sanity-check it against the
    // float estimator on the expanded record first.
    let rho_y = bits.normalized_autocorrelation(8).expect("bitstream acf");
    let rho_y_float =
        normalized_autocorrelation(&bits.to_bipolar(), 8).expect("float bitstream acf");
    for (lag, (a, b)) in rho_y.iter().zip(&rho_y_float).enumerate() {
        assert!(
            (a - b).abs() < 1e-9,
            "popcount vs float acf at lag {lag}: {a} vs {b}"
        );
    }

    for lag in 1..=8 {
        let forward = arcsine::arcsine_law(rho_x[lag]).expect("arcsine");
        assert!(
            (rho_y[lag] - forward).abs() < 0.02,
            "lag {lag}: bitstream {} vs arcsine {}",
            rho_y[lag],
            forward
        );
        let recovered = arcsine::arcsine_law_inverse(rho_y[lag]).expect("inverse");
        assert!(
            (recovered - rho_x[lag]).abs() < 0.03,
            "lag {lag}: recovered {} vs analog {}",
            recovered,
            rho_x[lag]
        );
    }
}

#[test]
fn shaped_noise_roundtrips_through_welch() {
    // Synthesize noise with a two-level density and verify the PSD
    // estimator reads the same shape back.
    let fs = 20_000.0;
    let density = |f: f64| if f < 2_000.0 { 4e-4 } else { 1e-4 };
    let mut src = ShapedNoise::new(density, fs, 1 << 14, 5).expect("shaped noise");
    let x = src.generate(400_000).expect("generate");
    let psd = WelchConfig::new(2_048)
        .expect("welch")
        .estimate(&x, fs)
        .expect("estimate");
    let low = psd.band_power(200.0, 1_800.0).expect("low band") / 1_600.0;
    let high = psd.band_power(3_000.0, 8_000.0).expect("high band") / 5_000.0;
    assert!((low - 4e-4).abs() / 4e-4 < 0.08, "low {low}");
    assert!((high - 1e-4).abs() / 1e-4 < 0.08, "high {high}");
}

#[test]
fn square_wave_harmonic_structure_survives_digitization_with_dither() {
    // A square reference under Gaussian dither keeps its odd-harmonic
    // structure in the bitstream PSD (the property the normalization
    // relies on).
    let fs = 32_768.0;
    let n = 1 << 19;
    let f0 = 512.0;
    let reference = SquareSource::new(f0, 0.3)
        .expect("square")
        .generate(n, fs)
        .expect("generate");
    let noise = WhiteNoise::new(1.0, 9).expect("noise").generate(n);
    let bits = OneBitDigitizer::ideal()
        .digitize(&noise, &reference)
        .expect("digitize");
    let psd = WelchConfig::new(4_096)
        .expect("welch")
        .estimate(&bits.to_bipolar(), fs)
        .expect("psd");

    let tone = |f: f64| {
        let k = psd.bin_of(f).expect("bin");
        psd.tone_power(k, 2).expect("tone")
    };
    let floor = psd.band_power(5_000.0, 10_000.0).expect("floor") / 5_000.0;
    let fundamental = tone(f0);
    let third = tone(3.0 * f0);
    let second = tone(2.0 * f0);

    // Fundamental well above floor; 3rd harmonic ≈ 1/9 of fundamental;
    // even harmonic absent (at the floor level).
    assert!(fundamental > 50.0 * floor * psd.resolution());
    assert!(
        (third / fundamental - 1.0 / 9.0).abs() < 0.05,
        "third/fundamental {}",
        third / fundamental
    );
    // The "tone" at 2f is just the local floor (5 bins of it), not a
    // spectral line.
    let floor_in_window = floor * 5.0 * psd.resolution();
    assert!(
        second < 3.0 * floor_in_window,
        "even harmonic {second} vs floor window {floor_in_window}"
    );
}

#[test]
fn bitstream_total_power_is_unity() {
    // The property that motivates normalization: a ±1 stream has unit
    // power regardless of the analog level.
    for sigma in [0.1, 1.0, 10.0] {
        let x = WhiteNoise::new(sigma, 3).expect("noise").generate(100_000);
        let bits = OneBitDigitizer::ideal()
            .digitize_sign(&x)
            .expect("digitize");
        let p = nfbist_dsp::stats::mean_square(&bits.to_bipolar()).expect("power");
        assert!((p - 1.0).abs() < 1e-12, "sigma {sigma}: power {p}");
    }
}
