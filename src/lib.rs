//! # nfbist — umbrella crate for the DATE'05 noise-figure BIST reproduction
//!
//! Reproduction of Negreiros, Carro & Susin, *"Noise Figure Evaluation
//! Using Low Cost BIST"* (DATE 2005). This crate re-exports the
//! workspace's layers under one roof and hosts the workspace-level
//! examples and integration tests:
//!
//! * [`nfbist_dsp`] — FFTs, Welch PSDs, windows, Goertzel, statistics.
//! * [`nfbist_analog`] — the simulated analog bench: noise sources,
//!   op-amp models, DUT circuits (the [`nfbist_analog::dut::Dut`]
//!   trait), converters (the
//!   [`nfbist_analog::converter::Digitizer`] trait).
//! * [`nfbist_core`] — Y-factor equations, the arcsine law, and the
//!   Table 2 estimators behind
//!   [`nfbist_core::power_ratio::PowerRatioEstimator`].
//! * [`nfbist_soc`] — the SoC measurement environment, centred on
//!   [`nfbist_soc::session::MeasurementSession`].
//! * [`nfbist_runtime`] — the parallel batch-execution engine:
//!   [`nfbist_runtime::BatchExecutor`] and
//!   [`nfbist_runtime::BatchPlan`], deterministic fan-out of repeats,
//!   Monte Carlo trials, sweep cells and multipoint slots.
//! * [`nfbist_bench`] — experiment scenario builders shared by the
//!   paper-table binaries.
//!
//! See the repository `README.md` for the quickstart, the [`workflow`]
//! module for the end-to-end walkthrough (DUT → digitizer → estimator
//! → screen → coverage campaign), the [`theory`] module for the
//! paper-to-code map (Y-factor equations, arcsine law, Welch variance
//! vs test time), and `ARCHITECTURE.md` for how the traits map onto
//! the paper's figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[doc = include_str!("../docs/THEORY.md")]
pub mod theory {}

#[doc = include_str!("../docs/WORKFLOW.md")]
pub mod workflow {}

pub use nfbist_analog;
pub use nfbist_bench;
pub use nfbist_core;
pub use nfbist_dsp;
pub use nfbist_runtime;
pub use nfbist_soc;
